//! Offline stub of the subset of the `proptest` API used by this
//! workspace: the [`proptest!`] test macro, [`Strategy`](strategy::Strategy)
//! combinators (`prop_map`, tuples, ranges, [`Just`](strategy::Just),
//! [`prop_oneof!`]), [`collection::vec`], `any::<T>()`, and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `proptest` to this path crate. Semantics differ from real
//! proptest in two deliberate ways: generation is derived deterministically
//! from the test's name (no global RNG, no persistence file), and failing
//! cases are reported without shrinking. The number of cases per property
//! defaults to 64 and can be raised with the `PROPTEST_CASES` environment
//! variable.

pub mod test_runner {
    /// Deterministic per-test generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for case `case` of the named test.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Returns the next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..span` (`span` > 0).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }

    /// Number of cases to run per property (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. Unlike real proptest there is no shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A boxed, type-erased strategy (the element type of [`Union`]).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Weighted choice among boxed strategies.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from weighted arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Generates any value of type `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S1);
    impl_tuple_strategy!(S1, S2);
    impl_tuple_strategy!(S1, S2, S3);
    impl_tuple_strategy!(S1, S2, S3, S4);
    impl_tuple_strategy!(S1, S2, S3, S4, S5);
    impl_tuple_strategy!(S1, S2, S3, S4, S5, S6);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed `usize` or a `Range`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    /// Generates `Vec`s of values from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors with lengths in `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    /// Alias matching real proptest's `prop::` prelude module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($($strat,)+);
                let __cases = $crate::test_runner::case_count();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    $body
                }
            }
        )+
    };
}

/// Weighted (or uniform) choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_somewhat() {
        let s = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = crate::test_runner::TestRng::for_case("union", 0);
        let n2 = (0..1000)
            .filter(|_| Strategy::generate(&s, &mut rng) == 2)
            .count();
        assert!(n2 > 20 && n2 < 300, "weighted arm frequency plausible: {n2}");
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_in_bounds(
            xs in crate::collection::vec(0u8..16, 1..10),
            y in 3usize..4,
            mut z in any::<u16>(),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x < 16));
            prop_assert_eq!(y, 3);
            z = z.wrapping_add(1);
            let _ = z;
        }

        #[test]
        fn assume_skips(n in 0u8..4) {
            prop_assume!(n != 2);
            prop_assert_ne!(n, 2);
        }
    }
}
