//! Offline stub of the subset of the `criterion` API used by this
//! workspace's benches: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::throughput`] / [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `criterion` to this path crate. It measures each routine with
//! `std::time::Instant` over a fixed number of iterations and prints a
//! mean per-iteration time — enough to keep `--all-targets` builds honest
//! and give rough numbers, without real criterion's statistics.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Iterations measured per benchmark (`CRITERION_ITERS`, default 200).
fn iters() -> u64 {
    std::env::var("CRITERION_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Opaque value barrier, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How per-iteration setup output is batched (only the size tag matters
/// here; every variant behaves like per-iteration setup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = iters();
        let start = Instant::now();
        for _ in 0..n {
            std_black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = n;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let n = iters();
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = n;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_secs_f64() * 1e9 / b.iters as f64
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 / mean_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / mean_ns * 1e3 * 1e6 / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {:.1} ns/iter over {} iters{}",
            self.name,
            name.into(),
            mean_ns,
            b.iters,
            rate
        );
        self
    }

    /// Ends the group (no-op; matches real criterion's API).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Bundles benchmark functions under one name, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(8));
        g.bench_function("sum", |b| {
            b.iter_batched(
                || (0u64..8).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }

    criterion_group!(smoke_group, sample_bench);

    #[test]
    fn group_runs() {
        std::env::set_var("CRITERION_ITERS", "3");
        smoke_group();
    }
}
