//! Offline stub of the subset of the `rand` 0.8 API used by this
//! workspace: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this path crate instead. The generator is a
//! deterministic xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets — so runs are
//! reproducible pure functions of their seeds, which is all the DVMC
//! experiments require of it.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value in the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Maps a uniform 64-bit word onto `0..span` via 128-bit multiply
/// reduction (Lemire); bias is negligible for the spans used here.
fn reduce(word: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::draw(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(
            denominator > 0 && numerator <= denominator,
            "gen_ratio requires 0 <= numerator <= denominator, denominator > 0"
        );
        reduce(self.next_u64(), u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        assert_ne!(
            SmallRng::seed_from_u64(1).gen::<u64>(),
            SmallRng::seed_from_u64(2).gen::<u64>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = r.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: usize = r.gen_range(0..7);
            assert!(z < 7);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
