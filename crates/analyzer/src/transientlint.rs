//! Graph-backed lint of the transient-state tables.
//!
//! The protocol implementation doesn't enumerate its transient states as
//! a literal table — they are implicit in MSHR flags, the eviction
//! buffer, and the home's transaction records. This module declares that
//! table explicitly, per protocol, and cross-checks it against the
//! transients the explorer *actually reached* over the canonical
//! configuration suite:
//!
//! - a reached transient missing from the table is a **failure** (the
//!   implementation has a state the table doesn't admit — exactly the
//!   drift this lint exists to catch);
//! - a declared entry never reached is **reported** as dead (either the
//!   suite lost coverage or the table over-claims).
//!
//! Labels use the Sorin-style nomenclature: `cache:IS_D` is a cache
//! MSHR awaiting data for a share request, `cache:IM_AD` awaits the
//! address network and data, `+obl`/`+stash`/`+defer` mark snooping
//! obligations, early data, and deferred writebacks, `cache:WB_*` is an
//! eviction buffer entry, and `home:*` are the home controller's
//! transaction kinds.

use dvmc_coherence::Protocol;
use std::collections::BTreeSet;

/// The declared transient-state table of a protocol: every transient
/// label the canonical exploration suite is expected to occupy.
pub fn declared_transients(protocol: Protocol) -> &'static [&'static str] {
    match protocol {
        // No WB_S entry in either table: only dirty (M/O) victims enter
        // the eviction buffer — Shared evictions are silent drops.
        Protocol::Directory => &[
            "cache:IM_D",
            "cache:IS_D",
            "cache:WB_M",
            "cache:WB_O",
            "home:AwaitUnblock",
            "home:BlockedQueue",
            "home:GetM",
            "home:GetS",
            "home:Upgrade",
        ],
        // No +stash entries: stashing needs data to beat a cache's
        // observation of its own request, but the explorer serializes
        // address-network observation atomically, so data (sent only
        // after the supplier observes) can never arrive first. The
        // timing-accurate simulator delivers observations per-node and
        // does reach those states; this table covers the explorer.
        Protocol::Snooping => &[
            "cache:IM_AD",
            "cache:IM_D",
            "cache:IM_D+obl",
            "cache:IS_AD",
            "cache:IS_D",
            "cache:IS_D+obl",
            "cache:WB_M",
            "cache:WB_O",
            "home:AwaitWb",
            "home:DeferredSupply",
        ],
    }
}

/// Result of auditing observed transients against the declared table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransientAudit {
    /// Observed but not declared — a table the implementation outgrew.
    /// Any entry here fails the gate.
    pub unknown: Vec<String>,
    /// Declared but never observed — dead table entries (coverage loss
    /// or over-claiming); reported, not fatal.
    pub dead: Vec<String>,
}

impl TransientAudit {
    /// Whether the observed set is admitted by the table.
    pub fn is_clean(&self) -> bool {
        self.unknown.is_empty()
    }
}

/// Cross-checks the transients `observed` by exploration against the
/// declared table of `protocol`.
pub fn audit_transients(protocol: Protocol, observed: &BTreeSet<String>) -> TransientAudit {
    let declared = declared_transients(protocol);
    let unknown = observed
        .iter()
        .filter(|o| !declared.contains(&o.as_str()))
        .cloned()
        .collect();
    let dead = declared
        .iter()
        .filter(|d| !observed.contains(**d))
        .map(|d| (*d).to_string())
        .collect();
    TransientAudit { unknown, dead }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{explore, ExploreConfig, ExploreConfigBuilder};

    #[test]
    fn declared_tables_are_sorted_and_distinct() {
        for protocol in [Protocol::Directory, Protocol::Snooping] {
            let t = declared_transients(protocol);
            let mut sorted = t.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(t, sorted.as_slice(), "{protocol:?} table must be sorted");
        }
    }

    #[test]
    fn unknown_and_dead_entries_are_split_correctly() {
        let observed: BTreeSet<String> = ["cache:IS_D", "cache:NOT_A_STATE"]
            .into_iter()
            .map(str::to_string)
            .collect();
        let audit = audit_transients(Protocol::Directory, &observed);
        assert_eq!(audit.unknown, vec!["cache:NOT_A_STATE".to_string()]);
        assert!(!audit.is_clean());
        assert!(audit.dead.contains(&"home:GetM".to_string()));
        assert!(!audit.dead.contains(&"cache:IS_D".to_string()));
    }

    /// Cheap members of the canonical suite stay within the declared
    /// tables (the full-suite audit, including the zero-dead check, runs
    /// in the release CLI gate where the big configurations are
    /// affordable).
    #[test]
    fn cheap_configurations_are_admitted_by_the_tables() {
        let configs = [
            ExploreConfigBuilder::new(Protocol::Directory)
                .caches(2)
                .blocks(1)
                .ops_per_cache(2)
                .try_build()
                .expect("valid"),
            // One cache, two conflicting blocks: the cheapest way to
            // drive the eviction/writeback transients.
            ExploreConfigBuilder::new(Protocol::Directory)
                .caches(1)
                .blocks(2)
                .ops_per_cache(2)
                .l2_bytes(64)
                .try_build()
                .expect("valid"),
            ExploreConfig::directory_rollback(),
            ExploreConfigBuilder::new(Protocol::Snooping)
                .caches(2)
                .blocks(1)
                .ops_per_cache(2)
                .try_build()
                .expect("valid"),
        ];
        for cfg in configs {
            let out = explore(&cfg);
            assert!(out.violation.is_none(), "violation: {:?}", out.violation);
            let audit = audit_transients(cfg.protocol, &out.transients);
            assert!(
                audit.is_clean(),
                "{:?} reached undeclared transients: {:?}",
                cfg.protocol,
                audit.unknown
            );
        }
    }
}
