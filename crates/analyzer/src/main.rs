//! `dvmc-analyzer` — static verification gate for the DVMC workspace.
//!
//! ```text
//! dvmc-analyzer --all                  run every pass (the CI gate)
//! dvmc-analyzer --tables               ordering-table lint only
//! dvmc-analyzer --protocol             protocol model checking only
//! dvmc-analyzer --mutants              mutant-exhaustiveness gate only
//! dvmc-analyzer --reduction            raw-vs-reduced symmetry audit only
//! dvmc-analyzer --jobs 4               parallel frontier width (default 1)
//! dvmc-analyzer --bench PATH           write the canonical JSON report
//! dvmc-analyzer --mutant skip-inv      seed one defect; exit 0 iff caught
//! ```
//!
//! Exits non-zero (printing a counterexample) on any finding. Everything
//! printed to stdout and written by `--bench` is deterministic and
//! independent of `--jobs`; wall-clock rates go to stderr.

use dvmc_analyzer::{
    audit_transients, bench_json, explore_jobs, lint_all_models, BenchRow, ExploreConfig,
    ExploreOutcome, Mutant, ReductionRow,
};
use dvmc_coherence::Protocol;
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut run_tables = false;
    let mut run_protocol = false;
    let mut run_mutants = false;
    let mut run_reduction = false;
    let mut jobs = 1usize;
    let mut bench_path: Option<String> = None;
    let mut mutant: Option<Mutant> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => {
                run_tables = true;
                run_protocol = true;
                run_mutants = true;
                run_reduction = true;
            }
            "--tables" => run_tables = true,
            "--protocol" => run_protocol = true,
            "--mutants" => run_mutants = true,
            "--reduction" => run_reduction = true,
            "--jobs" => {
                let parsed = it.next().and_then(|s| s.parse::<usize>().ok());
                let Some(n) = parsed.filter(|&n| n >= 1) else {
                    eprintln!("--jobs requires a positive integer");
                    return ExitCode::from(2);
                };
                jobs = n;
            }
            "--bench" => {
                let Some(path) = it.next() else {
                    eprintln!("--bench requires a path");
                    return ExitCode::from(2);
                };
                bench_path = Some(path.clone());
            }
            "--mutant" => {
                let Some(name) = it.next() else {
                    eprintln!("--mutant requires a name {MUTANT_NAMES}");
                    return ExitCode::from(2);
                };
                match Mutant::parse(name) {
                    Some(m) => mutant = Some(m),
                    None => {
                        eprintln!("unknown mutant {name:?} {MUTANT_NAMES}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                print_usage();
                return ExitCode::from(2);
            }
        }
    }

    // Fault-injection passes drive the protocol into states it handles
    // by panicking (`unreachable!` in the home controller). The explorer
    // catches those and converts them into defects with counterexample
    // traces, so the default per-panic backtrace spew is pure noise.
    std::panic::set_hook(Box::new(|_| {}));

    if let Some(m) = mutant {
        return run_single_mutant(m, jobs);
    }
    if bench_path.is_some() {
        // The report covers the protocol, mutant, and reduction passes.
        run_protocol = true;
        run_mutants = true;
        run_reduction = true;
    }
    if !run_tables && !run_protocol && !run_mutants && !run_reduction {
        print_usage();
        return ExitCode::from(2);
    }

    let mut failed = false;
    let mut rows: Vec<BenchRow> = Vec::new();
    let mut reductions: Vec<ReductionRow> = Vec::new();
    if run_tables {
        failed |= !tables_pass();
    }
    if run_protocol {
        failed |= !protocol_pass(jobs, &mut rows);
    }
    if run_mutants {
        failed |= !mutants_pass(jobs, &mut rows);
    }
    if run_reduction {
        failed |= !reduction_pass(jobs, &rows, &mut reductions);
    }
    if let Some(path) = bench_path {
        let json = bench_json(&rows, &reductions);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path}: {e}");
            failed = true;
        } else {
            println!("canonical report written to {path}");
        }
    }
    if failed {
        eprintln!("\ndvmc-analyzer: FAIL");
        ExitCode::FAILURE
    } else {
        println!("\ndvmc-analyzer: all passes clean");
        ExitCode::SUCCESS
    }
}

const MUTANT_NAMES: &str = "(none | skip-inv | corrupt-data | stray-ack | ack-panic)";

fn print_usage() {
    eprintln!(
        "usage: dvmc-analyzer [--all] [--tables] [--protocol] [--mutants] [--reduction]\n\
         \x20                    [--jobs N] [--bench PATH] [--mutant NAME]\n\
         mutants: {MUTANT_NAMES}"
    );
}

/// Ordering-table linter pass. Returns true if clean.
fn tables_pass() -> bool {
    println!("== pass 1: ordering-table lint ==");
    let errors = lint_all_models();
    if errors.is_empty() {
        println!("   all models clean (structure, hierarchy, predicates)");
        true
    } else {
        for e in &errors {
            eprintln!("   ERROR: {e}");
        }
        eprintln!("   {} ordering-table finding(s)", errors.len());
        false
    }
}

/// Explores one configuration, printing the deterministic summary to
/// stdout and the (jobs-dependent) wall-clock rate to stderr.
fn timed_explore(name: &str, cfg: &ExploreConfig, jobs: usize) -> ExploreOutcome {
    let t = Instant::now();
    let out = explore_jobs(cfg, jobs);
    let dt = t.elapsed().as_secs_f64();
    eprintln!(
        "   [timing] {name}: {:.1}s, {:.0} states/sec at jobs={jobs}",
        dt,
        out.states as f64 / dt.max(1e-9),
    );
    out
}

fn report(name: &str, out: &ExploreOutcome) {
    println!(
        "   {name}: {} canonical states ({} represented), {} transitions{}",
        out.states,
        out.represented,
        out.transitions,
        if out.hit_limit {
            " (state budget reached)"
        } else {
            " (exhaustive)"
        }
    );
    if let Some((defect, steps)) = &out.violation {
        eprintln!("   VIOLATION: {defect}");
        eprintln!("   counterexample ({} steps):", steps.len());
        for (i, step) in steps.iter().enumerate() {
            eprintln!("     {:>3}. {step}", i + 1);
        }
    }
}

/// Protocol model-checking pass over the builtin suite (symmetry
/// reduction on), plus the graph-backed transient-state table audit.
/// Returns true if every configuration is clean and every reached
/// transient is declared.
fn protocol_pass(jobs: usize, rows: &mut Vec<BenchRow>) -> bool {
    println!("== pass 2: protocol model checking (suite, reduced) ==");
    let mut ok = true;
    let mut observed: Vec<(Protocol, BTreeSet<String>)> = vec![
        (Protocol::Directory, BTreeSet::new()),
        (Protocol::Snooping, BTreeSet::new()),
    ];
    for (name, cfg) in ExploreConfig::builtins() {
        println!("   exploring {name} ...");
        let out = timed_explore(name, &cfg, jobs);
        report(name, &out);
        // A budget-capped search is a bounded gate, not a failure: only
        // an actual violation fails the pass.
        ok &= out.violation.is_none();
        for (p, set) in &mut observed {
            if *p == cfg.protocol {
                set.extend(out.transients.iter().cloned());
            }
        }
        rows.push(BenchRow {
            name,
            mutant: "none",
            outcome: out,
        });
    }
    println!("   -- transient-state table audit --");
    for (protocol, set) in &observed {
        let audit = audit_transients(*protocol, set);
        if audit.is_clean() {
            println!(
                "   {protocol:?}: {} transient(s) reached, all declared",
                set.len()
            );
        } else {
            ok = false;
            for u in &audit.unknown {
                eprintln!("   ERROR: {protocol:?} reached undeclared transient {u}");
            }
        }
        for d in &audit.dead {
            println!("   note: {protocol:?} table entry {d} not reached by this suite");
        }
    }
    ok
}

/// Mutant-exhaustiveness gate: every parseable mutant is caught by
/// exploration on its demo configuration. Returns true if none escape.
fn mutants_pass(jobs: usize, rows: &mut Vec<BenchRow>) -> bool {
    println!("== pass 3: mutant exhaustiveness ==");
    let mut ok = true;
    for m in Mutant::ALL {
        if m == Mutant::None {
            continue; // the clean baseline is pass 2
        }
        let cfg = m.demo_config();
        let out = timed_explore(m.name(), &cfg, jobs);
        match &out.violation {
            Some((defect, steps)) => {
                println!(
                    "   {}: caught as {} in {} steps",
                    m.name(),
                    defect.class(),
                    steps.len()
                );
            }
            None => {
                eprintln!("   ERROR: mutant {} NOT caught — checker is too weak", m.name());
                ok = false;
            }
        }
        rows.push(BenchRow {
            name: demo_name(m),
            mutant: m.name(),
            outcome: out,
        });
    }
    ok
}

fn demo_name(m: Mutant) -> &'static str {
    match m {
        Mutant::None => "directory_3x2",
        Mutant::SkipInvAck | Mutant::CorruptData => "directory_evicting",
        Mutant::StrayAck | Mutant::AckPanic => "directory_rollback",
    }
}

/// Finds an already-computed reduced outcome for `name`/`mutant` in the
/// rows accumulated by earlier passes, or explores it fresh (for
/// `--reduction` run standalone).
fn reduced_outcome(
    name: &str,
    mutant: Mutant,
    cfg: &ExploreConfig,
    jobs: usize,
    rows: &[BenchRow],
) -> ExploreOutcome {
    rows.iter()
        .find(|r| r.name == name && r.mutant == mutant.name())
        .map_or_else(
            || timed_explore(&format!("{name}[{}] reduced", mutant.name()), cfg, jobs),
            |r| r.outcome.clone(),
        )
}

/// Raw-vs-reduced audit. Two obligations:
///
/// - every mutant demo: the quotient search reaches the same verdict
///   class as the unreduced search (soundness in the field, not just
///   under proptest);
/// - every clean builtin: a `ReductionRow` comparing raw and canonical
///   state counts, with the acceptance bound (>=5x on directory_3x2).
///
/// The factor is `represented / canonical`: exact over the visited
/// region even when a search is budget-capped, and exact for the whole
/// graph when the quotient is exhaustive. Reduced outcomes are reused
/// from passes 2/3 when available; only the raw searches are new work.
fn reduction_pass(jobs: usize, rows: &[BenchRow], reductions: &mut Vec<ReductionRow>) -> bool {
    println!("== pass 4: symmetry-reduction audit (raw vs reduced) ==");
    let mut ok = true;
    for m in Mutant::ALL {
        if m == Mutant::None {
            continue;
        }
        let cfg = m.demo_config();
        let name = demo_name(m);
        let raw = timed_explore(
            &format!("{name}[{}] raw", m.name()),
            &cfg.with_symmetry(false),
            jobs,
        );
        let red = reduced_outcome(name, m, &cfg, jobs, rows);
        let raw_class = raw.violation.as_ref().map(|(d, _)| d.class());
        let red_class = red.violation.as_ref().map(|(d, _)| d.class());
        if raw_class == red_class {
            println!(
                "   {name}[{}]: identical verdict ({})",
                m.name(),
                raw_class.unwrap_or("clean")
            );
        } else {
            eprintln!(
                "   ERROR: {name}[{}]: raw found {raw_class:?} but reduced found {red_class:?}",
                m.name()
            );
            ok = false;
        }
    }
    for (name, cfg) in ExploreConfig::builtins() {
        let raw = timed_explore(&format!("{name} raw"), &cfg.with_symmetry(false), jobs);
        let red = reduced_outcome(name, Mutant::None, &cfg, jobs, rows);
        if raw.violation.is_some() || red.violation.is_some() {
            eprintln!("   ERROR: {name}: clean builtin found a violation in the reduction audit");
            ok = false;
            continue;
        }
        let factor_x100 = red.represented * 100 / red.states as u64;
        println!(
            "   {name}: {} raw{} vs {} canonical{} — reduction factor {}.{:02}x \
             ({} states represented)",
            raw.states,
            if raw.hit_limit { " (capped)" } else { "" },
            red.states,
            if red.hit_limit { " (capped)" } else { "" },
            factor_x100 / 100,
            factor_x100 % 100,
            red.represented,
        );
        if name == "directory_3x2" && factor_x100 < 500 {
            eprintln!("   ERROR: acceptance requires a >=5x reduction on directory_3x2");
            ok = false;
        }
        if name == "directory_4x2" && red.hit_limit {
            eprintln!("   ERROR: acceptance requires the 4-cache builtin to complete under reduction");
            ok = false;
        }
        reductions.push(ReductionRow {
            name,
            raw_states: raw.states,
            raw_capped: raw.hit_limit,
            canonical_states: red.states,
            represented: red.represented,
            factor_x100,
        });
    }
    ok
}

/// Negative test: seed the named defect and require the checker to
/// catch it. Exits 0 iff a violation is found (or, for `none`, iff the
/// clean gate stays clean).
fn run_single_mutant(m: Mutant, jobs: usize) -> ExitCode {
    let cfg = m.demo_config();
    println!("== mutant run: {m:?} on {:?} ==", cfg.protocol);
    let out = timed_explore(m.name(), &cfg, jobs);
    report("mutant configuration", &out);
    match (m, &out.violation) {
        (Mutant::None, None) => {
            println!("clean protocol, no violation (as expected)");
            ExitCode::SUCCESS
        }
        (Mutant::None, Some(_)) => ExitCode::FAILURE,
        (_, Some(_)) => {
            println!("mutant caught (as expected)");
            ExitCode::SUCCESS
        }
        (_, None) => {
            eprintln!("mutant NOT caught — checker is too weak");
            ExitCode::FAILURE
        }
    }
}
