//! `dvmc-analyzer` — static verification gate for the DVMC workspace.
//!
//! ```text
//! dvmc-analyzer --all                  run every pass (the CI gate)
//! dvmc-analyzer --tables               ordering-table lint only
//! dvmc-analyzer --protocol             protocol model checking only
//! dvmc-analyzer --mutant skip-inv      seed a defect; exit 0 iff caught
//! dvmc-analyzer --mutant corrupt-data
//! ```
//!
//! Exits non-zero (printing a counterexample) on any finding.

use dvmc_analyzer::{explore, lint_all_models, ExploreConfig, ExploreOutcome, Mutant};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut run_tables = false;
    let mut run_protocol = false;
    let mut mutant: Option<Mutant> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => {
                run_tables = true;
                run_protocol = true;
            }
            "--tables" => run_tables = true,
            "--protocol" => run_protocol = true,
            "--mutant" => {
                let Some(name) = it.next() else {
                    eprintln!("--mutant requires a name (skip-inv | corrupt-data)");
                    return ExitCode::from(2);
                };
                match Mutant::parse(name) {
                    Some(m) => mutant = Some(m),
                    None => {
                        eprintln!("unknown mutant {name:?} (skip-inv | corrupt-data)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                print_usage();
                return ExitCode::from(2);
            }
        }
    }

    if let Some(m) = mutant {
        return run_mutant(m);
    }
    if !run_tables && !run_protocol {
        print_usage();
        return ExitCode::from(2);
    }

    let mut failed = false;
    if run_tables {
        failed |= !tables_pass();
    }
    if run_protocol {
        failed |= !protocol_pass();
    }
    if failed {
        eprintln!("\ndvmc-analyzer: FAIL");
        ExitCode::FAILURE
    } else {
        println!("\ndvmc-analyzer: all passes clean");
        ExitCode::SUCCESS
    }
}

fn print_usage() {
    eprintln!(
        "usage: dvmc-analyzer [--all] [--tables] [--protocol] [--mutant skip-inv|corrupt-data]"
    );
}

/// Ordering-table linter pass. Returns true if clean.
fn tables_pass() -> bool {
    println!("== pass 1: ordering-table lint ==");
    let errors = lint_all_models();
    if errors.is_empty() {
        println!("   all models clean (structure, hierarchy, predicates)");
        true
    } else {
        for e in &errors {
            eprintln!("   ERROR: {e}");
        }
        eprintln!("   {} ordering-table finding(s)", errors.len());
        false
    }
}

/// Protocol model-checking pass over the small-configuration suite.
/// Returns true if every configuration is clean.
fn protocol_pass() -> bool {
    println!("== pass 2: protocol model checking ==");
    let suite: [(&str, ExploreConfig); 3] = [
        ("directory 3 caches x 2 blocks", ExploreConfig::directory_3x2()),
        (
            "directory 2 caches x 2 blocks, evicting L2",
            ExploreConfig::directory_evicting(),
        ),
        ("snooping 2 caches x 2 blocks", ExploreConfig::snooping_2x2()),
    ];
    let mut ok = true;
    for (name, cfg) in suite {
        println!("   exploring {name} ...");
        let out = explore(&cfg);
        report(name, &out);
        ok &= out.violation.is_none();
    }
    ok
}

fn report(name: &str, out: &ExploreOutcome) {
    println!(
        "   {name}: {} distinct states, {} transitions{}",
        out.states,
        out.transitions,
        if out.hit_limit {
            " (state budget reached)"
        } else {
            " (exhaustive)"
        }
    );
    if let Some((defect, steps)) = &out.violation {
        eprintln!("   VIOLATION: {defect}");
        eprintln!("   counterexample ({} steps):", steps.len());
        for (i, step) in steps.iter().enumerate() {
            eprintln!("     {:>3}. {step}", i + 1);
        }
    }
}

/// Negative test: seed the named defect and require the checker to
/// catch it. Exits 0 iff a violation is found.
fn run_mutant(m: Mutant) -> ExitCode {
    let base = match m {
        Mutant::None => ExploreConfig::directory_3x2(),
        Mutant::SkipInvAck | Mutant::CorruptData => ExploreConfig::directory_evicting(),
    };
    let cfg = ExploreConfig { mutant: m, ..base };
    println!("== mutant run: {m:?} on {:?} ==", cfg.protocol);
    let out = explore(&cfg);
    report("mutant configuration", &out);
    match (m, &out.violation) {
        (Mutant::None, None) => {
            println!("clean protocol, no violation (as expected)");
            ExitCode::SUCCESS
        }
        (Mutant::None, Some(_)) => ExitCode::FAILURE,
        (_, Some(_)) => {
            println!("mutant caught (as expected)");
            ExitCode::SUCCESS
        }
        (_, None) => {
            eprintln!("mutant NOT caught — checker is too weak");
            ExitCode::FAILURE
        }
    }
}
