//! Ordering-table linter: well-formedness checks over the consistency
//! models' ordering tables (Tables 1–4 of the paper).
//!
//! The dynamic Allowable Reordering checker trusts these tables blindly —
//! a corrupted entry silently weakens (or over-constrains) every run. The
//! linter statically asserts:
//!
//! 1. **Mask placement**: `MaskOfFirst` entries appear only in the membar
//!    row and `MaskOfSecond` entries only in the membar column — a mask
//!    anywhere else can never be supplied by the operation it indexes.
//! 2. **Membar self-ordering**: the membar/membar entry is `Always` in
//!    every model (barriers are processed in program order).
//! 3. **Strength hierarchy**: SC ⊇ TSO ⊇ PSO ⊇ RMO entry-wise — every
//!    ordering a weaker model requires, each stronger model requires too,
//!    evaluated over a concrete alphabet of operation classes including
//!    all 16 membar masks.
//! 4. **Predicate agreement**: each `Model`'s capability helpers
//!    (`loads_ordered`, `store_load_relaxed`, `store_store_relaxed`)
//!    match both its table and the architecturally expected values.

use dvmc_consistency::{MembarMask, Model, OpClass, OpKind, OrderingTable, Requirement};
use std::fmt;

/// One linter finding. `Display` renders a self-contained counterexample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LintError {
    /// A mask requirement sits in a row/column that can never supply it.
    MaskPlacement {
        table: &'static str,
        row: OpKind,
        col: OpKind,
        entry: Requirement,
    },
    /// The membar/membar entry is not `Always`.
    MembarNotSelfOrdered {
        table: &'static str,
        entry: Requirement,
    },
    /// A weaker model requires an ordering that a stronger model drops.
    HierarchyViolation {
        stronger: &'static str,
        weaker: &'static str,
        first: OpClass,
        second: OpClass,
    },
    /// A `Model` capability helper disagrees with its expected value.
    PredicateMismatch {
        model: &'static str,
        predicate: &'static str,
        expected: bool,
        actual: bool,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::MaskPlacement { table, row, col, entry } => write!(
                f,
                "{table}: entry ({row}, {col}) is {entry:?}, but a mask can only be \
                 supplied by a membar in that position"
            ),
            LintError::MembarNotSelfOrdered { table, entry } => write!(
                f,
                "{table}: membar/membar entry is {entry:?}; barriers must always \
                 self-order (expected Always)"
            ),
            LintError::HierarchyViolation { stronger, weaker, first, second } => write!(
                f,
                "hierarchy {stronger} ⊇ {weaker} broken: {weaker} orders \
                 {first} -> {second} but {stronger} does not"
            ),
            LintError::PredicateMismatch { model, predicate, expected, actual } => write!(
                f,
                "{model}::{predicate}() returned {actual}, expected {expected}"
            ),
        }
    }
}

/// The concrete operation-class alphabet the relational checks quantify
/// over: plain ops, atomics, `Stbar`, and all 16 membar masks.
pub fn op_alphabet() -> Vec<OpClass> {
    let mut ops = vec![OpClass::Load, OpClass::Store, OpClass::Atomic, OpClass::Stbar];
    for bits in 0..16u8 {
        ops.push(OpClass::Membar(MembarMask::from_bits(bits)));
    }
    ops
}

/// Structural checks on a single table (mask placement, membar
/// self-ordering). Accepts arbitrary tables so tests can feed corrupted
/// ones.
pub fn lint_table(table: &OrderingTable) -> Vec<LintError> {
    let mut errors = Vec::new();
    for row in OpKind::ALL {
        for col in OpKind::ALL {
            let entry = table.entry(row, col);
            let misplaced = match entry {
                Requirement::MaskOfFirst(_) => row != OpKind::Membar,
                Requirement::MaskOfSecond(_) => col != OpKind::Membar,
                Requirement::Never | Requirement::Always => false,
            };
            if misplaced {
                errors.push(LintError::MaskPlacement {
                    table: table.name(),
                    row,
                    col,
                    entry,
                });
            }
        }
    }
    let mm = table.entry(OpKind::Membar, OpKind::Membar);
    if mm != Requirement::Always {
        errors.push(LintError::MembarNotSelfOrdered {
            table: table.name(),
            entry: mm,
        });
    }
    errors
}

/// Entry-wise strength comparison over the default alphabet
/// ([`op_alphabet`]): every ordering `weaker` requires, `stronger` must
/// require as well.
pub fn lint_hierarchy_pair(stronger: &OrderingTable, weaker: &OrderingTable) -> Vec<LintError> {
    lint_hierarchy_pair_over(&op_alphabet(), stronger, weaker)
}

/// [`lint_hierarchy_pair`] quantified over a caller-supplied alphabet.
/// An empty alphabet is vacuously clean; a restricted alphabet checks
/// the hierarchy over just those operation classes.
pub fn lint_hierarchy_pair_over(
    ops: &[OpClass],
    stronger: &OrderingTable,
    weaker: &OrderingTable,
) -> Vec<LintError> {
    let mut errors = Vec::new();
    for &first in ops {
        for &second in ops {
            if weaker.requires(first, second) && !stronger.requires(first, second) {
                errors.push(LintError::HierarchyViolation {
                    stronger: stronger.name(),
                    weaker: weaker.name(),
                    first,
                    second,
                });
            }
        }
    }
    errors
}

/// Expected capability-probe truth values per model
/// (`loads_ordered`, `store_load_relaxed`, `store_store_relaxed`).
fn expected_predicates(model: Model) -> (bool, bool, bool) {
    match model {
        Model::Sc => (true, false, false),
        Model::Tso | Model::Pc => (true, true, false),
        Model::Pso => (true, true, true),
        Model::Rmo => (false, true, true),
    }
}

/// Checks one model's capability helpers against both its table and the
/// architecturally expected values.
pub fn lint_model_predicates(model: Model) -> Vec<LintError> {
    let t = model.table();
    let (exp_lo, exp_slr, exp_ssr) = expected_predicates(model);
    let probes = [
        ("loads_ordered", model.loads_ordered(), exp_lo),
        ("store_load_relaxed", model.store_load_relaxed(), exp_slr),
        ("store_store_relaxed", model.store_store_relaxed(), exp_ssr),
    ];
    let mut errors = Vec::new();
    for (predicate, actual, expected) in probes {
        if actual != expected {
            errors.push(LintError::PredicateMismatch {
                model: model.name(),
                predicate,
                expected,
                actual,
            });
        }
    }
    // Helpers must also be consistent with the table they summarise.
    let table_probes = [
        (
            "loads_ordered (vs table)",
            model.loads_ordered(),
            t.requires(OpClass::Load, OpClass::Load),
        ),
        (
            "store_load_relaxed (vs table)",
            model.store_load_relaxed(),
            !t.requires(OpClass::Store, OpClass::Load),
        ),
        (
            "store_store_relaxed (vs table)",
            model.store_store_relaxed(),
            !t.requires(OpClass::Store, OpClass::Store),
        ),
    ];
    for (predicate, actual, expected) in table_probes {
        if actual != expected {
            errors.push(LintError::PredicateMismatch {
                model: model.name(),
                predicate,
                expected,
                actual,
            });
        }
    }
    errors
}

/// Runs every table lint: structure of all five tables, the
/// SC ⊇ TSO ⊇ PSO ⊇ RMO chain, and predicate agreement.
pub fn lint_all_models() -> Vec<LintError> {
    let mut errors = Vec::new();
    for model in Model::ALL {
        errors.extend(lint_table(model.table()));
        errors.extend(lint_model_predicates(model));
    }
    let chain = [Model::Sc, Model::Tso, Model::Pso, Model::Rmo];
    for pair in chain.windows(2) {
        errors.extend(lint_hierarchy_pair(pair[0].table(), pair[1].table()));
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use Requirement::{Always as A, Never as N};

    #[test]
    fn clean_tree_lints_clean() {
        let errors = lint_all_models();
        assert!(errors.is_empty(), "unexpected lint errors: {errors:?}");
    }

    #[test]
    fn misplaced_mask_is_caught() {
        // A mask in the Load row can never be supplied by a load.
        let bad = OrderingTable::new(
            "BAD-MASK",
            [
                [Requirement::MaskOfFirst(MembarMask::LL), A, A],
                [N, A, A],
                [A, A, A],
            ],
        );
        let errors = lint_table(&bad);
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, LintError::MaskPlacement { row: OpKind::Load, .. })),
            "expected a MaskPlacement error, got {errors:?}"
        );
    }

    #[test]
    fn non_self_ordering_membar_is_caught() {
        let bad = OrderingTable::new(
            "BAD-MM",
            [[A, A, A], [A, A, A], [A, A, N]],
        );
        let errors = lint_table(&bad);
        assert!(errors
            .iter()
            .any(|e| matches!(e, LintError::MembarNotSelfOrdered { .. })));
    }

    #[test]
    fn corrupted_entry_breaks_hierarchy() {
        // "TSO" that drops Load->Store, which PSO still requires.
        let corrupted_tso = OrderingTable::new(
            "TSO-corrupt",
            [[A, N, A], [N, A, A], [A, A, A]],
        );
        let errors = lint_hierarchy_pair(&corrupted_tso, Model::Pso.table());
        assert!(
            errors.iter().any(|e| matches!(
                e,
                LintError::HierarchyViolation {
                    first: OpClass::Load,
                    second: OpClass::Store,
                    ..
                }
            )),
            "expected Load->Store hierarchy violation, got {errors:?}"
        );
    }

    #[test]
    fn real_chain_is_strictly_ordered_somewhere() {
        // Sanity: the hierarchy is not vacuous — TSO really is weaker
        // than SC on Store->Load.
        assert!(Model::Sc
            .table()
            .requires(OpClass::Store, OpClass::Load));
        assert!(!Model::Tso
            .table()
            .requires(OpClass::Store, OpClass::Load));
    }

    #[test]
    fn empty_alphabet_is_vacuously_clean() {
        // With nothing to quantify over, even an inverted pair (RMO
        // claimed stronger than SC) produces no findings.
        let errors =
            lint_hierarchy_pair_over(&[], Model::Rmo.table(), Model::Sc.table());
        assert!(errors.is_empty(), "vacuous check found {errors:?}");
    }

    #[test]
    fn every_model_is_as_strong_as_itself() {
        for model in Model::ALL {
            let errors = lint_hierarchy_pair(model.table(), model.table());
            assert!(
                errors.is_empty(),
                "{} vs itself: {errors:?}",
                model.name()
            );
        }
    }

    #[test]
    fn chain_pairwise_matrix_is_clean_exactly_above_the_diagonal() {
        // The chain is strictly decreasing in strength, so comparing
        // chain[i] (claimed stronger) against chain[j] must be clean iff
        // i <= j — including non-adjacent pairs like SC vs RMO, and
        // including the inverted direction, which must always produce a
        // concrete counterexample.
        let chain = [Model::Sc, Model::Tso, Model::Pso, Model::Rmo];
        for (i, a) in chain.iter().enumerate() {
            for (j, b) in chain.iter().enumerate() {
                let errors = lint_hierarchy_pair(a.table(), b.table());
                assert_eq!(
                    errors.is_empty(),
                    i <= j,
                    "{} vs {}: {errors:?}",
                    a.name(),
                    b.name()
                );
            }
        }
    }

    #[test]
    fn restricted_alphabet_hides_exactly_the_out_of_scope_violations() {
        // TSO relaxes only Store->Load relative to SC, so over a
        // store-free alphabet the inverted pair TSO-vs-SC is clean...
        let loads_only = [OpClass::Load];
        assert!(lint_hierarchy_pair_over(
            &loads_only,
            Model::Tso.table(),
            Model::Sc.table()
        )
        .is_empty());
        // ...and reappears the moment stores are in scope.
        let both = [OpClass::Load, OpClass::Store];
        let errors =
            lint_hierarchy_pair_over(&both, Model::Tso.table(), Model::Sc.table());
        assert!(errors.iter().any(|e| matches!(
            e,
            LintError::HierarchyViolation {
                first: OpClass::Store,
                second: OpClass::Load,
                ..
            }
        )));
    }

    #[test]
    fn predicates_agree_for_every_model_including_pc() {
        // PC sits off the SC/TSO/PSO/RMO chain; its capability helpers
        // still have to match both the expectations and its own table.
        for model in Model::ALL {
            let errors = lint_model_predicates(model);
            assert!(errors.is_empty(), "{}: {errors:?}", model.name());
        }
    }

    #[test]
    fn errors_render_counterexamples() {
        let e = LintError::HierarchyViolation {
            stronger: "TSO",
            weaker: "PSO",
            first: OpClass::Load,
            second: OpClass::Store,
        };
        let s = e.to_string();
        assert!(s.contains("TSO") && s.contains("Load") && s.contains("Store"));
    }
}
