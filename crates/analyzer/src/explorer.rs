//! Exhaustive BFS model checker over small coherence configurations.
//!
//! Qadeer-style small-configuration checking: 2–5 `CacheNode`s, one
//! `HomeCtrl`, 1–3 blocks, driving the real controller step functions
//! (`submit`/`deliver`/`deliver_snoop`/`tick`/`pop_msg`). The explorer
//! owns the network: outbound messages drain into an in-flight pool
//! (modelling the unordered torus) and delivery order is the explored
//! nondeterminism; snooping address requests are serialized atomically to
//! every controller (modelling the ordered broadcast tree).
//!
//! Checked invariants, per reachable state:
//!
//! - **SWMR**: at most one cache holds a block in an owning state (M/O),
//!   and an M copy excludes all other cached copies.
//! - **Data-value integrity**: every load returns a value some store
//!   actually wrote to that word (writes use globally unique values, so
//!   fabricated or cross-wired data is caught), checked against a golden
//!   memory model.
//! - **No unhandled (state, message) combinations**: controller panics
//!   (`unreachable!`/`expect` on impossible protocol events) are caught
//!   and reported as counterexamples.
//! - **Deadlock-freedom**: every non-quiescent state has an enabled
//!   transition.
//!
//! On violation the BFS parent map reconstructs the full action trace
//! from the initial state.
//!
//! # Symmetry reduction
//!
//! Cache identities (and, when they are conflict-equivalent w.r.t. the L2
//! set function, block addresses) are interchangeable: relabeling them in
//! a reachable state yields a reachable state, and relabeled defects are
//! defects of the same class. The explorer therefore quotients the graph
//! by the group `S_caches × S_blocks`: each settled state is digested
//! once per group element (via [`Relabel`]) and the lexicographically
//! smallest token stream is the canonical form. Two facts make this sound
//! here without renaming anything else:
//!
//! - store *values* and request *ids* need no renaming, because a
//!   permuted action sequence draws the same values from the same global
//!   counters at the same positions — the permuted run is an exact
//!   relabel-image, value-for-value;
//! - fingerprints are taken at **settled** states, so drainable queues
//!   are empty and residual FIFOs hold exactly the explicit actions'
//!   residue, whose order the permuted run reproduces.
//!
//! The home controller is a fixed point of the group (all configured
//! blocks home to it), so home-bound message destinations are not
//! relabeled. `orbit` counts the distinct digests of a state under the
//! group, i.e. its orbit size; summing them gives `represented`, the raw
//! graph size the quotient stands for (exactly, when both are explored
//! to completion).
//!
//! # The recovery product machine
//!
//! With [`ExploreConfig::rollback`] on, the explored machine is the
//! *product* of the protocol with the checkpoint/rollback recovery
//! automaton that `dvmc-sim` implements: a `Checkpoint` action snapshots
//! the whole validated (quiescent) system state, and a `Rollback` action
//! restores it, squashing in-flight messages — mirroring
//! `System::try_recover`'s snapshot-restore plus message truncation. A
//! `Rollback` may optionally *leak* one in-flight message past the
//! truncation barrier (the stray-ack class of recovery bugs found in the
//! end-to-end work), which is how the seeded [`Mutant::StrayAck`] and
//! [`Mutant::AckPanic`] defects are rediscovered by state enumeration.

use crate::symmetry;
use dvmc_coherence::probe::{encode_addr_req, encode_msg};
use dvmc_coherence::{
    home_bound, AddrReq, CacheArray, CacheNode, HomeConfig, HomeCtrl, Mosi, MshrView, Msg,
    NodeConfig, Outbound, ProcReq, Protocol, Relabel,
};
use dvmc_types::{BlockAddr, NodeId, WordAddr};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};

/// Test-only protocol mutations, used to prove the checker catches real
/// bugs (`--mutant`): each seeds a deliberate defect at the network or
/// recovery layer, leaving the production controllers untouched (except
/// [`Mutant::AckPanic`], which re-enables a retired legacy code path).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutant {
    /// Faithful protocol (the clean gate).
    None,
    /// Drop invalidations but acknowledge them anyway — the classic
    /// skipped-invalidation bug; a stale shared copy survives a writer's
    /// GetM, breaking SWMR.
    SkipInvAck,
    /// Flip a data bit in every DataS/DataM grant — requesters cache and
    /// serve values no store ever wrote, breaking value integrity.
    CorruptData,
    /// Recovery leaks an in-flight InvAck past the rollback truncation
    /// barrier. The stray ack silently clears a directory sharer bit, so
    /// a later writer is granted M while the restored S copy survives —
    /// the SWMR half of the stray-ack defect class.
    StrayAck,
    /// Recovery leaks an in-flight RecallAck *and* the home runs its
    /// legacy strict ack accounting (no AwaitUnblock exemption — the
    /// pre-recovery-hardening code). The stray ack completes a recall
    /// early and the real ack then lands during AwaitUnblock, driving
    /// `complete_txn` into `unreachable!` — the panic half of the
    /// stray-ack defect class, rediscovered by enumeration.
    AckPanic,
}

impl Mutant {
    /// Every mutant, for exhaustiveness gates.
    pub const ALL: [Mutant; 5] = [
        Mutant::None,
        Mutant::SkipInvAck,
        Mutant::CorruptData,
        Mutant::StrayAck,
        Mutant::AckPanic,
    ];

    /// Parses a `--mutant` argument.
    pub fn parse(name: &str) -> Option<Mutant> {
        match name {
            "none" => Some(Mutant::None),
            "skip-inv" => Some(Mutant::SkipInvAck),
            "corrupt-data" => Some(Mutant::CorruptData),
            "stray-ack" => Some(Mutant::StrayAck),
            "ack-panic" => Some(Mutant::AckPanic),
            _ => None,
        }
    }

    /// The `--mutant` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Mutant::None => "none",
            Mutant::SkipInvAck => "skip-inv",
            Mutant::CorruptData => "corrupt-data",
            Mutant::StrayAck => "stray-ack",
            Mutant::AckPanic => "ack-panic",
        }
    }

    /// A builtin configuration on which this mutant's defect is
    /// reachable (and, for `None`, stays clean).
    pub fn demo_config(self) -> ExploreConfig {
        match self {
            Mutant::None => ExploreConfig::directory_3x2(),
            Mutant::SkipInvAck | Mutant::CorruptData => ExploreConfig::directory_evicting(),
            Mutant::StrayAck | Mutant::AckPanic => ExploreConfig::directory_rollback(),
        }
        .with_mutant(self)
    }

    /// Whether this mutant's recovery leaks `msg` past the rollback
    /// truncation barrier.
    fn leaks(self, msg: &Msg) -> bool {
        match self {
            Mutant::StrayAck => matches!(msg, Msg::InvAck { .. }),
            Mutant::AckPanic => matches!(msg, Msg::RecallAck { .. }),
            _ => false,
        }
    }

    /// Whether this mutant reverts the home to legacy strict ack
    /// accounting (panics on acks during AwaitUnblock).
    fn strict_acks(self) -> bool {
        matches!(self, Mutant::AckPanic)
    }
}

/// A rejected [`ExploreConfigBuilder`] parameter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// Cache count outside 1..=8 (node ids, sharer bitmasks, and the
    /// factorial symmetry group all assume small configurations).
    CacheCount(usize),
    /// Block count outside 1..=8.
    BlockCount(usize),
    /// Per-cache op budget outside 1..=4 (the explored graph is
    /// exponential in the total budget).
    OpsBudget(usize),
    /// L2 capacity below one 64-byte line.
    L2Geometry(usize),
    /// Zero distinct-state budget.
    StateBudget,
    /// Rollback enabled with a zero or oversized rollback budget.
    RollbackBudget(u32),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::CacheCount(n) => write!(f, "cache count {n} outside 1..=8"),
            ConfigError::BlockCount(n) => write!(f, "block count {n} outside 1..=8"),
            ConfigError::OpsBudget(n) => write!(f, "ops-per-cache {n} outside 1..=4"),
            ConfigError::L2Geometry(b) => write!(f, "l2_bytes {b} below one 64-byte line"),
            ConfigError::StateBudget => write!(f, "max_states must be at least 2"),
            ConfigError::RollbackBudget(n) => write!(f, "max_rollbacks {n} outside 1..=4"),
        }
    }
}

/// Validating builder for [`ExploreConfig`]: the only way to construct
/// configurations that cannot silently exceed the NodeId / sharer-mask /
/// address-width assumptions baked into the explorer, and the place
/// where block-interchangeability (hence the soundness of block
/// symmetry) is detected rather than assumed.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfigBuilder {
    protocol: Protocol,
    caches: usize,
    blocks: usize,
    ops_per_cache: usize,
    l2_bytes: usize,
    max_states: usize,
    mutant: Mutant,
    symmetry: bool,
    rollback: bool,
    max_rollbacks: u32,
}

impl ExploreConfigBuilder {
    /// A 2-cache, 1-block, 1-op configuration of `protocol`; symmetry
    /// on, rollback off.
    pub fn new(protocol: Protocol) -> Self {
        ExploreConfigBuilder {
            protocol,
            caches: 2,
            blocks: 1,
            ops_per_cache: 1,
            l2_bytes: 256,
            max_states: 400_000,
            mutant: Mutant::None,
            symmetry: true,
            rollback: false,
            max_rollbacks: 1,
        }
    }

    pub fn caches(mut self, n: usize) -> Self {
        self.caches = n;
        self
    }

    pub fn blocks(mut self, n: usize) -> Self {
        self.blocks = n;
        self
    }

    pub fn ops_per_cache(mut self, n: usize) -> Self {
        self.ops_per_cache = n;
        self
    }

    pub fn l2_bytes(mut self, b: usize) -> Self {
        self.l2_bytes = b;
        self
    }

    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    pub fn mutant(mut self, m: Mutant) -> Self {
        self.mutant = m;
        self
    }

    pub fn symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    pub fn rollback(mut self, on: bool) -> Self {
        self.rollback = on;
        self
    }

    pub fn max_rollbacks(mut self, n: u32) -> Self {
        self.max_rollbacks = n;
        self
    }

    /// Validates the parameters and detects block interchangeability.
    ///
    /// Block symmetry is sound only when permuting the configured blocks
    /// commutes with cache-set indexing — i.e. the blocks are
    /// *conflict-equivalent*: they map to all-distinct or all-equal L2
    /// sets (the 64-byte single-way L1 has one set, so it never
    /// discriminates). Otherwise the block component of the group is
    /// restricted to the identity; cache symmetry is always sound.
    pub fn try_build(self) -> Result<ExploreConfig, ConfigError> {
        if self.caches == 0 || self.caches > 8 {
            return Err(ConfigError::CacheCount(self.caches));
        }
        if self.blocks == 0 || self.blocks > 8 {
            return Err(ConfigError::BlockCount(self.blocks));
        }
        if self.ops_per_cache == 0 || self.ops_per_cache > 4 {
            return Err(ConfigError::OpsBudget(self.ops_per_cache));
        }
        if self.l2_bytes < 64 {
            return Err(ConfigError::L2Geometry(self.l2_bytes));
        }
        if self.max_states < 2 {
            return Err(ConfigError::StateBudget);
        }
        if self.rollback && (self.max_rollbacks == 0 || self.max_rollbacks > 4) {
            return Err(ConfigError::RollbackBudget(self.max_rollbacks));
        }
        let mut cfg = ExploreConfig {
            protocol: self.protocol,
            caches: self.caches,
            blocks: self.blocks,
            ops_per_cache: self.ops_per_cache,
            l2_bytes: self.l2_bytes,
            max_states: self.max_states,
            mutant: self.mutant,
            symmetry: self.symmetry,
            rollback: self.rollback,
            max_rollbacks: self.max_rollbacks,
            block_symmetry: false,
        };
        // Probe the real L2 geometry rather than duplicating its
        // rounding rules.
        let sets = CacheArray::<Mosi>::with_bytes(self.l2_bytes, 1).sets();
        let set_of = |b: &BlockAddr| (b.0 as usize) & (sets - 1);
        let blocks = blocks_for(&cfg);
        let mut seen: Vec<usize> = blocks.iter().map(set_of).collect();
        seen.sort_unstable();
        let distinct = {
            let mut d = seen.clone();
            d.dedup();
            d.len()
        };
        cfg.block_symmetry = distinct == 1 || distinct == blocks.len();
        Ok(cfg)
    }
}

/// One explored configuration. Construct via [`ExploreConfigBuilder`]
/// (or a builtin), which validates the small-configuration assumptions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExploreConfig {
    /// Protocol variant under test.
    pub protocol: Protocol,
    /// Number of cache nodes (2–5 for tractable exhaustive search).
    pub caches: usize,
    /// Blocks in play; all map to home node 0.
    pub blocks: usize,
    /// Memory operations each cache may issue (the op budget).
    pub ops_per_cache: usize,
    /// L2 bytes per cache — small values force evictions and exercise
    /// the writeback paths.
    pub l2_bytes: usize,
    /// Distinct-state budget; exceeding it stops the search (reported,
    /// not a failure).
    pub max_states: usize,
    /// Seeded protocol defect (for negative testing).
    pub mutant: Mutant,
    /// Quotient the graph by the symmetry group (sound; on by default).
    pub symmetry: bool,
    /// Explore the protocol × checkpoint/rollback product machine.
    pub rollback: bool,
    /// Rollback budget of the product machine.
    pub max_rollbacks: u32,
    /// Whether the configured blocks are conflict-interchangeable
    /// (computed by the builder; block symmetry is unsound otherwise).
    pub block_symmetry: bool,
}

impl ExploreConfig {
    /// The acceptance-gate configuration: 3 caches, 2 blocks, MOSI
    /// directory.
    pub fn directory_3x2() -> Self {
        ExploreConfigBuilder::new(Protocol::Directory)
            .caches(3)
            .blocks(2)
            .ops_per_cache(2)
            .l2_bytes(256)
            .max_states(150_000)
            .try_build()
            .expect("builtin configuration is valid")
    }

    /// A tiny-cache directory configuration that forces L2 evictions,
    /// covering the PutM / writeback-race paths.
    pub fn directory_evicting() -> Self {
        ExploreConfigBuilder::new(Protocol::Directory)
            .caches(2)
            .blocks(2)
            .ops_per_cache(2)
            .l2_bytes(64)
            .max_states(400_000)
            .try_build()
            .expect("builtin configuration is valid")
    }

    /// The snooping configuration: 2 caches, 2 blocks over the ordered
    /// broadcast tree.
    pub fn snooping_2x2() -> Self {
        ExploreConfigBuilder::new(Protocol::Snooping)
            .caches(2)
            .blocks(2)
            .ops_per_cache(2)
            .l2_bytes(256)
            .max_states(400_000)
            .try_build()
            .expect("builtin configuration is valid")
    }

    /// A tiny-cache snooping configuration forcing L2 evictions over
    /// the ordered broadcast tree, covering the snooping writeback and
    /// deferred-supply transients the conflict-free suite never enters.
    pub fn snooping_evicting() -> Self {
        ExploreConfigBuilder::new(Protocol::Snooping)
            .caches(2)
            .blocks(2)
            .ops_per_cache(2)
            .l2_bytes(64)
            .max_states(400_000)
            .try_build()
            .expect("builtin configuration is valid")
    }

    /// The wide configuration: 4 caches, 2 blocks — tractable only under
    /// symmetry reduction (the group has 4!·2 = 48 elements).
    pub fn directory_4x2() -> Self {
        ExploreConfigBuilder::new(Protocol::Directory)
            .caches(4)
            .blocks(2)
            .ops_per_cache(1)
            .l2_bytes(256)
            .max_states(400_000)
            .try_build()
            .expect("builtin configuration is valid")
    }

    /// The recovery product machine: directory protocol composed with
    /// checkpoint/rollback transitions (one rollback, checkpoints at
    /// validated quiescent states, in-flight messages squashed on
    /// restore — mirroring the simulator's recovery path).
    pub fn directory_rollback() -> Self {
        ExploreConfigBuilder::new(Protocol::Directory)
            .caches(2)
            .blocks(1)
            .ops_per_cache(1)
            .l2_bytes(256)
            .max_states(400_000)
            .rollback(true)
            .max_rollbacks(1)
            .try_build()
            .expect("builtin configuration is valid")
    }

    /// Every builtin configuration, named.
    pub fn builtins() -> Vec<(&'static str, ExploreConfig)> {
        vec![
            ("directory_3x2", ExploreConfig::directory_3x2()),
            ("directory_evicting", ExploreConfig::directory_evicting()),
            ("snooping_2x2", ExploreConfig::snooping_2x2()),
            ("snooping_evicting", ExploreConfig::snooping_evicting()),
            ("directory_4x2", ExploreConfig::directory_4x2()),
            ("directory_rollback", ExploreConfig::directory_rollback()),
        ]
    }

    /// This configuration with a seeded mutant.
    pub fn with_mutant(mut self, m: Mutant) -> Self {
        self.mutant = m;
        self
    }

    /// This configuration with symmetry reduction toggled.
    pub fn with_symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }
}

/// One transition of the explored system.
#[derive(Clone, Debug)]
enum Action {
    /// Cache `node` issues a read of `word`.
    SubmitRead { node: usize, word: WordAddr },
    /// Cache `node` issues a store of `value` to `word`.
    SubmitWrite {
        node: usize,
        word: WordAddr,
        value: u64,
    },
    /// Deliver one pooled point-to-point message.
    Deliver { pool_idx: usize, desc: String },
    /// Serialize cache `node`'s oldest address-network request to every
    /// controller (snooping).
    Serialize { node: usize, desc: String },
    /// Snapshot the current (validated, quiescent) state as the recovery
    /// checkpoint.
    Checkpoint,
    /// Restore the checkpoint, squashing in-flight messages; `leak`
    /// optionally carries one pooled message across the truncation
    /// barrier (the stray-ack defect class).
    Rollback { leak: Option<usize>, desc: String },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::SubmitRead { node, word } => {
                write!(f, "cache{node}: submit Read {word:?}")
            }
            Action::SubmitWrite { node, word, value } => {
                write!(f, "cache{node}: submit Write {word:?} = {value}")
            }
            Action::Deliver { desc, .. } => write!(f, "deliver {desc}"),
            Action::Serialize { node, desc } => {
                write!(f, "serialize cache{node}'s address request: {desc}")
            }
            Action::Checkpoint => write!(f, "checkpoint: snapshot validated state"),
            Action::Rollback { leak: None, .. } => {
                write!(f, "rollback: restore checkpoint, squash in-flight messages")
            }
            Action::Rollback { desc, .. } => {
                write!(f, "rollback: restore checkpoint, leaking {desc}")
            }
        }
    }
}

/// A detected protocol defect.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Defect {
    /// Two caches hold conflicting permission for one block.
    Swmr { block: BlockAddr, detail: String },
    /// A load returned a value no store ever wrote.
    DataIntegrity {
        word: WordAddr,
        got: u64,
        history: Vec<u64>,
    },
    /// A non-quiescent state with no enabled transition.
    Deadlock { detail: String },
    /// A controller panicked — an unhandled (state, message) combination.
    Unhandled { message: String },
}

impl Defect {
    /// Stable class tag, for reports and cross-run comparison.
    pub fn class(&self) -> &'static str {
        match self {
            Defect::Swmr { .. } => "swmr",
            Defect::DataIntegrity { .. } => "data-integrity",
            Defect::Deadlock { .. } => "deadlock",
            Defect::Unhandled { .. } => "unhandled",
        }
    }
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Defect::Swmr { block, detail } => {
                write!(f, "SWMR violation on {block:?}: {detail}")
            }
            Defect::DataIntegrity { word, got, history } => write!(
                f,
                "data-value integrity violation at {word:?}: load returned {got}, \
                 but only {history:?} were ever written"
            ),
            Defect::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            Defect::Unhandled { message } => {
                write!(f, "unhandled (state, message) combination: {message}")
            }
        }
    }
}

/// Result of exploring one configuration. Every field is a deterministic
/// function of the configuration alone — independent of worker count —
/// which is what the CI determinism gate byte-compares.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExploreOutcome {
    /// Distinct (canonical, under symmetry) system states visited.
    pub states: usize,
    /// Transitions applied.
    pub transitions: usize,
    /// Sum of orbit sizes over visited canonical states: the raw-graph
    /// size the quotient represents. Equals the unreduced state count
    /// when both searches run to completion.
    pub represented: u64,
    /// Whether the distinct-state budget stopped the search.
    pub hit_limit: bool,
    /// First defect found, with the action trace reaching it.
    pub violation: Option<(Defect, Vec<String>)>,
    /// Transient controller-state labels occupied across all visited
    /// states, for the table audit.
    pub transients: BTreeSet<String>,
}

/// An operation a cache is waiting on.
#[derive(Clone, Debug)]
enum Pending {
    Read { id: u64, word: WordAddr },
    Write { id: u64, word: WordAddr, value: u64 },
}

/// The full explored system: controllers, in-flight messages, the golden
/// memory model, and (in product mode) the recovery checkpoint.
#[derive(Clone)]
struct State {
    caches: Vec<CacheNode>,
    home: HomeCtrl,
    /// In-flight point-to-point messages (the unordered torus).
    pool: Vec<Outbound>,
    /// Per-cache FIFO of address-network requests awaiting serialization.
    addr_queues: Vec<VecDeque<AddrReq>>,
    /// Next address-network order tag.
    next_order: u64,
    /// Remaining op budget per cache.
    budget: Vec<usize>,
    /// The op each cache is blocked on, if any.
    pending: Vec<Option<Pending>>,
    /// Every value ever stored per word (index parallel to `words`);
    /// starts with the initial 0.
    history: Vec<Vec<u64>>,
    /// The words in play.
    words: Vec<WordAddr>,
    /// Next unique store value.
    next_value: u64,
    /// Next request id.
    next_id: u64,
    now: u64,
    /// The armed recovery checkpoint (product mode). The image's own
    /// `checkpoint` is `None`.
    checkpoint: Option<Box<State>>,
    /// Rollbacks consumed so far (product mode).
    rollbacks_used: u32,
}

fn node_cfg(cfg: &ExploreConfig) -> NodeConfig {
    NodeConfig {
        nodes: cfg.caches,
        l1_bytes: 64,
        l1_ways: 1,
        l2_bytes: cfg.l2_bytes,
        l2_ways: 1,
        l1_latency: 0,
        l2_latency: 0,
        ports: 8,
        verify: false,
        lt_shift: 0,
    }
}

fn home_cfg(cfg: &ExploreConfig) -> HomeConfig {
    HomeConfig {
        nodes: cfg.caches,
        mem_latency: 0,
        verify: false,
        lt_shift: 0,
        sorter_capacity: 16,
    }
}

/// Blocks that all map to home node 0: 0, caches, 2*caches, ...
fn blocks_for(cfg: &ExploreConfig) -> Vec<BlockAddr> {
    (0..cfg.blocks)
        .map(|i| BlockAddr((i * cfg.caches) as u64))
        .collect()
}

impl State {
    fn initial(cfg: &ExploreConfig) -> State {
        let caches = (0..cfg.caches)
            .map(|i| CacheNode::new(NodeId(i as u8), cfg.protocol, node_cfg(cfg)))
            .collect();
        let mut home = HomeCtrl::new(NodeId(0), cfg.protocol, home_cfg(cfg));
        home.set_legacy_strict_acks(cfg.mutant.strict_acks());
        let words: Vec<WordAddr> = blocks_for(cfg).iter().map(|b| b.word(0)).collect();
        State {
            caches,
            home,
            pool: Vec::new(),
            addr_queues: vec![VecDeque::new(); cfg.caches],
            next_order: 1,
            budget: vec![cfg.ops_per_cache; cfg.caches],
            pending: vec![None; cfg.caches],
            history: vec![vec![0]; words.len()],
            words,
            next_value: 1,
            next_id: 1,
            now: 0,
            checkpoint: None,
            rollbacks_used: 0,
        }
    }

    /// Ticks all controllers and drains their outputs until nothing moves:
    /// outbound messages land in the pool, address requests in their
    /// queues, and completed responses retire pending ops (updating and
    /// checking the golden memory model).
    fn settle(&mut self) -> Result<(), Defect> {
        // A tick can make internal-only progress (e.g. the home's
        // memory-latency stage releases messages at the *start* of the
        // next tick), so only stop after several consecutive ticks with
        // no externally visible movement.
        let mut idle_ticks = 0;
        while idle_ticks < 3 {
            let mut moved = false;
            self.now += 1;
            for cache in &mut self.caches {
                cache.tick(self.now);
            }
            self.home.tick(self.now);
            for i in 0..self.caches.len() {
                while let Some(o) = self.caches[i].pop_msg() {
                    self.pool.push(o);
                    moved = true;
                }
                while let Some(r) = self.caches[i].pop_addr_req() {
                    self.addr_queues[i].push_back(r);
                    moved = true;
                }
                while let Some(resp) = self.caches[i].pop_resp() {
                    moved = true;
                    let Some(p) = self.pending[i].take() else {
                        return Err(Defect::Unhandled {
                            message: format!("cache{i} produced an unexpected response {resp:?}"),
                        });
                    };
                    match p {
                        Pending::Read { id, word } => {
                            if resp.id != id {
                                return Err(Defect::Unhandled {
                                    message: format!(
                                        "cache{i} answered id {} while id {id} was pending",
                                        resp.id
                                    ),
                                });
                            }
                            let w = self.word_index(word);
                            if !self.history[w].contains(&resp.value) {
                                return Err(Defect::DataIntegrity {
                                    word,
                                    got: resp.value,
                                    history: self.history[w].clone(),
                                });
                            }
                        }
                        Pending::Write { id, word, value } => {
                            if resp.id != id {
                                return Err(Defect::Unhandled {
                                    message: format!(
                                        "cache{i} answered id {} while id {id} was pending",
                                        resp.id
                                    ),
                                });
                            }
                            let w = self.word_index(word);
                            self.history[w].push(value);
                        }
                    }
                }
            }
            while let Some(o) = self.home.pop_msg() {
                self.pool.push(o);
                moved = true;
            }
            if moved {
                idle_ticks = 0;
            } else {
                idle_ticks += 1;
            }
        }
        Ok(())
    }

    fn word_index(&self, word: WordAddr) -> usize {
        self.words
            .iter()
            .position(|&w| w == word)
            .expect("op words come from the configured set")
    }

    /// SWMR over the caches' L2 arrays: at most one M/O owner per block,
    /// and an M copy excludes all other cached copies.
    fn check_swmr(&self) -> Result<(), Defect> {
        let mut per_block: HashMap<BlockAddr, Vec<(usize, Mosi)>> = HashMap::new();
        for (i, cache) in self.caches.iter().enumerate() {
            for (addr, state) in cache.probe_l2_states() {
                per_block.entry(addr).or_default().push((i, state));
            }
        }
        for (block, holders) in per_block {
            let owners: Vec<&(usize, Mosi)> = holders
                .iter()
                .filter(|(_, s)| matches!(s, Mosi::M | Mosi::O))
                .collect();
            if owners.len() > 1 {
                return Err(Defect::Swmr {
                    block,
                    detail: format!("multiple owners: {holders:?}"),
                });
            }
            let has_m = holders.iter().any(|(_, s)| *s == Mosi::M);
            if has_m && holders.len() > 1 {
                return Err(Defect::Swmr {
                    block,
                    detail: format!("M copy coexists with other copies: {holders:?}"),
                });
            }
        }
        Ok(())
    }

    /// Appends the digest token stream of the whole system state under
    /// relabeling `r`: the exact stream the relabel-image state would
    /// produce under the identity. Interchangeable-component order
    /// (caches, pool multiset, per-block histories) follows relabeled
    /// keys; `now` is excluded (it is scheduling residue, not state).
    fn digest(&self, r: &Relabel, out: &mut Vec<u64>) {
        // Emission slot j holds the cache whose relabeled id is j.
        let mut order: Vec<usize> = (0..self.caches.len()).collect();
        order.sort_by_key(|&i| r.node(NodeId(i as u8)).index());
        for &i in &order {
            self.caches[i].probe_digest(r, out);
        }
        self.home.probe_digest(r, out);
        // The in-flight pool is an unordered multiset: sort encodings.
        let mut pool_enc: Vec<Vec<u64>> = self
            .pool
            .iter()
            .map(|o| {
                let mut enc = vec![r.dst(o.dst, &o.msg).index() as u64];
                encode_msg(&o.msg, r, &mut enc);
                enc
            })
            .collect();
        pool_enc.sort();
        out.push(self.pool.len() as u64);
        for enc in pool_enc {
            out.extend(enc);
        }
        for &i in &order {
            let q = &self.addr_queues[i];
            out.push(q.len() as u64);
            for req in q {
                encode_addr_req(req, r, out);
            }
        }
        out.push(self.next_order);
        for &i in &order {
            out.push(self.budget[i] as u64);
        }
        for &i in &order {
            match &self.pending[i] {
                None => out.push(0),
                Some(Pending::Read { id, word }) => out.extend([1, *id, r.word(*word).0]),
                Some(Pending::Write { id, word, value }) => {
                    out.extend([2, *id, r.word(*word).0, *value]);
                }
            }
        }
        // Histories are positional per word: emit them in relabeled word
        // order so position j always means the same post-relabel word.
        let mut word_order: Vec<usize> = (0..self.words.len()).collect();
        word_order.sort_by_key(|&w| r.word(self.words[w]).0);
        for &w in &word_order {
            out.push(self.history[w].len() as u64);
            out.extend(self.history[w].iter());
        }
        out.extend([self.next_value, self.next_id, u64::from(self.rollbacks_used)]);
        match &self.checkpoint {
            None => out.push(0),
            Some(c) => {
                out.push(1);
                c.digest(r, out);
            }
        }
    }

    /// Canonical 128-bit fingerprint (the minimum digest stream over the
    /// symmetry group) and the state's orbit size (distinct streams).
    fn canonical(&self, group: &[Relabel]) -> (u128, u64) {
        let mut best: Vec<u64> = Vec::with_capacity(256);
        self.digest(&group[0], &mut best);
        if group.len() == 1 {
            return (fnv128(&best), 1);
        }
        let mut seen: Vec<u128> = vec![fnv128(&best)];
        let mut buf: Vec<u64> = Vec::with_capacity(best.len());
        for r in &group[1..] {
            buf.clear();
            self.digest(r, &mut buf);
            let h = fnv128(&buf);
            if !seen.contains(&h) {
                seen.push(h);
            }
            if buf < best {
                std::mem::swap(&mut best, &mut buf);
            }
        }
        (fnv128(&best), seen.len() as u64)
    }

    /// Transient controller-state labels currently occupied, for the
    /// reachability-vs-table audit.
    fn transient_labels(&self, protocol: Protocol, out: &mut BTreeSet<String>) {
        for cache in &self.caches {
            for m in cache.probe_mshrs() {
                out.insert(mshr_label(protocol, &m));
            }
            for (_, s) in cache.probe_evicting() {
                out.insert(format!("cache:WB_{s:?}"));
            }
        }
        match protocol {
            Protocol::Directory => {
                for k in self.home.probe_busy_kinds() {
                    out.insert(format!("home:{k:?}"));
                }
                if self.home.probe_has_blocked() {
                    out.insert("home:BlockedQueue".to_string());
                }
            }
            Protocol::Snooping => {
                let (awaiting_wb, deferred) = self.home.probe_snoop_transients();
                if awaiting_wb {
                    out.insert("home:AwaitWb".to_string());
                }
                if deferred {
                    out.insert("home:DeferredSupply".to_string());
                }
            }
        }
        if let Some(c) = &self.checkpoint {
            c.transient_labels(protocol, out);
        }
    }

    /// All transitions enabled in this state.
    fn enabled_actions(&self, cfg: &ExploreConfig) -> Vec<Action> {
        let mut actions = Vec::new();
        for i in 0..self.caches.len() {
            if self.budget[i] > 0 && self.pending[i].is_none() {
                for &word in &self.words {
                    actions.push(Action::SubmitRead { node: i, word });
                    actions.push(Action::SubmitWrite {
                        node: i,
                        word,
                        value: 0, // resolved at application time
                    });
                }
            }
        }
        // Identical in-flight messages lead to identical successors:
        // enumerate one delivery per distinct encoding.
        let mut seen: Vec<Vec<u64>> = Vec::new();
        for (idx, o) in self.pool.iter().enumerate() {
            let mut enc = vec![o.dst.index() as u64];
            encode_msg(&o.msg, &Relabel::identity(), &mut enc);
            if seen.contains(&enc) {
                continue;
            }
            seen.push(enc);
            actions.push(Action::Deliver {
                pool_idx: idx,
                desc: describe_outbound(o),
            });
        }
        for (i, q) in self.addr_queues.iter().enumerate() {
            if let Some(front) = q.front() {
                actions.push(Action::Serialize {
                    node: i,
                    desc: format!("{:?} {:?} by cache{}", front.kind, front.addr, i),
                });
            }
        }
        if cfg.rollback {
            // Checkpoints are taken at validated quiescent states — the
            // simulator checkpoints at verified epoch boundaries — and
            // only while a rollback could still consume them.
            if self.checkpoint.is_none()
                && self.rollbacks_used < cfg.max_rollbacks
                && !self.owes_work()
                && self.budget.iter().any(|&b| b > 0)
            {
                actions.push(Action::Checkpoint);
            }
            if self.checkpoint.is_some() && self.rollbacks_used < cfg.max_rollbacks {
                actions.push(Action::Rollback {
                    leak: None,
                    desc: String::new(),
                });
                let mut seen_leaks: Vec<Vec<u64>> = Vec::new();
                for (idx, o) in self.pool.iter().enumerate() {
                    if !cfg.mutant.leaks(&o.msg) {
                        continue;
                    }
                    let mut enc = vec![o.dst.index() as u64];
                    encode_msg(&o.msg, &Relabel::identity(), &mut enc);
                    if seen_leaks.contains(&enc) {
                        continue;
                    }
                    seen_leaks.push(enc);
                    actions.push(Action::Rollback {
                        leak: Some(idx),
                        desc: describe_outbound(o),
                    });
                }
            }
        }
        actions
    }

    /// Applies one action and settles. Returns a defect if an invariant
    /// breaks.
    fn apply(&mut self, action: &Action, mutant: Mutant) -> Result<(), Defect> {
        match action {
            Action::SubmitRead { node, word } => {
                let id = self.next_id;
                self.next_id += 1;
                self.budget[*node] -= 1;
                self.pending[*node] = Some(Pending::Read { id, word: *word });
                self.caches[*node].submit(ProcReq::Read { id, addr: *word });
            }
            Action::SubmitWrite { node, word, .. } => {
                let id = self.next_id;
                let value = self.next_value;
                self.next_id += 1;
                self.next_value += 1;
                self.budget[*node] -= 1;
                self.pending[*node] = Some(Pending::Write {
                    id,
                    word: *word,
                    value,
                });
                self.caches[*node].submit(ProcReq::Write {
                    id,
                    addr: *word,
                    value,
                });
            }
            Action::Deliver { pool_idx, .. } => {
                let o = self.pool.swap_remove(*pool_idx);
                self.route(o, mutant);
            }
            Action::Serialize { node, .. } => {
                let req = self.addr_queues[*node]
                    .pop_front()
                    .expect("serialize only enabled with a queued request");
                let order = self.next_order;
                self.next_order += 1;
                for cache in &mut self.caches {
                    cache.deliver_snoop(order, req);
                }
                self.home.deliver_snoop(order, req);
            }
            Action::Checkpoint => {
                let mut img = self.clone();
                img.checkpoint = None;
                self.checkpoint = Some(Box::new(img));
            }
            Action::Rollback { leak, .. } => {
                let img = self
                    .checkpoint
                    .take()
                    .expect("rollback only enabled with a checkpoint");
                let leaked = leak.map(|i| self.pool[i].clone());
                // Counters survive the restore: squashed values and ids
                // are never reused, exactly as replayed operations draw
                // fresh ids in the simulator's recovery path.
                let next_value = self.next_value;
                let next_id = self.next_id;
                let next_order = self.next_order;
                let rollbacks_used = self.rollbacks_used + 1;
                *self = (*img).clone();
                self.checkpoint = Some(img);
                self.next_value = next_value;
                self.next_id = next_id;
                self.next_order = next_order;
                self.rollbacks_used = rollbacks_used;
                if let Some(o) = leaked {
                    self.pool.push(o);
                }
            }
        }
        self.settle()?;
        self.check_swmr()
    }

    /// Routes a pooled message to the home or a cache, applying the
    /// seeded mutant at the network layer.
    fn route(&mut self, o: Outbound, mutant: Mutant) {
        let mut o = o;
        match (&o.msg, mutant) {
            (Msg::Inv { addr }, Mutant::SkipInvAck) => {
                // Drop the invalidation; forge the ack the home expects.
                let addr = *addr;
                let from = o.dst;
                self.pool.push(Outbound {
                    dst: addr.home(self.caches.len()),
                    msg: Msg::InvAck { from, addr },
                });
                return;
            }
            (Msg::DataS { .. } | Msg::DataM { .. }, Mutant::CorruptData) => {
                if let Msg::DataS { data, .. } | Msg::DataM { data, .. } = &mut o.msg {
                    // A high bit: store values are small integers, so the
                    // corrupted word can never alias a real store.
                    data.flip_bit(63);
                }
            }
            _ => {}
        }
        if home_bound(&o.msg) {
            self.home.deliver(o.msg);
        } else {
            self.caches[o.dst.index()].deliver(o.msg);
        }
    }

    /// Whether the system still owes work: an op in flight or a
    /// controller with internal queued state.
    fn owes_work(&self) -> bool {
        self.pending.iter().any(Option::is_some)
            || !self.caches.iter().all(CacheNode::is_quiescent)
            || !self.home.is_quiescent()
            || !self.pool.is_empty()
            || self.addr_queues.iter().any(|q| !q.is_empty())
    }
}

/// Names the transient cache-controller state a live MSHR occupies, in
/// the Sorin-style nomenclature of the protocol tables.
fn mshr_label(protocol: Protocol, m: &MshrView) -> String {
    let mut label = match protocol {
        // Directory requests are ordered at the home: an MSHR only ever
        // awaits data/acks.
        Protocol::Directory => {
            format!("cache:{}", if m.exclusive { "IM_D" } else { "IS_D" })
        }
        // Snooping requests are ordered by the broadcast tree: before
        // `observed` the MSHR awaits the address network too.
        Protocol::Snooping => {
            let base = match (m.exclusive, m.observed) {
                (false, false) => "IS_AD",
                (false, true) => "IS_D",
                (true, false) => "IM_AD",
                (true, true) => "IM_D",
            };
            format!("cache:{base}")
        }
    };
    if m.stashed {
        label.push_str("+stash");
    }
    if m.deferred {
        label.push_str("+defer");
    }
    if m.has_obligations {
        label.push_str("+obl");
    }
    label
}

fn describe_outbound(o: &Outbound) -> String {
    let kind = match &o.msg {
        Msg::GetS { req, addr } => format!("GetS {addr:?} from cache{}", req.index()),
        Msg::GetM { req, addr } => format!("GetM {addr:?} from cache{}", req.index()),
        Msg::PutM { req, addr, .. } => format!("PutM {addr:?} from cache{}", req.index()),
        Msg::Inv { addr } => format!("Inv {addr:?}"),
        Msg::InvAck { from, addr } => format!("InvAck {addr:?} from cache{}", from.index()),
        Msg::RecallShare { addr } => format!("RecallShare {addr:?}"),
        Msg::RecallInv { addr } => format!("RecallInv {addr:?}"),
        Msg::RecallAck { from, addr, .. } => {
            format!("RecallAck {addr:?} from cache{}", from.index())
        }
        Msg::DataS { addr, .. } => format!("DataS {addr:?}"),
        Msg::DataM { addr, .. } => format!("DataM {addr:?}"),
        Msg::UpgradeAck { addr } => format!("UpgradeAck {addr:?}"),
        Msg::Unblock { from, addr } => format!("Unblock {addr:?} from cache{}", from.index()),
        Msg::PutAck { addr, stale } => format!("PutAck {addr:?} (stale={stale})"),
        Msg::SnoopData { addr, exclusive, .. } => {
            format!("SnoopData {addr:?} (exclusive={exclusive})")
        }
        Msg::Epoch(_) => "Epoch".to_string(),
        Msg::Ber { .. } => "Ber".to_string(),
    };
    format!("{kind} -> node{}", o.dst.index())
}

/// FNV-1a over the token stream with two seeds, giving 128 fingerprint
/// bits.
fn fnv128(tokens: &[u64]) -> u128 {
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x6c62_272e_07bb_0142;
    for &t in tokens {
        for byte in t.to_le_bytes() {
            a = (a ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
            b = (b ^ u64::from(byte)).wrapping_mul(0x3f2_9ce4_8422_2325 | 1);
        }
    }
    (u128::from(a) << 64) | u128::from(b)
}

/// One expanded successor, produced by a worker and folded serially.
struct Step {
    action: String,
    result: StepResult,
}

enum StepResult {
    /// Canonical successor already present in the (frozen, prior-level)
    /// parent map. Intra-level duplicates are caught again at merge.
    Known,
    /// A successor not seen in prior levels.
    Fresh {
        fp: u128,
        orbit: u64,
        state: Box<State>,
        labels: Vec<String>,
    },
    /// Applying the action violated an invariant.
    Defect(Defect),
}

enum NodeOut {
    Steps(Vec<Step>),
    Deadlock(String),
}

/// Expands one frontier state: applies every enabled action, classifies
/// each successor against the read-only prior-level parent map, and
/// canonicalizes fresh states. Pure w.r.t. shared search state, so
/// workers can run it concurrently without affecting the result.
fn expand(
    state: &State,
    cfg: &ExploreConfig,
    group: &[Relabel],
    parents: &HashMap<u128, Option<(u128, String)>>,
) -> NodeOut {
    let actions = state.enabled_actions(cfg);
    if actions.is_empty() {
        if state.owes_work() {
            return NodeOut::Deadlock(format!(
                "no enabled transition, but work remains \
                 (pending={:?}, home quiescent={}, caches: {})",
                state.pending,
                state.home.is_quiescent(),
                state
                    .caches
                    .iter()
                    .map(dvmc_coherence::CacheNode::dump)
                    .collect::<Vec<_>>()
                    .join(" | "),
            ));
        }
        return NodeOut::Steps(Vec::new());
    }
    let mut steps = Vec::with_capacity(actions.len());
    for action in actions {
        let mut next = state.clone();
        let applied = panic::catch_unwind(AssertUnwindSafe(|| {
            next.apply(&action, cfg.mutant).map(|()| next)
        }));
        let result = match applied {
            Ok(Ok(next)) => {
                let (fp, orbit) = next.canonical(group);
                if parents.contains_key(&fp) {
                    StepResult::Known
                } else {
                    let mut labels = BTreeSet::new();
                    next.transient_labels(cfg.protocol, &mut labels);
                    StepResult::Fresh {
                        fp,
                        orbit,
                        state: Box::new(next),
                        labels: labels.into_iter().collect(),
                    }
                }
            }
            Ok(Err(defect)) => StepResult::Defect(defect),
            // `&*payload`: coerce to the *inner* `dyn Any` — `&payload`
            // would unsize the Box itself and defeat the downcast.
            Err(payload) => StepResult::Defect(Defect::Unhandled {
                message: panic_text(&*payload),
            }),
        };
        steps.push(Step {
            action: action.to_string(),
            result,
        });
    }
    NodeOut::Steps(steps)
}

/// Exhaustively explores every reachable state of `cfg` by BFS,
/// checking the protocol invariants at each state. Single-threaded;
/// see [`explore_jobs`].
pub fn explore(cfg: &ExploreConfig) -> ExploreOutcome {
    explore_jobs(cfg, 1)
}

/// [`explore`] with a level-synchronous parallel frontier: each BFS
/// level is expanded by `jobs` workers (canonicalization — the dominant
/// cost under symmetry — happens in the workers against the frozen
/// prior-level visited set), then folded serially in submission order.
/// The outcome is a deterministic function of `cfg` alone: every field
/// is byte-identical at any worker count.
pub fn explore_jobs(cfg: &ExploreConfig, jobs: usize) -> ExploreOutcome {
    let group = if cfg.symmetry {
        symmetry::group(cfg.caches, &blocks_for(cfg), cfg.block_symmetry)
    } else {
        vec![Relabel::identity()]
    };
    let initial = State::initial(cfg);
    let (root_fp, root_orbit) = initial.canonical(&group);
    // fingerprint -> (parent fingerprint, action taken from parent)
    let mut parents: HashMap<u128, Option<(u128, String)>> = HashMap::new();
    parents.insert(root_fp, None);
    let mut transients = BTreeSet::new();
    initial.transient_labels(cfg.protocol, &mut transients);
    let mut level: Vec<(u128, State)> = vec![(root_fp, initial)];
    let mut states = 1usize;
    let mut represented = root_orbit;
    let mut transitions = 0usize;
    let mut hit_limit = false;
    let mut violation: Option<(Defect, Vec<String>)> = None;

    'bfs: while !level.is_empty() {
        let expanded = dvmc_bench::parallel_map_indexed(
            &level,
            jobs,
            |_, (_, state)| expand(state, cfg, &group, &parents),
            |_| {},
        );
        let mut next_level: Vec<(u128, State)> = Vec::new();
        for (idx, out) in expanded.into_iter().enumerate() {
            let src_fp = level[idx].0;
            match out {
                NodeOut::Deadlock(detail) => {
                    violation = Some((Defect::Deadlock { detail }, trace(&parents, src_fp, None)));
                    break 'bfs;
                }
                NodeOut::Steps(steps) => {
                    for step in steps {
                        transitions += 1;
                        match step.result {
                            StepResult::Known => {}
                            StepResult::Defect(defect) => {
                                violation =
                                    Some((defect, trace(&parents, src_fp, Some(step.action))));
                                break 'bfs;
                            }
                            StepResult::Fresh {
                                fp,
                                orbit,
                                state,
                                labels,
                            } => {
                                if parents.contains_key(&fp) {
                                    continue; // intra-level duplicate
                                }
                                parents.insert(fp, Some((src_fp, step.action)));
                                states += 1;
                                represented += orbit;
                                transients.extend(labels);
                                if states >= cfg.max_states {
                                    hit_limit = true;
                                    break 'bfs;
                                }
                                next_level.push((fp, *state));
                            }
                        }
                    }
                }
            }
        }
        level = next_level;
    }
    ExploreOutcome {
        states,
        transitions,
        represented,
        hit_limit,
        violation,
        transients,
    }
}

/// Reconstructs the action trace from the initial state to `fp`,
/// optionally appending the final (violating) action.
fn trace(
    parents: &HashMap<u128, Option<(u128, String)>>,
    mut fp: u128,
    last: Option<String>,
) -> Vec<String> {
    let mut steps = Vec::new();
    while let Some(Some((parent, action))) = parents.get(&fp) {
        steps.push(action.clone());
        fp = *parent;
    }
    steps.reverse();
    if let Some(a) = last {
        steps.push(a);
    }
    steps
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "controller panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(protocol: Protocol) -> ExploreConfig {
        ExploreConfigBuilder::new(protocol)
            .caches(2)
            .blocks(1)
            .ops_per_cache(1)
            .l2_bytes(256)
            .max_states(50_000)
            .try_build()
            .expect("valid test configuration")
    }

    #[test]
    fn directory_2x1_is_clean() {
        let out = explore(&small(Protocol::Directory));
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(!out.hit_limit);
        assert!(out.states > 10, "trivially small graph: {}", out.states);
        assert!(out.represented >= out.states as u64);
    }

    #[test]
    fn snooping_2x1_is_clean() {
        let out = explore(&small(Protocol::Snooping));
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(!out.hit_limit);
        assert!(out.states > 10, "trivially small graph: {}", out.states);
    }

    #[test]
    fn skipped_invalidation_breaks_swmr() {
        let cfg = ExploreConfig::directory_evicting().with_mutant(Mutant::SkipInvAck);
        let out = explore(&cfg);
        let (defect, steps) = out.violation.expect("mutant must be caught");
        assert!(
            matches!(defect, Defect::Swmr { .. }),
            "expected SWMR defect, got {defect}"
        );
        assert!(!steps.is_empty(), "counterexample trace must be non-empty");
    }

    #[test]
    fn corrupted_data_breaks_value_integrity() {
        let cfg = ExploreConfig::directory_evicting().with_mutant(Mutant::CorruptData);
        let out = explore(&cfg);
        let (defect, _) = out.violation.expect("mutant must be caught");
        assert!(
            matches!(defect, Defect::DataIntegrity { .. } | Defect::Swmr { .. }),
            "expected an integrity defect, got {defect}"
        );
    }

    /// When both the raw and the quotient search run to completion, the
    /// quotient must represent exactly the raw reachable set: same
    /// verdict, fewer canonical states, and `represented` equal to the
    /// raw state count (the orbit sizes partition the raw graph).
    #[test]
    fn symmetry_reduction_is_exact_on_exhaustive_graphs() {
        for protocol in [Protocol::Directory, Protocol::Snooping] {
            let raw = explore(&small(protocol).with_symmetry(false));
            let red = explore(&small(protocol));
            assert!(!raw.hit_limit && !red.hit_limit);
            assert!(raw.violation.is_none() && red.violation.is_none());
            assert!(
                red.states < raw.states,
                "{protocol:?}: no reduction ({} vs {})",
                red.states,
                raw.states
            );
            assert_eq!(
                red.represented, raw.states as u64,
                "{protocol:?}: orbits do not partition the raw graph"
            );
        }
    }

    /// The parallel frontier is a pure scheduling change: every outcome
    /// field is identical at any worker count.
    #[test]
    fn parallel_frontier_is_deterministic() {
        for cfg in [
            small(Protocol::Directory),
            small(Protocol::Snooping),
            ExploreConfig::directory_rollback(),
            ExploreConfig::directory_rollback().with_mutant(Mutant::StrayAck),
        ] {
            let serial = explore_jobs(&cfg, 1);
            for jobs in [2, 4] {
                let parallel = explore_jobs(&cfg, jobs);
                assert_eq!(serial, parallel, "outcome diverged at jobs={jobs}");
            }
        }
    }

    #[test]
    fn clean_product_machine_is_clean() {
        let base = explore(&ExploreConfig::directory_rollback().with_symmetry(false));
        assert!(base.violation.is_none(), "violation: {:?}", base.violation);
        assert!(!base.hit_limit);
        // The product adds checkpoint/rollback transitions on top of the
        // bare protocol graph.
        let bare = ExploreConfigBuilder::new(Protocol::Directory)
            .caches(2)
            .blocks(1)
            .ops_per_cache(1)
            .l2_bytes(256)
            .symmetry(false)
            .try_build()
            .expect("valid");
        let bare = explore(&bare);
        assert!(
            base.states > bare.states,
            "product machine added no states ({} vs {})",
            base.states,
            bare.states
        );
    }

    #[test]
    fn stray_ack_leak_breaks_swmr() {
        let cfg = ExploreConfig::directory_rollback().with_mutant(Mutant::StrayAck);
        let out = explore(&cfg);
        let (defect, steps) = out.violation.expect("stray-ack mutant must be caught");
        assert!(
            matches!(defect, Defect::Swmr { .. }),
            "expected SWMR defect, got {defect}"
        );
        assert!(
            steps.iter().any(|s| s.contains("rollback")),
            "counterexample must route through a rollback: {steps:?}"
        );
    }

    /// The product machine rediscovers the stray-RecallAck panic that
    /// the recovery hardening fixed: with the legacy strict ack
    /// accounting re-enabled, a leaked ack drives `complete_txn` into
    /// `unreachable!`.
    #[test]
    fn ack_panic_leak_rediscovers_unhandled_combination() {
        let cfg = ExploreConfig::directory_rollback().with_mutant(Mutant::AckPanic);
        let out = explore(&cfg);
        let (defect, steps) = out.violation.expect("ack-panic mutant must be caught");
        match &defect {
            Defect::Unhandled { message } => {
                assert!(
                    message.contains("unblock"),
                    "expected the legacy unblock panic, got: {message}"
                );
            }
            other => panic!("expected an unhandled-combination defect, got {other}"),
        }
        assert!(steps.iter().any(|s| s.contains("rollback")));
    }

    /// Every parseable mutant (except the clean baseline) is caught by
    /// exploration on its demo configuration — the checker's defect
    /// coverage is exhaustive over its own fault menu.
    #[test]
    fn every_mutant_is_caught_on_its_demo_config() {
        for m in Mutant::ALL {
            assert_eq!(Mutant::parse(m.name()), Some(m), "parse/name mismatch");
            if m == Mutant::None {
                continue;
            }
            let out = explore(&m.demo_config());
            assert!(
                out.violation.is_some(),
                "mutant {} escaped exploration",
                m.name()
            );
        }
    }

    #[test]
    fn builder_rejects_out_of_range_configurations() {
        let b = || ExploreConfigBuilder::new(Protocol::Directory);
        assert_eq!(b().caches(0).try_build(), Err(ConfigError::CacheCount(0)));
        assert_eq!(b().caches(9).try_build(), Err(ConfigError::CacheCount(9)));
        assert_eq!(b().blocks(0).try_build(), Err(ConfigError::BlockCount(0)));
        assert_eq!(
            b().ops_per_cache(5).try_build(),
            Err(ConfigError::OpsBudget(5))
        );
        assert_eq!(b().l2_bytes(32).try_build(), Err(ConfigError::L2Geometry(32)));
        assert_eq!(b().max_states(1).try_build(), Err(ConfigError::StateBudget));
        assert_eq!(
            b().rollback(true).max_rollbacks(0).try_build(),
            Err(ConfigError::RollbackBudget(0))
        );
        assert!(b().caches(5).blocks(3).try_build().is_ok());
    }

    /// Block symmetry must be disabled automatically when the configured
    /// blocks are not conflict-equivalent w.r.t. the L2 set function.
    #[test]
    fn builder_detects_block_interchangeability() {
        // 256 B / 1-way = 4 sets; blocks 0 and 3 land in distinct sets.
        let distinct = ExploreConfigBuilder::new(Protocol::Directory)
            .caches(3)
            .blocks(2)
            .try_build()
            .expect("valid");
        assert!(distinct.block_symmetry);
        // 64 B = 1 set; every block lands in set 0.
        let equal = ExploreConfigBuilder::new(Protocol::Directory)
            .caches(2)
            .blocks(3)
            .l2_bytes(64)
            .try_build()
            .expect("valid");
        assert!(equal.block_symmetry);
        // 128 B = 2 sets; blocks 0, 3, 6 map to sets 0, 1, 0 — a mixed
        // profile, so permuting them does not commute with eviction.
        let mixed = ExploreConfigBuilder::new(Protocol::Directory)
            .caches(3)
            .blocks(3)
            .l2_bytes(128)
            .try_build()
            .expect("valid");
        assert!(!mixed.block_symmetry);
    }

    mod soundness {
        //! Property check of the symmetry argument: replaying a
        //! relabeled action sequence yields, stepwise, states with the
        //! same canonical fingerprint as the original run.

        use super::*;
        use proptest::prelude::*;

        /// Maps an action of the original run to the corresponding
        /// action of the relabeled run: submit/serialize targets are
        /// relabeled directly; deliveries and leaks are matched by
        /// relabeled message encoding in the image state's pool.
        fn relabel_action(
            action: &Action,
            src: &State,
            dst: &State,
            r: &Relabel,
        ) -> Option<Action> {
            let find_image = |pool_idx: usize| -> Option<usize> {
                let o = &src.pool[pool_idx];
                let mut want = vec![r.dst(o.dst, &o.msg).index() as u64];
                encode_msg(&o.msg, r, &mut want);
                dst.pool.iter().position(|p| {
                    let mut have = vec![p.dst.index() as u64];
                    encode_msg(&p.msg, &Relabel::identity(), &mut have);
                    have == want
                })
            };
            Some(match action {
                Action::SubmitRead { node, word } => Action::SubmitRead {
                    node: r.node(NodeId(*node as u8)).index(),
                    word: r.word(*word),
                },
                Action::SubmitWrite { node, word, value } => Action::SubmitWrite {
                    node: r.node(NodeId(*node as u8)).index(),
                    word: r.word(*word),
                    value: *value,
                },
                Action::Deliver { pool_idx, desc } => Action::Deliver {
                    pool_idx: find_image(*pool_idx)?,
                    desc: desc.clone(),
                },
                Action::Serialize { node, desc } => Action::Serialize {
                    node: r.node(NodeId(*node as u8)).index(),
                    desc: desc.clone(),
                },
                Action::Checkpoint => Action::Checkpoint,
                Action::Rollback { leak, desc } => Action::Rollback {
                    leak: match leak {
                        None => None,
                        Some(i) => Some(find_image(*i)?),
                    },
                    desc: desc.clone(),
                },
            })
        }

        fn walk_preserves_canonical_fp(cfg: &ExploreConfig, picks: &[u32], elem: usize) {
            let group = symmetry::group(cfg.caches, &blocks_for(cfg), cfg.block_symmetry);
            let r = &group[elem % group.len()];
            let mut original = State::initial(cfg);
            let mut image = State::initial(cfg);
            for &pick in picks {
                let actions = original.enabled_actions(cfg);
                if actions.is_empty() {
                    break;
                }
                let action = &actions[pick as usize % actions.len()];
                let Some(mirrored) = relabel_action(action, &original, &image, r) else {
                    panic!("no image for action `{action}` in the relabeled run");
                };
                if original.apply(action, cfg.mutant).is_err() {
                    // A defect: the mirrored run must also fail (same
                    // class is checked by the explorer tests); stop here.
                    assert!(image.apply(&mirrored, cfg.mutant).is_err());
                    break;
                }
                image
                    .apply(&mirrored, cfg.mutant)
                    .expect("relabeled run diverged: image action failed");
                let (fp_a, orbit_a) = original.canonical(&group);
                let (fp_b, orbit_b) = image.canonical(&group);
                assert_eq!(fp_a, fp_b, "canonical fingerprints diverged");
                assert_eq!(orbit_a, orbit_b, "orbit sizes diverged");
            }
        }

        proptest! {
            #[test]
            fn canonical_fp_invariant_under_relabeled_replay(
                picks in proptest::collection::vec(0u32..10_000, 1..12),
                elem in 0usize..64,
            ) {
                let cfg = ExploreConfigBuilder::new(Protocol::Directory)
                    .caches(3)
                    .blocks(2)
                    .ops_per_cache(1)
                    .try_build()
                    .expect("valid");
                walk_preserves_canonical_fp(&cfg, &picks, elem);
            }

            #[test]
            fn canonical_fp_invariant_on_snooping_walks(
                picks in proptest::collection::vec(0u32..10_000, 1..12),
                elem in 0usize..64,
            ) {
                let cfg = ExploreConfig::snooping_2x2();
                walk_preserves_canonical_fp(&cfg, &picks, elem);
            }

            #[test]
            fn canonical_fp_invariant_on_product_walks(
                picks in proptest::collection::vec(0u32..10_000, 1..14),
                elem in 0usize..64,
            ) {
                let cfg = ExploreConfig::directory_rollback();
                walk_preserves_canonical_fp(&cfg, &picks, elem);
            }
        }
    }
}
