//! Exhaustive BFS model checker over small coherence configurations.
//!
//! Qadeer-style small-configuration checking: 2–3 `CacheNode`s, one
//! `HomeCtrl`, 1–2 blocks, driving the real controller step functions
//! (`submit`/`deliver`/`deliver_snoop`/`tick`/`pop_msg`). The explorer
//! owns the network: outbound messages drain into an in-flight pool
//! (modelling the unordered torus) and delivery order is the explored
//! nondeterminism; snooping address requests are serialized atomically to
//! every controller (modelling the ordered broadcast tree).
//!
//! Checked invariants, per reachable state:
//!
//! - **SWMR**: at most one cache holds a block in an owning state (M/O),
//!   and an M copy excludes all other cached copies.
//! - **Data-value integrity**: every load returns a value some store
//!   actually wrote to that word (writes use globally unique values, so
//!   fabricated or cross-wired data is caught), checked against a golden
//!   memory model.
//! - **No unhandled (state, message) combinations**: controller panics
//!   (`unreachable!`/`expect` on impossible protocol events) are caught
//!   and reported as counterexamples.
//! - **Deadlock-freedom**: every non-quiescent state has an enabled
//!   transition.
//!
//! On violation the BFS parent map reconstructs the full action trace
//! from the initial state.

use dvmc_coherence::probe::{encode_addr_req, encode_msg};
use dvmc_coherence::{
    AddrReq, CacheNode, HomeConfig, HomeCtrl, Mosi, Msg, NodeConfig, Outbound, ProcReq, Protocol,
};
use dvmc_types::{BlockAddr, NodeId, WordAddr};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};

/// Test-only protocol mutations, used to prove the checker catches real
/// bugs (`--mutant`): each seeds a deliberate defect at the network
/// layer, leaving the production controllers untouched.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mutant {
    /// Faithful protocol (the clean gate).
    None,
    /// Drop invalidations but acknowledge them anyway — the classic
    /// skipped-invalidation bug; a stale shared copy survives a writer's
    /// GetM, breaking SWMR.
    SkipInvAck,
    /// Flip a data bit in every DataS/DataM grant — requesters cache and
    /// serve values no store ever wrote, breaking value integrity.
    CorruptData,
}

impl Mutant {
    /// Parses a `--mutant` argument.
    pub fn parse(name: &str) -> Option<Mutant> {
        match name {
            "none" => Some(Mutant::None),
            "skip-inv" => Some(Mutant::SkipInvAck),
            "corrupt-data" => Some(Mutant::CorruptData),
            _ => None,
        }
    }
}

/// One explored configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Protocol variant under test.
    pub protocol: Protocol,
    /// Number of cache nodes (2–3 for tractable exhaustive search).
    pub caches: usize,
    /// Blocks in play; all map to home node 0.
    pub blocks: usize,
    /// Memory operations each cache may issue (the op budget).
    pub ops_per_cache: usize,
    /// L2 bytes per cache — small values force evictions and exercise
    /// the writeback paths.
    pub l2_bytes: usize,
    /// Distinct-state budget; exceeding it stops the search (reported,
    /// not a failure).
    pub max_states: usize,
    /// Seeded protocol defect (for negative testing).
    pub mutant: Mutant,
}

impl ExploreConfig {
    /// The acceptance-gate configuration: 3 caches, 2 blocks, MOSI
    /// directory.
    pub fn directory_3x2() -> Self {
        ExploreConfig {
            protocol: Protocol::Directory,
            caches: 3,
            blocks: 2,
            ops_per_cache: 2,
            l2_bytes: 256,
            max_states: 150_000,
            mutant: Mutant::None,
        }
    }

    /// A tiny-cache directory configuration that forces L2 evictions,
    /// covering the PutM / writeback-race paths.
    pub fn directory_evicting() -> Self {
        ExploreConfig {
            protocol: Protocol::Directory,
            caches: 2,
            blocks: 2,
            ops_per_cache: 2,
            l2_bytes: 64,
            max_states: 400_000,
            mutant: Mutant::None,
        }
    }

    /// The snooping configuration: 2 caches, 2 blocks over the ordered
    /// broadcast tree.
    pub fn snooping_2x2() -> Self {
        ExploreConfig {
            protocol: Protocol::Snooping,
            caches: 2,
            blocks: 2,
            ops_per_cache: 2,
            l2_bytes: 256,
            max_states: 400_000,
            mutant: Mutant::None,
        }
    }
}

/// One transition of the explored system.
#[derive(Clone, Debug)]
enum Action {
    /// Cache `node` issues a read of `word`.
    SubmitRead { node: usize, word: WordAddr },
    /// Cache `node` issues a store of `value` to `word`.
    SubmitWrite {
        node: usize,
        word: WordAddr,
        value: u64,
    },
    /// Deliver one pooled point-to-point message.
    Deliver { pool_idx: usize, desc: String },
    /// Serialize cache `node`'s oldest address-network request to every
    /// controller (snooping).
    Serialize { node: usize, desc: String },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::SubmitRead { node, word } => {
                write!(f, "cache{node}: submit Read {word:?}")
            }
            Action::SubmitWrite { node, word, value } => {
                write!(f, "cache{node}: submit Write {word:?} = {value}")
            }
            Action::Deliver { desc, .. } => write!(f, "deliver {desc}"),
            Action::Serialize { node, desc } => {
                write!(f, "serialize cache{node}'s address request: {desc}")
            }
        }
    }
}

/// A detected protocol defect.
#[derive(Clone, Debug)]
pub enum Defect {
    /// Two caches hold conflicting permission for one block.
    Swmr { block: BlockAddr, detail: String },
    /// A load returned a value no store ever wrote.
    DataIntegrity {
        word: WordAddr,
        got: u64,
        history: Vec<u64>,
    },
    /// A non-quiescent state with no enabled transition.
    Deadlock { detail: String },
    /// A controller panicked — an unhandled (state, message) combination.
    Unhandled { message: String },
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Defect::Swmr { block, detail } => {
                write!(f, "SWMR violation on {block:?}: {detail}")
            }
            Defect::DataIntegrity { word, got, history } => write!(
                f,
                "data-value integrity violation at {word:?}: load returned {got}, \
                 but only {history:?} were ever written"
            ),
            Defect::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            Defect::Unhandled { message } => {
                write!(f, "unhandled (state, message) combination: {message}")
            }
        }
    }
}

/// Result of exploring one configuration.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Distinct system states visited.
    pub states: usize,
    /// Transitions applied.
    pub transitions: usize,
    /// Whether the distinct-state budget stopped the search.
    pub hit_limit: bool,
    /// First defect found, with the action trace reaching it.
    pub violation: Option<(Defect, Vec<String>)>,
}

/// An operation a cache is waiting on.
#[derive(Clone, Debug)]
enum Pending {
    Read { id: u64, word: WordAddr },
    Write { id: u64, word: WordAddr, value: u64 },
}

/// The full explored system: controllers, in-flight messages, and the
/// golden memory model.
#[derive(Clone)]
struct State {
    caches: Vec<CacheNode>,
    home: HomeCtrl,
    /// In-flight point-to-point messages (the unordered torus).
    pool: Vec<Outbound>,
    /// Per-cache FIFO of address-network requests awaiting serialization.
    addr_queues: Vec<VecDeque<AddrReq>>,
    /// Next address-network order tag.
    next_order: u64,
    /// Remaining op budget per cache.
    budget: Vec<usize>,
    /// The op each cache is blocked on, if any.
    pending: Vec<Option<Pending>>,
    /// Every value ever stored per word (index parallel to `words`);
    /// starts with the initial 0.
    history: Vec<Vec<u64>>,
    /// The words in play.
    words: Vec<WordAddr>,
    /// Next unique store value.
    next_value: u64,
    /// Next request id.
    next_id: u64,
    now: u64,
}

fn node_cfg(cfg: &ExploreConfig) -> NodeConfig {
    NodeConfig {
        nodes: cfg.caches,
        l1_bytes: 64,
        l1_ways: 1,
        l2_bytes: cfg.l2_bytes,
        l2_ways: 1,
        l1_latency: 0,
        l2_latency: 0,
        ports: 8,
        verify: false,
        lt_shift: 0,
    }
}

fn home_cfg(cfg: &ExploreConfig) -> HomeConfig {
    HomeConfig {
        nodes: cfg.caches,
        mem_latency: 0,
        verify: false,
        lt_shift: 0,
        sorter_capacity: 16,
    }
}

/// Blocks that all map to home node 0: 0, caches, 2*caches, ...
fn blocks_for(cfg: &ExploreConfig) -> Vec<BlockAddr> {
    (0..cfg.blocks)
        .map(|i| BlockAddr((i * cfg.caches) as u64))
        .collect()
}

impl State {
    fn initial(cfg: &ExploreConfig) -> State {
        let caches = (0..cfg.caches)
            .map(|i| CacheNode::new(NodeId(i as u8), cfg.protocol, node_cfg(cfg)))
            .collect();
        let home = HomeCtrl::new(NodeId(0), cfg.protocol, home_cfg(cfg));
        let words: Vec<WordAddr> = blocks_for(cfg).iter().map(|b| b.word(0)).collect();
        State {
            caches,
            home,
            pool: Vec::new(),
            addr_queues: vec![VecDeque::new(); cfg.caches],
            next_order: 1,
            budget: vec![cfg.ops_per_cache; cfg.caches],
            pending: vec![None; cfg.caches],
            history: vec![vec![0]; words.len()],
            words,
            next_value: 1,
            next_id: 1,
            now: 0,
        }
    }

    /// Ticks all controllers and drains their outputs until nothing moves:
    /// outbound messages land in the pool, address requests in their
    /// queues, and completed responses retire pending ops (updating and
    /// checking the golden memory model).
    fn settle(&mut self) -> Result<(), Defect> {
        // A tick can make internal-only progress (e.g. the home's
        // memory-latency stage releases messages at the *start* of the
        // next tick), so only stop after several consecutive ticks with
        // no externally visible movement.
        let mut idle_ticks = 0;
        while idle_ticks < 3 {
            let mut moved = false;
            self.now += 1;
            for cache in &mut self.caches {
                cache.tick(self.now);
            }
            self.home.tick(self.now);
            for i in 0..self.caches.len() {
                while let Some(o) = self.caches[i].pop_msg() {
                    self.pool.push(o);
                    moved = true;
                }
                while let Some(r) = self.caches[i].pop_addr_req() {
                    self.addr_queues[i].push_back(r);
                    moved = true;
                }
                while let Some(resp) = self.caches[i].pop_resp() {
                    moved = true;
                    let Some(p) = self.pending[i].take() else {
                        return Err(Defect::Unhandled {
                            message: format!("cache{i} produced an unexpected response {resp:?}"),
                        });
                    };
                    match p {
                        Pending::Read { id, word } => {
                            if resp.id != id {
                                return Err(Defect::Unhandled {
                                    message: format!(
                                        "cache{i} answered id {} while id {id} was pending",
                                        resp.id
                                    ),
                                });
                            }
                            let w = self.word_index(word);
                            if !self.history[w].contains(&resp.value) {
                                return Err(Defect::DataIntegrity {
                                    word,
                                    got: resp.value,
                                    history: self.history[w].clone(),
                                });
                            }
                        }
                        Pending::Write { id, word, value } => {
                            if resp.id != id {
                                return Err(Defect::Unhandled {
                                    message: format!(
                                        "cache{i} answered id {} while id {id} was pending",
                                        resp.id
                                    ),
                                });
                            }
                            let w = self.word_index(word);
                            self.history[w].push(value);
                        }
                    }
                }
            }
            while let Some(o) = self.home.pop_msg() {
                self.pool.push(o);
                moved = true;
            }
            if moved {
                idle_ticks = 0;
            } else {
                idle_ticks += 1;
            }
        }
        Ok(())
    }

    fn word_index(&self, word: WordAddr) -> usize {
        self.words
            .iter()
            .position(|&w| w == word)
            .expect("op words come from the configured set")
    }

    /// SWMR over the caches' L2 arrays: at most one M/O owner per block,
    /// and an M copy excludes all other cached copies.
    fn check_swmr(&self) -> Result<(), Defect> {
        let mut per_block: HashMap<BlockAddr, Vec<(usize, Mosi)>> = HashMap::new();
        for (i, cache) in self.caches.iter().enumerate() {
            for (addr, state) in cache.probe_l2_states() {
                per_block.entry(addr).or_default().push((i, state));
            }
        }
        for (block, holders) in per_block {
            let owners: Vec<&(usize, Mosi)> = holders
                .iter()
                .filter(|(_, s)| matches!(s, Mosi::M | Mosi::O))
                .collect();
            if owners.len() > 1 {
                return Err(Defect::Swmr {
                    block,
                    detail: format!("multiple owners: {holders:?}"),
                });
            }
            let has_m = holders.iter().any(|(_, s)| *s == Mosi::M);
            if has_m && holders.len() > 1 {
                return Err(Defect::Swmr {
                    block,
                    detail: format!("M copy coexists with other copies: {holders:?}"),
                });
            }
        }
        Ok(())
    }

    /// Canonical 128-bit fingerprint of the whole system state.
    fn fingerprint(&self) -> u128 {
        let mut tokens: Vec<u64> = Vec::with_capacity(256);
        for cache in &self.caches {
            cache.probe_digest(&mut tokens);
        }
        self.home.probe_digest(&mut tokens);
        // The in-flight pool is an unordered multiset: sort encodings.
        let mut pool_enc: Vec<Vec<u64>> = self
            .pool
            .iter()
            .map(|o| {
                let mut enc = vec![o.dst.index() as u64];
                encode_msg(&o.msg, &mut enc);
                enc
            })
            .collect();
        pool_enc.sort();
        tokens.push(self.pool.len() as u64);
        for enc in pool_enc {
            tokens.extend(enc);
        }
        for q in &self.addr_queues {
            tokens.push(q.len() as u64);
            for req in q {
                encode_addr_req(req, &mut tokens);
            }
        }
        tokens.push(self.next_order);
        tokens.extend(self.budget.iter().map(|&b| b as u64));
        for p in &self.pending {
            match p {
                None => tokens.push(0),
                Some(Pending::Read { id, word }) => tokens.extend([1, *id, word.0]),
                Some(Pending::Write { id, word, value }) => {
                    tokens.extend([2, *id, word.0, *value]);
                }
            }
        }
        for h in &self.history {
            tokens.push(h.len() as u64);
            tokens.extend(h.iter());
        }
        tokens.extend([self.next_value, self.next_id]);
        fnv128(&tokens)
    }

    /// All transitions enabled in this state.
    fn enabled_actions(&self) -> Vec<Action> {
        let mut actions = Vec::new();
        for (i, cache) in self.caches.iter().enumerate() {
            let _ = cache;
            if self.budget[i] > 0 && self.pending[i].is_none() {
                for &word in &self.words {
                    actions.push(Action::SubmitRead { node: i, word });
                    actions.push(Action::SubmitWrite {
                        node: i,
                        word,
                        value: 0, // resolved at application time
                    });
                }
            }
        }
        // Identical in-flight messages lead to identical successors:
        // enumerate one delivery per distinct encoding.
        let mut seen: Vec<Vec<u64>> = Vec::new();
        for (idx, o) in self.pool.iter().enumerate() {
            let mut enc = vec![o.dst.index() as u64];
            encode_msg(&o.msg, &mut enc);
            if seen.contains(&enc) {
                continue;
            }
            seen.push(enc);
            actions.push(Action::Deliver {
                pool_idx: idx,
                desc: describe_outbound(o),
            });
        }
        for (i, q) in self.addr_queues.iter().enumerate() {
            if let Some(front) = q.front() {
                actions.push(Action::Serialize {
                    node: i,
                    desc: format!("{:?} {:?} by cache{}", front.kind, front.addr, i),
                });
            }
        }
        actions
    }

    /// Applies one action and settles. Returns a defect if an invariant
    /// breaks.
    fn apply(&mut self, action: &Action, mutant: Mutant) -> Result<(), Defect> {
        match action {
            Action::SubmitRead { node, word } => {
                let id = self.next_id;
                self.next_id += 1;
                self.budget[*node] -= 1;
                self.pending[*node] = Some(Pending::Read { id, word: *word });
                self.caches[*node].submit(ProcReq::Read { id, addr: *word });
            }
            Action::SubmitWrite { node, word, .. } => {
                let id = self.next_id;
                let value = self.next_value;
                self.next_id += 1;
                self.next_value += 1;
                self.budget[*node] -= 1;
                self.pending[*node] = Some(Pending::Write {
                    id,
                    word: *word,
                    value,
                });
                self.caches[*node].submit(ProcReq::Write {
                    id,
                    addr: *word,
                    value,
                });
            }
            Action::Deliver { pool_idx, .. } => {
                let o = self.pool.swap_remove(*pool_idx);
                self.route(o, mutant);
            }
            Action::Serialize { node, .. } => {
                let req = self.addr_queues[*node]
                    .pop_front()
                    .expect("serialize only enabled with a queued request");
                let order = self.next_order;
                self.next_order += 1;
                for cache in &mut self.caches {
                    cache.deliver_snoop(order, req);
                }
                self.home.deliver_snoop(order, req);
            }
        }
        self.settle()?;
        self.check_swmr()
    }

    /// Routes a pooled message to the home or a cache, applying the
    /// seeded mutant at the network layer.
    fn route(&mut self, o: Outbound, mutant: Mutant) {
        let mut o = o;
        match (&o.msg, mutant) {
            (Msg::Inv { addr }, Mutant::SkipInvAck) => {
                // Drop the invalidation; forge the ack the home expects.
                let addr = *addr;
                let from = o.dst;
                self.pool.push(Outbound {
                    dst: addr.home(self.caches.len()),
                    msg: Msg::InvAck { from, addr },
                });
                return;
            }
            (Msg::DataS { .. } | Msg::DataM { .. }, Mutant::CorruptData) => {
                if let Msg::DataS { data, .. } | Msg::DataM { data, .. } = &mut o.msg {
                    // A high bit: store values are small integers, so the
                    // corrupted word can never alias a real store.
                    data.flip_bit(63);
                }
            }
            _ => {}
        }
        if home_bound(&o.msg) {
            self.home.deliver(o.msg);
        } else {
            self.caches[o.dst.index()].deliver(o.msg);
        }
    }

    /// Whether the system still owes work: an op in flight or a
    /// controller with internal queued state.
    fn owes_work(&self) -> bool {
        self.pending.iter().any(Option::is_some)
            || !self.caches.iter().all(CacheNode::is_quiescent)
            || !self.home.is_quiescent()
            || !self.pool.is_empty()
            || self.addr_queues.iter().any(|q| !q.is_empty())
    }
}

/// Whether a message is consumed by the home controller (mirrors the
/// cluster's dispatch rule).
fn home_bound(msg: &Msg) -> bool {
    matches!(
        msg,
        Msg::GetS { .. }
            | Msg::GetM { .. }
            | Msg::PutM { .. }
            | Msg::InvAck { .. }
            | Msg::RecallAck { .. }
            | Msg::Unblock { .. }
            | Msg::Epoch(_)
    )
}

fn describe_outbound(o: &Outbound) -> String {
    let kind = match &o.msg {
        Msg::GetS { req, addr } => format!("GetS {addr:?} from cache{}", req.index()),
        Msg::GetM { req, addr } => format!("GetM {addr:?} from cache{}", req.index()),
        Msg::PutM { req, addr, .. } => format!("PutM {addr:?} from cache{}", req.index()),
        Msg::Inv { addr } => format!("Inv {addr:?}"),
        Msg::InvAck { from, addr } => format!("InvAck {addr:?} from cache{}", from.index()),
        Msg::RecallShare { addr } => format!("RecallShare {addr:?}"),
        Msg::RecallInv { addr } => format!("RecallInv {addr:?}"),
        Msg::RecallAck { from, addr, .. } => {
            format!("RecallAck {addr:?} from cache{}", from.index())
        }
        Msg::DataS { addr, .. } => format!("DataS {addr:?}"),
        Msg::DataM { addr, .. } => format!("DataM {addr:?}"),
        Msg::UpgradeAck { addr } => format!("UpgradeAck {addr:?}"),
        Msg::Unblock { from, addr } => format!("Unblock {addr:?} from cache{}", from.index()),
        Msg::PutAck { addr, stale } => format!("PutAck {addr:?} (stale={stale})"),
        Msg::SnoopData { addr, exclusive, .. } => {
            format!("SnoopData {addr:?} (exclusive={exclusive})")
        }
        Msg::Epoch(_) => "Epoch".to_string(),
        Msg::Ber { .. } => "Ber".to_string(),
    };
    format!("{kind} -> node{}", o.dst.index())
}

/// FNV-1a over the token stream with two seeds, giving 128 fingerprint
/// bits.
fn fnv128(tokens: &[u64]) -> u128 {
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x6c62_272e_07bb_0142;
    for &t in tokens {
        for byte in t.to_le_bytes() {
            a = (a ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
            b = (b ^ u64::from(byte)).wrapping_mul(0x3f2_9ce4_8422_2325 | 1);
        }
    }
    (u128::from(a) << 64) | u128::from(b)
}

/// Exhaustively explores every reachable state of `cfg` by BFS,
/// checking the protocol invariants at each state.
pub fn explore(cfg: &ExploreConfig) -> ExploreOutcome {
    let initial = State::initial(cfg);
    let root_fp = initial.fingerprint();
    // fingerprint -> (parent fingerprint, action taken from parent)
    let mut parents: HashMap<u128, Option<(u128, String)>> = HashMap::new();
    parents.insert(root_fp, None);
    let mut frontier: VecDeque<(u128, State)> = VecDeque::new();
    frontier.push_back((root_fp, initial));
    let mut states = 1usize;
    let mut transitions = 0usize;
    let mut hit_limit = false;

    while let Some((fp, state)) = frontier.pop_front() {
        let actions = state.enabled_actions();
        if actions.is_empty() {
            if state.owes_work() {
                let defect = Defect::Deadlock {
                    detail: format!(
                        "no enabled transition, but work remains \
                         (pending={:?}, home quiescent={}, caches: {})",
                        state.pending,
                        state.home.is_quiescent(),
                        state
                            .caches
                            .iter()
                            .map(dvmc_coherence::CacheNode::dump)
                            .collect::<Vec<_>>()
                            .join(" | "),
                    ),
                };
                return ExploreOutcome {
                    states,
                    transitions,
                    hit_limit,
                    violation: Some((defect, trace(&parents, fp, None))),
                };
            }
            continue;
        }
        for action in actions {
            transitions += 1;
            let mut next = state.clone();
            let applied = panic::catch_unwind(AssertUnwindSafe(|| {
                next.apply(&action, cfg.mutant).map(|()| next)
            }));
            let result = match applied {
                Ok(r) => r,
                Err(payload) => Err(Defect::Unhandled {
                    message: panic_text(&payload),
                }),
            };
            match result {
                Ok(next) => {
                    let next_fp = next.fingerprint();
                    if parents.contains_key(&next_fp) {
                        continue;
                    }
                    parents.insert(next_fp, Some((fp, action.to_string())));
                    states += 1;
                    if states >= cfg.max_states {
                        hit_limit = true;
                        break;
                    }
                    frontier.push_back((next_fp, next));
                }
                Err(defect) => {
                    return ExploreOutcome {
                        states,
                        transitions,
                        hit_limit,
                        violation: Some((defect, trace(&parents, fp, Some(action.to_string())))),
                    };
                }
            }
        }
        if hit_limit {
            break;
        }
    }
    ExploreOutcome {
        states,
        transitions,
        hit_limit,
        violation: None,
    }
}

/// Reconstructs the action trace from the initial state to `fp`,
/// optionally appending the final (violating) action.
fn trace(
    parents: &HashMap<u128, Option<(u128, String)>>,
    mut fp: u128,
    last: Option<String>,
) -> Vec<String> {
    let mut steps = Vec::new();
    while let Some(Some((parent, action))) = parents.get(&fp) {
        steps.push(action.clone());
        fp = *parent;
    }
    steps.reverse();
    if let Some(a) = last {
        steps.push(a);
    }
    steps
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "controller panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(protocol: Protocol) -> ExploreConfig {
        ExploreConfig {
            protocol,
            caches: 2,
            blocks: 1,
            ops_per_cache: 1,
            l2_bytes: 256,
            max_states: 50_000,
            mutant: Mutant::None,
        }
    }

    #[test]
    fn directory_2x1_is_clean() {
        let out = explore(&small(Protocol::Directory));
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(!out.hit_limit);
        assert!(out.states > 10, "trivially small graph: {}", out.states);
    }

    #[test]
    fn snooping_2x1_is_clean() {
        let out = explore(&small(Protocol::Snooping));
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(!out.hit_limit);
        assert!(out.states > 10, "trivially small graph: {}", out.states);
    }

    #[test]
    fn skipped_invalidation_breaks_swmr() {
        let cfg = ExploreConfig {
            mutant: Mutant::SkipInvAck,
            ..ExploreConfig::directory_evicting()
        };
        let out = explore(&cfg);
        let (defect, steps) = out.violation.expect("mutant must be caught");
        assert!(
            matches!(defect, Defect::Swmr { .. }),
            "expected SWMR defect, got {defect}"
        );
        assert!(!steps.is_empty(), "counterexample trace must be non-empty");
    }

    #[test]
    fn corrupted_data_breaks_value_integrity() {
        let cfg = ExploreConfig {
            mutant: Mutant::CorruptData,
            ..ExploreConfig::directory_evicting()
        };
        let out = explore(&cfg);
        let (defect, _) = out.violation.expect("mutant must be caught");
        assert!(
            matches!(defect, Defect::DataIntegrity { .. } | Defect::Swmr { .. }),
            "expected an integrity defect, got {defect}"
        );
    }
}
