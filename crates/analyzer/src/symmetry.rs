//! Symmetry-group construction for the explorer's state canonicalization.
//!
//! Small-configuration coherence models are highly symmetric: cache
//! identities are interchangeable (no cache is distinguished — the home
//! controller is a separate entity and a fixed point), and the blocks in
//! play are interchangeable whenever they are *conflict-equivalent*
//! (they map to all-distinct or all-equal cache sets, so permuting them
//! permutes eviction behavior consistently). Following the classic
//! scalarset construction, the reduction quotients the state graph by
//! the group `S_caches × S_blocks`: every explored state is digested
//! once per group element ([`dvmc_coherence::Relabel`] applies the
//! permutation on the fly) and the lexicographically smallest token
//! stream is the canonical form. Soundness: a relabeling maps reachable
//! states to reachable states and defects to equally-classed defects,
//! because every transition rule is identity-generic — the proptest in
//! this module checks exactly that, by replaying permuted action
//! sequences and comparing canonical fingerprints stepwise.

use dvmc_coherence::Relabel;
use dvmc_types::BlockAddr;

/// All permutations of `0..n`, in lexicographic order (identity first).
/// Deterministic: the group iteration order is part of the canonical-form
/// definition only insofar as ties are impossible (distinct permutations
/// of a stream either differ or collapse to the same stream).
pub(crate) fn permutations(n: usize) -> Vec<Vec<u8>> {
    assert!(n <= 8, "factorial blow-up guard");
    let mut out = Vec::new();
    let mut current: Vec<u8> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    fn rec(n: usize, current: &mut Vec<u8>, used: &mut [bool], out: &mut Vec<Vec<u8>>) {
        if current.len() == n {
            out.push(current.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                current.push(i as u8);
                rec(n, current, used, out);
                current.pop();
                used[i] = false;
            }
        }
    }
    rec(n, &mut current, &mut used, &mut out);
    out
}

/// The symmetry group for a configuration: every combination of a cache
/// permutation and (when the blocks are conflict-equivalent) a block
/// permutation. The identity element is first.
pub(crate) fn group(caches: usize, blocks: &[BlockAddr], block_symmetry: bool) -> Vec<Relabel> {
    let node_perms = permutations(caches);
    let block_perms = if block_symmetry {
        permutations(blocks.len())
    } else {
        vec![(0..blocks.len() as u8).collect()]
    };
    let mut out = Vec::with_capacity(node_perms.len() * block_perms.len());
    for np in &node_perms {
        for bp in &block_perms {
            let block_map: Vec<(BlockAddr, BlockAddr)> = bp
                .iter()
                .enumerate()
                .map(|(i, &j)| (blocks[i], blocks[j as usize]))
                .collect();
            out.push(Relabel::new(np.clone(), block_map));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_counts_are_factorials() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        assert_eq!(permutations(2), vec![vec![0, 1], vec![1, 0]]);
    }

    #[test]
    fn group_size_and_identity_head() {
        let blocks = [BlockAddr(0), BlockAddr(3)];
        let g = group(3, &blocks, true);
        assert_eq!(g.len(), 6 * 2);
        assert!(g[0].is_identity());
        let g = group(3, &blocks, false);
        assert_eq!(g.len(), 6);
        assert!(g[0].is_identity());
    }

    #[test]
    fn group_elements_are_distinct_relabelings() {
        let blocks = [BlockAddr(0), BlockAddr(2)];
        let g = group(2, &blocks, true);
        // Check via images of (node 0, block 0): all four combinations.
        let images: Vec<(u8, u64)> = g
            .iter()
            .map(|r| {
                (
                    r.node(dvmc_types::NodeId(0)).0,
                    r.block(BlockAddr(0)).0,
                )
            })
            .collect();
        let mut uniq = images.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4);
    }
}
