//! Static verification for the DVMC workspace.
//!
//! Three passes, all pure functions over existing workspace artifacts:
//!
//! - [`explorer`]: an exhaustive BFS model checker over small coherence
//!   configurations (2–5 caches, one home, 1–3 blocks), driving the real
//!   `CacheNode`/`HomeCtrl` step functions and asserting SWMR, data-value
//!   integrity against a golden memory model, deadlock-freedom, and
//!   absence of unhandled (state, message) combinations (surfaced as
//!   controller panics). The search quotients the graph by the
//!   cache/block symmetry group ([`symmetry`]) and can run its frontier
//!   on a parallel worker pool with bit-identical results; with rollback
//!   enabled it model-checks the protocol × checkpoint/rollback product
//!   machine.
//! - [`tablelint`]: well-formedness checks over the SC/TSO/PSO/RMO
//!   ordering tables — strength hierarchy, membar mask placement, membar
//!   self-ordering, and agreement with the `Model` predicate helpers.
//! - [`transientlint`]: cross-checks the declared transient-state tables
//!   of each protocol against the transients the explorer actually
//!   reached — unknown observed states fail, dead table entries are
//!   reported.
//!
//! The CLI (`dvmc-analyzer --all`) runs all passes and exits non-zero
//! with a printed counterexample on any failure, making this the standing
//! static gate alongside the dynamic checkers.

pub mod explorer;
pub mod report;
mod symmetry;
pub mod tablelint;
pub mod transientlint;

pub use explorer::{
    explore, explore_jobs, ConfigError, ExploreConfig, ExploreConfigBuilder, ExploreOutcome,
    Mutant,
};
pub use report::{bench_json, BenchRow, ReductionRow};
pub use tablelint::{
    lint_all_models, lint_hierarchy_pair, lint_hierarchy_pair_over, lint_model_predicates,
    lint_table, op_alphabet, LintError,
};
pub use transientlint::{audit_transients, declared_transients, TransientAudit};
