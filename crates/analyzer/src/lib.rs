//! Static verification for the DVMC workspace.
//!
//! Two passes, both pure functions over existing workspace artifacts:
//!
//! - [`explorer`]: an exhaustive BFS model checker over small coherence
//!   configurations (2–3 caches, one home, 1–2 blocks), driving the real
//!   `CacheNode`/`HomeCtrl` step functions and asserting SWMR, data-value
//!   integrity against a golden memory model, deadlock-freedom, and
//!   absence of unhandled (state, message) combinations (surfaced as
//!   controller panics).
//! - [`tablelint`]: well-formedness checks over the SC/TSO/PSO/RMO
//!   ordering tables — strength hierarchy, membar mask placement, membar
//!   self-ordering, and agreement with the `Model` predicate helpers.
//!
//! The CLI (`dvmc-analyzer --all`) runs both and exits non-zero with a
//! printed counterexample on any failure, making this the standing static
//! gate alongside the dynamic checkers.

pub mod explorer;
pub mod tablelint;

pub use explorer::{explore, ExploreConfig, ExploreOutcome, Mutant};
pub use tablelint::{lint_all_models, lint_table, LintError};
