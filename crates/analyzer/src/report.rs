//! Canonical JSON report for the analyzer suite (`BENCH_analyzer.json`).
//!
//! Follows the campaign runner's canonical-vs-timing split: everything
//! emitted here is a deterministic function of the explored
//! configurations alone — state, transition, and orbit counts, defect
//! classes, transient coverage — so CI can byte-compare the file across
//! worker counts (`--jobs 1` vs `--jobs 4`). Wall-clock figures
//! (states/sec) are nondeterministic and go to stderr, never into this
//! file.

use crate::explorer::ExploreOutcome;

/// One explored configuration's canonical row.
pub struct BenchRow {
    /// Builtin configuration name.
    pub name: &'static str,
    /// Seeded mutant name (`none` for the clean gate).
    pub mutant: &'static str,
    /// The outcome (all fields jobs-invariant).
    pub outcome: ExploreOutcome,
}

/// The raw-vs-reduced comparison on the acceptance configuration.
pub struct ReductionRow {
    /// Configuration name the comparison ran on.
    pub name: &'static str,
    /// Raw (identity-group) states visited; budget-capped searches
    /// report the cap.
    pub raw_states: usize,
    /// Whether the raw search stopped at its budget.
    pub raw_capped: bool,
    /// Canonical states under symmetry.
    pub canonical_states: usize,
    /// Raw states the quotient stands for (sum of orbit sizes).
    pub represented: u64,
    /// Reduction factor ×100 (integer fixed-point, deterministic):
    /// `represented / canonical_states` — the average orbit size over
    /// the visited canonical states. Exact for the whole graph when the
    /// quotient is exhaustive; exact over the visited region otherwise.
    pub factor_x100: u64,
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the canonical report. Keys are emitted in a fixed order and
/// all values are integers or strings — no floats, no timing — so equal
/// inputs yield byte-equal output.
pub fn bench_json(rows: &[BenchRow], reductions: &[ReductionRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"dvmc-analyzer-bench-v1\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let o = &row.outcome;
        let defect = o
            .violation
            .as_ref()
            .map_or("none", |(d, _)| d.class());
        let trace_len = o.violation.as_ref().map_or(0, |(_, t)| t.len());
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"mutant\": \"{}\", \"states\": {}, \
             \"transitions\": {}, \"represented\": {}, \"hit_limit\": {}, \
             \"defect\": \"{}\", \"trace_len\": {}, \"transients\": {}}}{}\n",
            escape(row.name),
            escape(row.mutant),
            o.states,
            o.transitions,
            o.represented,
            o.hit_limit,
            defect,
            trace_len,
            o.transients.len(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"reduction\": [\n");
    for (i, r) in reductions.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"raw_states\": {}, \"raw_capped\": {}, \
             \"canonical_states\": {}, \"represented\": {}, \"factor_x100\": {}}}{}\n",
            escape(r.name),
            r.raw_states,
            r.raw_capped,
            r.canonical_states,
            r.represented,
            r.factor_x100,
            if i + 1 < reductions.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn outcome() -> ExploreOutcome {
        ExploreOutcome {
            states: 10,
            transitions: 25,
            represented: 40,
            hit_limit: false,
            violation: None,
            transients: BTreeSet::from(["cache:IS_D".to_string()]),
        }
    }

    #[test]
    fn report_is_deterministic_and_parsable_shape() {
        let rows = [BenchRow {
            name: "directory_3x2",
            mutant: "none",
            outcome: outcome(),
        }];
        let reds = [ReductionRow {
            name: "directory_3x2",
            raw_states: 40,
            raw_capped: false,
            canonical_states: 10,
            represented: 40,
            factor_x100: 400,
        }];
        let a = bench_json(&rows, &reds);
        let b = bench_json(&rows, &reds);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"dvmc-analyzer-bench-v1\""));
        assert!(a.contains("\"factor_x100\": 400"));
        assert!(a.contains("\"defect\": \"none\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn violations_surface_their_class() {
        use crate::explorer::Defect;
        let mut o = outcome();
        o.violation = Some((
            Defect::Unhandled {
                message: "x".to_string(),
            },
            vec!["step".to_string()],
        ));
        let rows = [BenchRow {
            name: "c",
            mutant: "ack-panic",
            outcome: o,
        }];
        let s = bench_json(&rows, &[]);
        assert!(s.contains("\"defect\": \"unhandled\""));
        assert!(s.contains("\"trace_len\": 1"));
    }
}
