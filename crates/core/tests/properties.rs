//! Property-based tests of the DVMC checkers: legal executions (by
//! construction) are always accepted; systematically corrupted ones are
//! always rejected.

use dvmc_consistency::{Model, OpClass};
use dvmc_core::coherence::{EpochKind, HomeChecker, InformEpoch};
use dvmc_core::{ReorderChecker, ReplayLookup, UniprocChecker, UniprocCheckerConfig, Violation};
use dvmc_types::{BlockAddr, NodeId, SeqNum, Ts16, WordAddr};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Allowable Reordering
// ---------------------------------------------------------------------

/// Builds a legal perform order for a random program under `model`:
/// starting from program order, repeatedly swap adjacent operations when
/// the ordering table permits (swapping X before Y is legal iff there is
/// no constraint X -> Y).
fn legal_perform_order(model: Model, classes: &[OpClass], swaps: &[(usize, usize)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..classes.len()).collect();
    let table = model.table();
    for &(raw_i, _) in swaps {
        if classes.len() < 2 {
            break;
        }
        let i = raw_i % (classes.len() - 1);
        let (a, b) = (order[i], order[i + 1]);
        // After the swap, the later-in-program op would perform first.
        let (first, second) = if a < b { (a, b) } else { (b, a) };
        if !table.requires(classes[first], classes[second]) {
            order.swap(i, i + 1);
        }
    }
    order
}

fn op_class_strategy() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        3 => Just(OpClass::Load),
        3 => Just(OpClass::Store),
        1 => Just(OpClass::Atomic),
    ]
}

fn model_strategy() -> impl Strategy<Value = Model> {
    prop_oneof![
        Just(Model::Sc),
        Just(Model::Tso),
        Just(Model::Pso),
        Just(Model::Rmo),
    ]
}

proptest! {
    /// Any perform order reachable by table-legal adjacent swaps passes
    /// the Allowable Reordering checker.
    #[test]
    fn reorder_checker_accepts_legal_orders(
        model in model_strategy(),
        classes in proptest::collection::vec(op_class_strategy(), 1..24),
        swaps in proptest::collection::vec((0usize..64, 0usize..1), 0..64),
    ) {
        let order = legal_perform_order(model, &classes, &swaps);
        let mut chk = ReorderChecker::new();
        for (seq, &class) in classes.iter().enumerate() {
            chk.op_committed(SeqNum(seq as u64), class, model);
        }
        for &idx in &order {
            chk.op_performed(SeqNum(idx as u64), classes[idx], model)
                .expect("legal order must be accepted");
        }
    }

    /// Swapping a constrained adjacent pair is always detected (at the
    /// moment the older op performs after the younger one).
    #[test]
    fn reorder_checker_rejects_illegal_swap(
        model in model_strategy(),
        classes in proptest::collection::vec(op_class_strategy(), 2..24),
        pick in 0usize..64,
    ) {
        let table = model.table();
        // Find a constrained adjacent pair to violate.
        let candidates: Vec<usize> = (0..classes.len() - 1)
            .filter(|&i| table.requires(classes[i], classes[i + 1]))
            .collect();
        prop_assume!(!candidates.is_empty());
        let i = candidates[pick % candidates.len()];

        let mut chk = ReorderChecker::new();
        for (seq, &class) in classes.iter().enumerate() {
            chk.op_committed(SeqNum(seq as u64), class, model);
        }
        let mut result = Ok(());
        for seq in 0..classes.len() {
            // Perform in program order except the violated pair.
            let idx = if seq == i {
                i + 1
            } else if seq == i + 1 {
                i
            } else {
                seq
            };
            result = chk.op_performed(SeqNum(idx as u64), classes[idx], model);
            if result.is_err() {
                break;
            }
        }
        prop_assert!(
            result.is_err(),
            "swapping constrained pair ({}, {}) must be detected under {model}",
            i,
            i + 1
        );
    }
}

// ---------------------------------------------------------------------
// Uniprocessor Ordering
// ---------------------------------------------------------------------

proptest! {
    /// A faithful single-threaded execution (loads read the most recent
    /// store; drains write the committed values) never trips the checker.
    #[test]
    fn uniproc_checker_accepts_faithful_execution(
        ops in proptest::collection::vec((0u64..8, any::<u64>(), any::<bool>()), 1..200),
        cache_load_values in any::<bool>(),
    ) {
        let mut chk = UniprocChecker::new(UniprocCheckerConfig {
            cache_load_values,
            load_value_capacity: 16,
        });
        // Model memory: the architectural value per word.
        let mut mem = std::collections::HashMap::new();
        // Committed-but-undrained stores per word (drain in order).
        let mut pending: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for (word, value, is_store) in ops {
            let addr = WordAddr(word);
            if is_store {
                chk.store_committed(addr, value);
                pending.entry(word).or_default().push(value);
            } else {
                let expected = pending
                    .get(&word)
                    .and_then(|v| v.last().copied())
                    .or_else(|| mem.get(&word).copied())
                    .unwrap_or(0);
                match chk.replay_load(addr, expected).expect("no violation") {
                    ReplayLookup::VcHit => {}
                    ReplayLookup::NeedCache => {
                        let cache = mem.get(&word).copied().unwrap_or(0);
                        chk.replay_load_from_cache(addr, expected, cache)
                            .expect("faithful cache replay");
                    }
                }
                // Occasionally drain one store.
                if let Some(q) = pending.get_mut(&word) {
                    if q.len() > 2 {
                        let v = q.remove(0);
                        // The drain writes its own value; the checker only
                        // compares at deallocation (last pending drain).
                        let written = if q.is_empty() { *q.last().unwrap_or(&v) } else { v };
                        mem.insert(word, written);
                        chk.store_performed(addr, written).expect("faithful drain");
                    }
                }
            }
        }
        // Drain everything.
        for (word, q) in pending {
            let addr = WordAddr(word);
            let n = q.len();
            for (i, _v) in q.iter().enumerate() {
                let written = if i + 1 == n { *q.last().expect("nonempty") } else { q[i] };
                chk.store_performed(addr, written).expect("final drain");
            }
        }
    }

    /// A corrupted final drain value is always caught at deallocation.
    #[test]
    fn uniproc_checker_rejects_corrupt_drain(
        word in 0u64..8,
        values in proptest::collection::vec(any::<u64>(), 1..8),
        flip in 1u64..u64::MAX,
    ) {
        let mut chk = UniprocChecker::new(UniprocCheckerConfig::default());
        let addr = WordAddr(word);
        for &v in &values {
            chk.store_committed(addr, v);
        }
        let last = *values.last().expect("nonempty");
        let mut result = Ok(());
        for (i, &v) in values.iter().enumerate() {
            let written = if i + 1 == values.len() { last ^ flip } else { v };
            result = chk.store_performed(addr, written);
            if result.is_err() { break; }
        }
        prop_assert!(matches!(result, Err(Violation::Uniproc(_))));
    }
}

// ---------------------------------------------------------------------
// Cache Coherence (epochs)
// ---------------------------------------------------------------------

/// One history segment: a writer epoch plus trailing reader epochs.
type Segment = (u8, u16, Vec<(u8, u16)>);

/// A legal epoch history for one block: alternating writer epochs and
/// reader groups, with correct hash chaining and non-decreasing times.
fn legal_history(segments: &[Segment]) -> (Vec<InformEpoch>, u16) {
    let addr = BlockAddr(5);
    let mut informs = Vec::new();
    let mut t = 1u16;
    let mut hash = 0xAAAAu16;
    for (writer, w_len, readers) in segments {
        let start = t;
        let end = start.wrapping_add(1 + (*w_len % 64));
        let new_hash = hash.wrapping_add(1);
        informs.push(InformEpoch {
            addr,
            kind: EpochKind::ReadWrite,
            node: NodeId(writer % 8),
            start: Ts16(start),
            end: Ts16(end),
            start_hash: hash,
            end_hash: new_hash,
        });
        hash = new_hash;
        t = end;
        // Overlapping reader epochs after the writer.
        let mut latest = t;
        for (reader, r_len) in readers {
            let r_end = t.wrapping_add(1 + (*r_len % 64));
            informs.push(InformEpoch {
                addr,
                kind: EpochKind::ReadOnly,
                node: NodeId(reader % 8),
                start: Ts16(t),
                end: Ts16(r_end),
                start_hash: hash,
                end_hash: hash,
            });
            latest = latest.max(r_end);
        }
        t = latest;
    }
    (informs, hash)
}

proptest! {
    /// Legal epoch histories pass regardless of (bounded) arrival
    /// shuffling — the sorter restores start order.
    #[test]
    fn coherence_checker_accepts_legal_histories(
        segments in proptest::collection::vec(
            (any::<u8>(), any::<u16>(),
             proptest::collection::vec((any::<u8>(), any::<u16>()), 0..4)),
            1..20),
        shuffle in proptest::collection::vec(0usize..64, 0..32),
    ) {
        let (mut informs, _) = legal_history(&segments);
        // Bounded shuffle: swap nearby messages (arrival order is
        // "strongly correlated" with start order, §4.3).
        for (k, &s) in shuffle.iter().enumerate() {
            if informs.len() >= 2 {
                let i = (s + k) % (informs.len() - 1);
                informs.swap(i, i + 1);
            }
        }
        let mut home = HomeChecker::new(NodeId(0), 256);
        home.met_mut().ensure_entry(BlockAddr(5), Ts16(0), 0xAAAA);
        for ie in informs {
            home.push(ie.into()).expect("legal history accepted");
        }
        home.flush().expect("legal history accepted at flush");
    }

    /// Corrupting one inform's hash breaks the chain and is detected.
    #[test]
    fn coherence_checker_rejects_broken_hash_chain(
        segments in proptest::collection::vec(
            (any::<u8>(), any::<u16>(),
             proptest::collection::vec((any::<u8>(), any::<u16>()), 0..3)),
            2..12),
        victim in any::<usize>(),
        flip in 1u16..u16::MAX,
    ) {
        let (mut informs, _) = legal_history(&segments);
        let v = victim % informs.len();
        informs[v].start_hash ^= flip;
        if informs[v].kind == EpochKind::ReadOnly {
            informs[v].end_hash = informs[v].start_hash;
        }
        let mut home = HomeChecker::new(NodeId(0), 256);
        home.met_mut().ensure_entry(BlockAddr(5), Ts16(0), 0xAAAA);
        let mut result = Ok(());
        for ie in informs {
            result = home.push(ie.into());
            if result.is_err() { break; }
        }
        if result.is_ok() {
            result = home.flush();
        }
        prop_assert!(matches!(result, Err(Violation::Coherence(_))));
    }

    /// A second concurrent writer (SWMR break) is always detected.
    #[test]
    fn coherence_checker_rejects_concurrent_writers(
        segments in proptest::collection::vec(
            (any::<u8>(), 4u16..64,
             proptest::collection::vec((any::<u8>(), any::<u16>()), 0..2)),
            1..10),
        pick in any::<usize>(),
    ) {
        let (informs, _) = legal_history(&segments);
        let writers: Vec<usize> = informs
            .iter()
            .enumerate()
            .filter(|(_, ie)| ie.kind == EpochKind::ReadWrite
                && ie.start.delta(ie.end) >= 3)
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!writers.is_empty());
        let v = writers[pick % writers.len()];
        // Forge an overlapping RW epoch inside the victim's interval.
        let intruder = InformEpoch {
            addr: informs[v].addr,
            kind: EpochKind::ReadWrite,
            node: NodeId(7),
            start: Ts16(informs[v].start.0.wrapping_add(1)),
            end: Ts16(informs[v].start.0.wrapping_add(2)),
            start_hash: informs[v].start_hash,
            end_hash: informs[v].start_hash,
        };
        let mut home = HomeChecker::new(NodeId(0), 256);
        home.met_mut().ensure_entry(BlockAddr(5), Ts16(0), 0xAAAA);
        let mut result = Ok(());
        for ie in informs.iter().take(v + 1).copied().chain([intruder]) {
            result = home.push(ie.into());
            if result.is_err() { break; }
        }
        if result.is_ok() {
            result = home.flush();
        }
        prop_assert!(
            matches!(result, Err(Violation::Coherence(_))),
            "concurrent writers must be detected"
        );
    }
}
