//! The Cache Epoch Table kept by each cache controller (§4.3).

use super::epoch::{EpochEnd, EpochKind, InformClosedEpoch, InformEpoch, InformOpenEpoch};
use crate::obs::{CheckerEvent, EventSink, ObsRing};
use crate::violation::{CoherenceViolation, Violation};
use dvmc_types::{BlockAddr, NodeId, Ts16};
use std::collections::{HashMap, VecDeque};

/// Scrub FIFO length (the paper uses 128 entries per CET).
pub const CET_SCRUB_FIFO_LEN: usize = 128;

/// One CET entry: 34 bits of state per cache line in hardware (1 bit epoch
/// kind, 16-bit start time, 16-bit start data hash, 1 DataReady bit).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CetEntry {
    /// Read-Only or Read-Write.
    pub kind: EpochKind,
    /// Logical time at which the epoch began.
    pub start: Ts16,
    /// CRC-16 of the block data at the beginning of the epoch.
    pub start_hash: u16,
    /// Whether data has arrived for this epoch (an epoch can begin before
    /// its data does).
    pub data_ready: bool,
    /// Whether the scrub machinery registered this epoch as open at the
    /// home node.
    pub reported_open: bool,
}

#[derive(Clone, Copy, Debug)]
struct ScrubRec {
    addr: BlockAddr,
    start: Ts16,
    deadline: Ts16,
}

/// Per-cache epoch table: rule-1 access checks, Inform-Epoch generation,
/// and timestamp scrubbing.
///
/// # Examples
///
/// ```rust
/// use dvmc_core::coherence::{CacheEpochTable, EpochKind};
/// use dvmc_types::{BlockAddr, NodeId, Ts16};
///
/// let mut cet = CacheEpochTable::new(NodeId(0));
/// let b = BlockAddr(7);
/// cet.begin_epoch(b, EpochKind::ReadOnly, Ts16(10), Some(0xBEEF));
/// cet.check_access(b, false).unwrap();
/// assert!(cet.check_access(b, true).is_err(), "no writes in an RO epoch");
/// let end = cet.end_epoch(b, Ts16(20), 0xBEEF).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct CacheEpochTable {
    node: NodeId,
    entries: HashMap<BlockAddr, CetEntry>,
    scrub: VecDeque<ScrubRec>,
    obs: Option<ObsRing>,
}

impl CacheEpochTable {
    /// Creates an empty CET for cache controller `node`.
    pub fn new(node: NodeId) -> Self {
        CacheEpochTable {
            node,
            entries: HashMap::new(),
            scrub: VecDeque::new(),
            obs: None,
        }
    }

    /// Attaches an event ring retaining `capacity` events. Observability
    /// is off (and free) until this is called.
    pub fn enable_obs(&mut self, capacity: usize) {
        self.obs = Some(ObsRing::new(capacity));
    }

    /// The event ring, when observability is enabled.
    pub fn obs(&self) -> Option<&ObsRing> {
        self.obs.as_ref()
    }

    /// Mutable ring access (the owner stamps the current cycle each tick).
    pub fn obs_mut(&mut self) -> Option<&mut ObsRing> {
        self.obs.as_mut()
    }

    /// Occupancy of the scrub FIFO. A scrub tick mutates the table iff
    /// this shrinks (records can pop without emitting an inform when
    /// their epoch already ended), so incremental checkpointing compares
    /// it around [`scrub_tick`](Self::scrub_tick).
    pub fn scrub_queue_len(&self) -> usize {
        self.scrub.len()
    }

    /// Rough resident footprint in bytes (entries plus the scrub FIFO),
    /// for checkpoint-cost accounting.
    pub fn approx_bytes(&self) -> u64 {
        (self.entries.len() * (std::mem::size_of::<CetEntry>() + 16)
            + self.scrub.len() * std::mem::size_of::<ScrubRec>()) as u64
    }

    /// Begins an epoch for `addr`. `data_hash` is `Some` if the block data
    /// is already present (e.g. an upgrade), `None` if it will arrive later
    /// (see [`data_arrived`](Self::data_arrived)).
    ///
    /// Beginning an epoch for a block that already has one replaces the old
    /// entry; cache controllers end epochs explicitly via
    /// [`end_epoch`](Self::end_epoch) on every legitimate transition, so a
    /// replacement only happens when the controller itself is faulty — and
    /// the home-side MET checks will flag the unclosed epoch.
    pub fn begin_epoch(
        &mut self,
        addr: BlockAddr,
        kind: EpochKind,
        now: Ts16,
        data_hash: Option<u16>,
    ) {
        self.entries.insert(
            addr,
            CetEntry {
                kind,
                start: now,
                start_hash: data_hash.unwrap_or(0),
                data_ready: data_hash.is_some(),
                reported_open: false,
            },
        );
        self.scrub.push_back(ScrubRec {
            addr,
            start: now,
            deadline: now.scrub_deadline(),
        });
        if let Some(o) = self.obs.as_mut() {
            o.record(CheckerEvent::EpochOpen { addr, at: now });
        }
    }

    /// Records the arrival of data for an epoch begun without it.
    pub fn data_arrived(&mut self, addr: BlockAddr, data_hash: u16) {
        if let Some(e) = self.entries.get_mut(&addr) {
            if !e.data_ready {
                e.start_hash = data_hash;
                e.data_ready = true;
            }
        }
    }

    /// Rule 1: a load or store must be performed during an appropriate
    /// epoch with data present.
    ///
    /// # Errors
    ///
    /// Returns [`CoherenceViolation::AccessOutsideEpoch`] on a read outside
    /// any ready epoch or a write outside a ready Read-Write epoch.
    pub fn check_access(&self, addr: BlockAddr, write: bool) -> Result<(), Violation> {
        let ok = match self.entries.get(&addr) {
            Some(e) if e.data_ready => !write || e.kind == EpochKind::ReadWrite,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(CoherenceViolation::AccessOutsideEpoch {
                node: self.node,
                addr,
                write,
            }
            .into())
        }
    }

    /// Ends the epoch for `addr` at logical time `now` with final data hash
    /// `end_hash`, producing the message to send to the block's home.
    /// Returns `None` if no epoch is in progress (e.g. an invalidation for
    /// a block this cache no longer holds).
    pub fn end_epoch(&mut self, addr: BlockAddr, now: Ts16, end_hash: u16) -> Option<EpochEnd> {
        let entry = self.entries.remove(&addr)?;
        if let Some(o) = self.obs.as_mut() {
            o.record(CheckerEvent::EpochClose { addr, at: now });
        }
        Some(if entry.reported_open {
            EpochEnd::Closed(InformClosedEpoch {
                addr,
                node: self.node,
                end: now,
                end_hash,
            })
        } else {
            EpochEnd::Inform(InformEpoch {
                addr,
                kind: entry.kind,
                node: self.node,
                start: entry.start,
                end: now,
                start_hash: entry.start_hash,
                // Read-Only data cannot change during the epoch; the wire
                // message would omit the second checksum.
                end_hash: if entry.kind == EpochKind::ReadOnly {
                    entry.start_hash
                } else {
                    end_hash
                },
            })
        })
    }

    /// Advances the scrub FIFO: every epoch whose wraparound deadline has
    /// been reached and that is still in progress is registered open with
    /// the home node (§4.3 "Logical Time").
    ///
    /// Call periodically with the controller's current logical time.
    pub fn scrub_tick(&mut self, now: Ts16) -> Vec<InformOpenEpoch> {
        let mut out = Vec::new();
        while let Some(head) = self.scrub.front().copied() {
            let due = head.deadline.earlier_or_eq(now);
            let overflow = self.scrub.len() > CET_SCRUB_FIFO_LEN;
            if !due && !overflow {
                break;
            }
            self.scrub.pop_front();
            if let Some(e) = self.entries.get_mut(&head.addr) {
                // Only if this is still the same epoch instance.
                if e.start == head.start && !e.reported_open {
                    e.reported_open = true;
                    out.push(InformOpenEpoch {
                        addr: head.addr,
                        kind: e.kind,
                        node: self.node,
                        start: e.start,
                        start_hash: e.start_hash,
                    });
                    if let Some(o) = self.obs.as_mut() {
                        o.record(CheckerEvent::EpochScrub { addr: head.addr });
                    }
                }
            }
        }
        out
    }

    /// The entry for `addr`, if an epoch is in progress.
    pub fn entry(&self, addr: BlockAddr) -> Option<&CetEntry> {
        self.entries.get(&addr)
    }

    /// The blocks with an epoch in progress (end-of-run audits).
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.entries.keys().copied()
    }

    /// Number of epochs currently in progress (equals the number of blocks
    /// held by the cache).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no epochs are in progress.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cache controller this CET belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cet() -> CacheEpochTable {
        CacheEpochTable::new(NodeId(2))
    }

    #[test]
    fn rule1_read_needs_any_ready_epoch() {
        let mut c = cet();
        let b = BlockAddr(1);
        assert!(c.check_access(b, false).is_err(), "no epoch at all");
        c.begin_epoch(b, EpochKind::ReadOnly, Ts16(0), None);
        assert!(c.check_access(b, false).is_err(), "data not yet ready");
        c.data_arrived(b, 0x42);
        c.check_access(b, false).unwrap();
        assert!(c.check_access(b, true).is_err(), "RO epoch forbids writes");
    }

    #[test]
    fn rule1_write_needs_rw_epoch() {
        let mut c = cet();
        let b = BlockAddr(1);
        c.begin_epoch(b, EpochKind::ReadWrite, Ts16(0), Some(0x42));
        c.check_access(b, true).unwrap();
        c.check_access(b, false).unwrap();
    }

    #[test]
    fn end_epoch_produces_inform_with_recorded_times() {
        let mut c = cet();
        let b = BlockAddr(9);
        c.begin_epoch(b, EpochKind::ReadWrite, Ts16(5), Some(0x10));
        let end = c.end_epoch(b, Ts16(11), 0x20).unwrap();
        match end {
            EpochEnd::Inform(ie) => {
                assert_eq!(ie.start, Ts16(5));
                assert_eq!(ie.end, Ts16(11));
                assert_eq!(ie.start_hash, 0x10);
                assert_eq!(ie.end_hash, 0x20);
                assert_eq!(ie.node, NodeId(2));
            }
            other => panic!("expected Inform, got {other:?}"),
        }
        assert!(c.entry(b).is_none());
        assert!(c.end_epoch(b, Ts16(12), 0).is_none(), "second end is a no-op");
    }

    #[test]
    fn ro_inform_reuses_start_hash() {
        let mut c = cet();
        let b = BlockAddr(9);
        c.begin_epoch(b, EpochKind::ReadOnly, Ts16(5), Some(0x10));
        match c.end_epoch(b, Ts16(11), 0xDEAD).unwrap() {
            EpochEnd::Inform(ie) => assert_eq!(ie.end_hash, 0x10),
            other => panic!("expected Inform, got {other:?}"),
        }
    }

    #[test]
    fn scrub_reports_long_running_epoch_open_then_closed() {
        let mut c = cet();
        let b = BlockAddr(3);
        c.begin_epoch(b, EpochKind::ReadWrite, Ts16(0), Some(0x77));
        // Not due yet.
        assert!(c.scrub_tick(Ts16(100)).is_empty());
        // Past the eighth-window deadline.
        let opens = c.scrub_tick(Ts16(Ts16::WINDOW / 8));
        assert_eq!(opens.len(), 1);
        assert_eq!(opens[0].addr, b);
        assert_eq!(opens[0].start, Ts16(0));
        // No duplicate open reports.
        assert!(c.scrub_tick(Ts16(Ts16::WINDOW / 8 + 10)).is_empty());
        // Ending the epoch now yields a Closed message.
        match c.end_epoch(b, Ts16(20000), 0x78).unwrap() {
            EpochEnd::Closed(ic) => {
                assert_eq!(ic.end, Ts16(20000));
                assert_eq!(ic.end_hash, 0x78);
            }
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn scrub_skips_replaced_epochs() {
        let mut c = cet();
        let b = BlockAddr(3);
        c.begin_epoch(b, EpochKind::ReadOnly, Ts16(0), Some(1));
        let _ = c.end_epoch(b, Ts16(5), 1);
        c.begin_epoch(b, EpochKind::ReadOnly, Ts16(6), Some(1));
        // The first scrub record's deadline passes, but that epoch ended;
        // no open report for it.
        let opens = c.scrub_tick(Ts16(Ts16::WINDOW / 8 + 1));
        assert!(opens.is_empty());
    }

    #[test]
    fn scrub_handles_wraparound_times() {
        let mut c = cet();
        let b = BlockAddr(4);
        let late = Ts16(u16::MAX - 100);
        c.begin_epoch(b, EpochKind::ReadOnly, late, Some(1));
        // Deadline wraps around zero; an early "now" after wrap triggers it.
        let opens = c.scrub_tick(Ts16(late.0.wrapping_add(Ts16::WINDOW / 8)));
        assert_eq!(opens.len(), 1);
    }

    #[test]
    fn obs_records_epoch_lifecycle() {
        let mut c = cet();
        c.enable_obs(8);
        let b = BlockAddr(3);
        c.begin_epoch(b, EpochKind::ReadWrite, Ts16(0), Some(0x77));
        let _ = c.scrub_tick(Ts16(Ts16::WINDOW / 8));
        let _ = c.end_epoch(b, Ts16(9000), 0x78);
        let m = c.obs().unwrap().metrics();
        assert_eq!(m.epoch_opens, 1);
        assert_eq!(m.scrubs, 1);
        assert_eq!(m.epoch_closes, 1);
        let names: Vec<&str> = c.obs().unwrap().events().map(|e| e.event.name()).collect();
        assert_eq!(names, ["epoch-open", "epoch-scrub", "epoch-close"]);
    }

    #[test]
    fn len_tracks_entries() {
        let mut c = cet();
        assert!(c.is_empty());
        c.begin_epoch(BlockAddr(1), EpochKind::ReadOnly, Ts16(0), Some(0));
        c.begin_epoch(BlockAddr(2), EpochKind::ReadWrite, Ts16(0), Some(0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.node(), NodeId(2));
    }
}
