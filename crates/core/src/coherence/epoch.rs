//! Epoch wire types exchanged between cache and memory controllers (§4.3).

use dvmc_types::{BlockAddr, NodeId, Ts16};
use std::fmt;

/// The permission class of an epoch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EpochKind {
    /// Permission to read the block.
    ReadOnly,
    /// Permission to read and write the block.
    ReadWrite,
}

impl fmt::Display for EpochKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EpochKind::ReadOnly => "RO",
            EpochKind::ReadWrite => "RW",
        })
    }
}

/// Sent by a cache controller to the block's home node when an epoch ends
/// (coherence downgrade/invalidation or eviction).
///
/// For Read-Only epochs the block data cannot change, so `end_hash` always
/// equals `start_hash` (the paper omits the second checksum on the wire;
/// we keep the field and let the message-size accounting in
/// [`crate::cost`] exclude it).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InformEpoch {
    /// The block whose epoch ended.
    pub addr: BlockAddr,
    /// Read-Only or Read-Write.
    pub kind: EpochKind,
    /// The cache that held the epoch.
    pub node: NodeId,
    /// Logical time at which the epoch began.
    pub start: Ts16,
    /// Logical time at which the epoch ended.
    pub end: Ts16,
    /// CRC-16 of the block data at the beginning of the epoch.
    pub start_hash: u16,
    /// CRC-16 of the block data at the end of the epoch.
    pub end_hash: u16,
}

/// Sent when the CET scrub FIFO finds an epoch still in progress near its
/// timestamp-wraparound deadline: the home should record the epoch as open
/// and expect a single [`InformClosedEpoch`] later.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InformOpenEpoch {
    /// The block whose epoch is still in progress.
    pub addr: BlockAddr,
    /// Read-Only or Read-Write.
    pub kind: EpochKind,
    /// The cache holding the epoch.
    pub node: NodeId,
    /// Logical time at which the epoch began.
    pub start: Ts16,
    /// CRC-16 of the block data at the beginning of the epoch.
    pub start_hash: u16,
}

/// Closes an epoch previously reported with [`InformOpenEpoch`].
///
/// The paper's message carries only the block address and end time; we add
/// the end-of-epoch data hash so the MET's hash chain stays unbroken for
/// Read-Write epochs (see DESIGN.md, fidelity notes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InformClosedEpoch {
    /// The block whose open epoch ended.
    pub addr: BlockAddr,
    /// The cache that held the epoch.
    pub node: NodeId,
    /// Logical time at which the epoch ended.
    pub end: Ts16,
    /// CRC-16 of the block data at the end of the epoch.
    pub end_hash: u16,
}

/// Any message processed by the home's epoch checker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EpochMessage {
    /// A completed epoch.
    Inform(InformEpoch),
    /// A long-running epoch being registered as open.
    Open(InformOpenEpoch),
    /// The close of a previously registered open epoch.
    Closed(InformClosedEpoch),
}

impl EpochMessage {
    /// The timestamp the sorter orders by: epoch start for
    /// `Inform`/`Open`, epoch end for `Closed`.
    pub fn sort_time(&self) -> Ts16 {
        match self {
            EpochMessage::Inform(m) => m.start,
            EpochMessage::Open(m) => m.start,
            EpochMessage::Closed(m) => m.end,
        }
    }

    /// Tie-break key for messages sharing a start time: the epoch's end.
    /// Epochs that end sooner are processed first, so a zero-length epoch
    /// is checked against the state *before* its same-tick peers — with a
    /// slow logical clock, causally ordered events can share a timestamp
    /// (§4.3 permits arbitrary tie-breaking only between causally
    /// unordered events; end-time order reconstructs the causal order
    /// among same-start epochs). Open epochs are still running and sort
    /// last.
    pub fn tiebreak_end(&self) -> Option<Ts16> {
        match self {
            EpochMessage::Inform(m) => Some(m.end),
            EpochMessage::Open(_) => None,
            EpochMessage::Closed(m) => Some(m.end),
        }
    }

    /// Rank for messages whose sort times tie exactly. A `Closed` at time
    /// T ends an epoch that began strictly earlier, so it causally
    /// precedes any epoch *beginning* at T: with a slow logical clock a
    /// permission handoff (close at T, successor opens at T) lands on one
    /// tick, and processing the successor first makes the MET see a
    /// still-open epoch and raise a spurious overlap. `Open`s sort after
    /// `Inform`s, matching the open-epochs-last tie-break.
    pub fn tiebreak_rank(&self) -> u8 {
        match self {
            EpochMessage::Closed(_) => 0,
            EpochMessage::Inform(_) => 1,
            EpochMessage::Open(_) => 2,
        }
    }

    /// The block the message concerns.
    pub fn addr(&self) -> BlockAddr {
        match self {
            EpochMessage::Inform(m) => m.addr,
            EpochMessage::Open(m) => m.addr,
            EpochMessage::Closed(m) => m.addr,
        }
    }

    /// Approximate wire size in bytes, for bandwidth accounting
    /// (address + type + timestamps + hashes; Read-Only informs omit the
    /// second checksum, as in the paper).
    pub fn wire_bytes(&self) -> u32 {
        match self {
            EpochMessage::Inform(m) => {
                // 6B address + 1B type/kind + 2x2B timestamps + hashes.
                let hashes = if m.kind == EpochKind::ReadOnly { 2 } else { 4 };
                6 + 1 + 4 + hashes
            }
            EpochMessage::Open(_) => 6 + 1 + 2 + 2,
            EpochMessage::Closed(_) => 6 + 1 + 2 + 2,
        }
    }
}

impl From<InformEpoch> for EpochMessage {
    fn from(m: InformEpoch) -> Self {
        EpochMessage::Inform(m)
    }
}
impl From<InformOpenEpoch> for EpochMessage {
    fn from(m: InformOpenEpoch) -> Self {
        EpochMessage::Open(m)
    }
}
impl From<InformClosedEpoch> for EpochMessage {
    fn from(m: InformClosedEpoch) -> Self {
        EpochMessage::Closed(m)
    }
}

/// What a cache controller emits when an epoch ends: a regular
/// [`InformEpoch`], or an [`InformClosedEpoch`] if the epoch had been
/// registered open by the scrub machinery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EpochEnd {
    /// The epoch completed normally.
    Inform(InformEpoch),
    /// The epoch had been reported open; this closes it.
    Closed(InformClosedEpoch),
}

impl From<EpochEnd> for EpochMessage {
    fn from(e: EpochEnd) -> Self {
        match e {
            EpochEnd::Inform(m) => EpochMessage::Inform(m),
            EpochEnd::Closed(m) => EpochMessage::Closed(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_time_picks_start_or_end() {
        let inform = EpochMessage::Inform(InformEpoch {
            addr: BlockAddr(1),
            kind: EpochKind::ReadWrite,
            node: NodeId(0),
            start: Ts16(4),
            end: Ts16(9),
            start_hash: 0,
            end_hash: 0,
        });
        assert_eq!(inform.sort_time(), Ts16(4));
        let closed = EpochMessage::Closed(InformClosedEpoch {
            addr: BlockAddr(1),
            node: NodeId(0),
            end: Ts16(7),
            end_hash: 0,
        });
        assert_eq!(closed.sort_time(), Ts16(7));
        assert_eq!(closed.addr(), BlockAddr(1));
    }

    #[test]
    fn ro_informs_are_smaller_on_the_wire() {
        let mk = |kind| {
            EpochMessage::Inform(InformEpoch {
                addr: BlockAddr(1),
                kind,
                node: NodeId(0),
                start: Ts16(0),
                end: Ts16(1),
                start_hash: 0,
                end_hash: 0,
            })
            .wire_bytes()
        };
        assert!(mk(EpochKind::ReadOnly) < mk(EpochKind::ReadWrite));
    }
}
