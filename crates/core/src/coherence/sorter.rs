//! The fixed-size priority queue that orders Inform-Epochs by epoch start
//! time before MET processing (§4.3).
//!
//! "Since the order in which Epoch-Informs arrive is already strongly
//! correlated with the epoch begin time, incoming Inform-Epochs can be
//! sorted by timestamp in a small fixed size priority queue."
//!
//! Timestamps are 16-bit windowed values, which do not admit a global
//! total order, so the queue orders by wrapping distance from a moving
//! watermark (the last timestamp released). All resident timestamps stay
//! within half a window of each other — guaranteed by the CET scrub
//! machinery and the bounded queue residence time — which makes this
//! ordering exact. With the paper's capacity of 256 entries, linear-scan
//! extraction is cheap.

use super::epoch::EpochMessage;
use dvmc_types::Ts16;

/// Bounded timestamp-sorting queue for epoch messages.
#[derive(Clone, Debug)]
pub struct EpochSorter {
    items: Vec<EpochMessage>,
    capacity: usize,
    watermark: Ts16,
}

impl EpochSorter {
    /// Creates a sorter holding at most `capacity` messages (Table 6
    /// configures 256).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sorter capacity must be positive");
        EpochSorter {
            items: Vec::with_capacity(capacity),
            capacity,
            watermark: Ts16(0),
        }
    }

    /// Inserts a message. If the queue is full, the earliest message is
    /// released and returned for immediate processing.
    pub fn push(&mut self, msg: EpochMessage) -> Vec<EpochMessage> {
        self.items.push(msg);
        let mut out = Vec::new();
        while self.items.len() > self.capacity {
            if let Some(m) = self.pop_min() {
                out.push(m);
            }
        }
        out
    }

    /// Releases, in timestamp order, every message older than `watermark`.
    ///
    /// The caller picks a watermark far enough in the logical past that no
    /// older message can still be in flight (arrival order is strongly
    /// correlated with epoch start time). A queued start at *exactly* half
    /// a window from the watermark resolves through the deterministic
    /// [`Ts16::earlier_than`] tie-break (the smaller raw value is earlier),
    /// so a message can never straddle the boundary undrained forever.
    pub fn drain_older_than(&mut self, watermark: Ts16) -> Vec<EpochMessage> {
        let mut out = Vec::new();
        while let Some(min) = self.peek_min_time() {
            if min.earlier_than(watermark) {
                out.extend(self.pop_min());
            } else {
                break;
            }
        }
        out
    }

    /// Releases everything, in timestamp order (end of run).
    pub fn flush(&mut self) -> Vec<EpochMessage> {
        let mut out = Vec::new();
        while let Some(m) = self.pop_min() {
            out.push(m);
        }
        out
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Start time of the earliest queued message, if any (the next one a
    /// watermark advance would release).
    pub fn oldest_start(&self) -> Option<Ts16> {
        self.peek_min_time()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Wrapping distance from a reference point placed half a window
    /// behind the last released timestamp. Live timestamps may *lag* the
    /// watermark by up to the scrub deadline (a long epoch's start), so
    /// distances must be measured from behind the watermark, not at it.
    /// Anchoring at the reference makes the key a *total* order over the
    /// whole `u16` ring — two queued timestamps exactly half a window
    /// apart still get distinct, deterministic keys — while the watermark
    /// advance in `pop_min` relies on the `Ts16` half-window tie-break to
    /// stay monotonic.
    fn distance(&self, t: Ts16) -> u16 {
        let reference = self.watermark.0.wrapping_sub(Ts16::WINDOW / 2);
        t.0.wrapping_sub(reference)
    }

    /// Full ordering key: start time, then message rank (closes before
    /// begins at the same tick — see [`EpochMessage::tiebreak_rank`]),
    /// then end time (ties on start are resolved so shorter epochs
    /// process first; open epochs last).
    fn key(&self, m: &EpochMessage) -> (u16, u8, u32) {
        let secondary = match m.tiebreak_end() {
            Some(end) => self.distance(end) as u32,
            None => u32::MAX,
        };
        (self.distance(m.sort_time()), m.tiebreak_rank(), secondary)
    }

    fn peek_min_time(&self) -> Option<Ts16> {
        self.items
            .iter()
            .min_by_key(|m| self.key(m))
            .map(super::epoch::EpochMessage::sort_time)
    }

    fn pop_min(&mut self) -> Option<EpochMessage> {
        if self.items.is_empty() {
            return None;
        }
        let (idx, _) = self
            .items
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| self.key(m))?;
        let msg = self.items.swap_remove(idx);
        // The watermark advances monotonically: a late-arriving old-start
        // inform must not drag the reference backwards.
        self.watermark = self.watermark.max_windowed(msg.sort_time());
        Some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coherence::epoch::{EpochKind, InformEpoch};
    use dvmc_types::{BlockAddr, NodeId};
    use proptest::prelude::*;

    fn msg(start: u16) -> EpochMessage {
        EpochMessage::Inform(InformEpoch {
            addr: BlockAddr(start as u64),
            kind: EpochKind::ReadOnly,
            node: NodeId(0),
            start: Ts16(start),
            end: Ts16(start.wrapping_add(1)),
            start_hash: 0,
            end_hash: 0,
        })
    }

    fn starts(msgs: &[EpochMessage]) -> Vec<u16> {
        msgs.iter().map(|m| m.sort_time().0).collect()
    }

    #[test]
    fn flush_sorts_by_start_time() {
        let mut q = EpochSorter::new(16);
        for s in [5u16, 1, 9, 3, 7] {
            assert!(q.push(msg(s)).is_empty());
        }
        assert_eq!(starts(&q.flush()), vec![1, 3, 5, 7, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_overflow_releases_earliest() {
        let mut q = EpochSorter::new(3);
        assert!(q.push(msg(4)).is_empty());
        assert!(q.push(msg(2)).is_empty());
        assert!(q.push(msg(6)).is_empty());
        let released = q.push(msg(8));
        assert_eq!(starts(&released), vec![2]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn drain_older_than_watermark() {
        let mut q = EpochSorter::new(16);
        for s in [10u16, 30, 20, 40] {
            q.push(msg(s));
        }
        assert_eq!(starts(&q.drain_older_than(Ts16(25))), vec![10, 20]);
        assert_eq!(q.len(), 2);
        assert_eq!(starts(&q.flush()), vec![30, 40]);
    }

    #[test]
    fn sorts_correctly_across_wraparound() {
        let mut q = EpochSorter::new(16);
        // Seed the watermark near the wrap point by draining one message.
        q.push(msg(u16::MAX - 20));
        let _ = q.drain_older_than(Ts16(u16::MAX - 10));
        for s in [u16::MAX - 5, 3, u16::MAX - 1, 1] {
            q.push(msg(s));
        }
        assert_eq!(
            starts(&q.flush()),
            vec![u16::MAX - 5, u16::MAX - 1, 1, 3],
            "wrapped timestamps sort after pre-wrap ones"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = EpochSorter::new(0);
    }

    #[test]
    fn drain_at_exact_half_window_uses_the_tie_break() {
        let mut q = EpochSorter::new(4);
        q.push(msg(0x1000));
        // The drain boundary sits exactly half a window ahead of the queued
        // start: the raw sign test saw delta == i16::MIN in both directions
        // and left the message queued forever; the deterministic tie-break
        // (0x1000 < 0x9000) releases it.
        assert_eq!(starts(&q.drain_older_than(Ts16(0x9000))), vec![0x1000]);
        assert!(q.is_empty());
    }

    proptest! {
        #[test]
        fn flush_is_always_sorted_within_window(mut ts in proptest::collection::vec(0u16..1000, 1..64)) {
            let mut q = EpochSorter::new(64);
            for &t in &ts {
                q.push(msg(t));
            }
            let out = starts(&q.flush());
            ts.sort_unstable();
            prop_assert_eq!(out, ts);
        }

        #[test]
        fn overflow_never_exceeds_capacity_or_loses_messages(
            ts in proptest::collection::vec(0u16..1000, 1..96),
        ) {
            // A small queue overflowing under random insertion: residency
            // stays bounded and every message comes out exactly once.
            let mut q = EpochSorter::new(8);
            let mut out = Vec::new();
            for &t in &ts {
                out.extend(starts(&q.push(msg(t))));
                prop_assert!(q.len() <= 8, "capacity exceeded: {}", q.len());
            }
            out.extend(starts(&q.flush()));
            let mut expected = ts.clone();
            expected.sort_unstable();
            out.sort_unstable();
            prop_assert_eq!(out, expected);
        }

        #[test]
        fn in_order_arrival_streams_out_sorted_despite_overflow(
            mut ts in proptest::collection::vec(0u16..1000, 1..96),
        ) {
            // The paper's assumption: arrival order is strongly correlated
            // with epoch start. With in-order arrival, the overflow
            // releases concatenated with the final flush form one sorted
            // stream even when the queue spills constantly.
            ts.sort_unstable();
            let mut q = EpochSorter::new(4);
            let mut out = Vec::new();
            for &t in &ts {
                out.extend(starts(&q.push(msg(t))));
            }
            out.extend(starts(&q.flush()));
            prop_assert_eq!(out, ts);
        }
    }
}
