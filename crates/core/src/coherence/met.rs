//! The Memory Epoch Table kept by each home memory controller (§4.3).

use super::epoch::{EpochKind, EpochMessage, InformClosedEpoch, InformEpoch, InformOpenEpoch};
use crate::violation::{CoherenceViolation, Violation};
use dvmc_types::{BlockAddr, NodeId, Ts16};
use std::collections::HashMap;

/// Per-block MET state: 48 bits per entry in hardware (latest Read-Only
/// end time, latest Read-Write end time, hash of the data at the end of
/// the latest Read-Write epoch; open-epoch tracking shares storage with
/// the end times via the OpenEpoch bit, §4.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MetEntry {
    /// Latest end time of any Read-Only epoch.
    pub last_ro_end: Ts16,
    /// Latest end time of any Read-Write epoch.
    pub last_rw_end: Ts16,
    /// CRC-16 of the block data at the end of the latest Read-Write epoch.
    pub last_rw_hash: u16,
    /// Bitmask of nodes with a registered-open Read-Only epoch.
    pub open_ro: u64,
    /// Node with a registered-open Read-Write epoch, if any.
    pub open_rw: Option<NodeId>,
}

/// The home-side epoch checker state for all blocks homed at one memory
/// controller. Messages must be processed in epoch start-time order (the
/// [`super::EpochSorter`] guarantees this).
#[derive(Clone, Debug)]
pub struct MemoryEpochTable {
    node: NodeId,
    entries: HashMap<BlockAddr, MetEntry>,
    processed: u64,
}

impl MemoryEpochTable {
    /// Creates an empty MET for home node `node`.
    pub fn new(node: NodeId) -> Self {
        MemoryEpochTable {
            node,
            entries: HashMap::new(),
            processed: 0,
        }
    }

    /// Constructs the entry for a block on its first cache request: the
    /// current logical time acts as the end of a fictitious Read-Write
    /// epoch whose final data is the block's current memory contents
    /// (`memory_hash`). No-op if the entry already exists.
    pub fn ensure_entry(&mut self, addr: BlockAddr, now: Ts16, memory_hash: u16) {
        self.entries.entry(addr).or_insert(MetEntry {
            last_ro_end: now,
            last_rw_end: now,
            last_rw_hash: memory_hash,
            open_ro: 0,
            open_rw: None,
        });
    }

    /// Processes one epoch message, checking rules 2 (no illegal overlap)
    /// and 3 (correct data propagation).
    ///
    /// # Errors
    ///
    /// Returns the violation detected, if any. State is still updated on a
    /// data-propagation violation so detection can continue past it.
    pub fn process(&mut self, msg: &EpochMessage) -> Result<(), Violation> {
        self.processed += 1;
        match msg {
            EpochMessage::Inform(ie) => self.process_inform(ie),
            EpochMessage::Open(oe) => self.process_open(oe),
            EpochMessage::Closed(ce) => self.process_closed(ce),
        }
    }

    fn entry_mut(&mut self, addr: BlockAddr) -> Result<&mut MetEntry, Violation> {
        let node = self.node;
        self.entries.get_mut(&addr).ok_or_else(|| {
            // An inform for a block never requested through this home is a
            // misrouted or fabricated message.
            CoherenceViolation::DataPropagation {
                home: node,
                addr,
                start_hash: 0,
                expected_hash: 0,
            }
            .into()
        })
    }

    /// Rule 2 for a starting timestamp: the epoch must not start before
    /// the relevant latest end times, and must not start while a
    /// conflicting epoch is registered open.
    fn check_overlap(
        home: NodeId,
        addr: BlockAddr,
        entry: &MetEntry,
        kind: EpochKind,
        start: Ts16,
    ) -> Result<(), Violation> {
        // Any epoch conflicts with the latest Read-Write epoch.
        if start.earlier_than(entry.last_rw_end) {
            return Err(CoherenceViolation::EpochOverlap {
                home,
                addr,
                start,
                conflicting_end: entry.last_rw_end,
            }
            .into());
        }
        if entry.open_rw.is_some() {
            return Err(CoherenceViolation::EpochOverlap {
                home,
                addr,
                start,
                conflicting_end: start,
            }
            .into());
        }
        if kind == EpochKind::ReadWrite {
            if start.earlier_than(entry.last_ro_end) {
                return Err(CoherenceViolation::EpochOverlap {
                    home,
                    addr,
                    start,
                    conflicting_end: entry.last_ro_end,
                }
                .into());
            }
            if entry.open_ro != 0 {
                return Err(CoherenceViolation::EpochOverlap {
                    home,
                    addr,
                    start,
                    conflicting_end: start,
                }
                .into());
            }
        }
        Ok(())
    }

    fn process_inform(&mut self, ie: &InformEpoch) -> Result<(), Violation> {
        let home = self.node;
        let entry = self.entry_mut(ie.addr)?;
        Self::check_overlap(home, ie.addr, entry, ie.kind, ie.start)?;
        // Rule 3: the data at the start of the epoch must equal the data at
        // the end of the latest Read-Write epoch.
        let expected = entry.last_rw_hash;
        let data_ok = ie.start_hash == expected
            // Read-Only epochs must also end with unchanged data.
            && (ie.kind == EpochKind::ReadWrite || ie.end_hash == ie.start_hash);
        match ie.kind {
            EpochKind::ReadOnly => {
                entry.last_ro_end = entry.last_ro_end.max_windowed(ie.end);
            }
            EpochKind::ReadWrite => {
                entry.last_rw_end = entry.last_rw_end.max_windowed(ie.end);
                entry.last_rw_hash = ie.end_hash;
            }
        }
        if !data_ok {
            return Err(CoherenceViolation::DataPropagation {
                home,
                addr: ie.addr,
                start_hash: ie.start_hash,
                expected_hash: expected,
            }
            .into());
        }
        Ok(())
    }

    fn process_open(&mut self, oe: &InformOpenEpoch) -> Result<(), Violation> {
        let home = self.node;
        let entry = self.entry_mut(oe.addr)?;
        Self::check_overlap(home, oe.addr, entry, oe.kind, oe.start)?;
        let expected = entry.last_rw_hash;
        match oe.kind {
            EpochKind::ReadOnly => entry.open_ro |= 1u64 << oe.node.index(),
            EpochKind::ReadWrite => entry.open_rw = Some(oe.node),
        }
        if oe.start_hash != expected {
            return Err(CoherenceViolation::DataPropagation {
                home,
                addr: oe.addr,
                start_hash: oe.start_hash,
                expected_hash: expected,
            }
            .into());
        }
        Ok(())
    }

    fn process_closed(&mut self, ce: &InformClosedEpoch) -> Result<(), Violation> {
        let home = self.node;
        let entry = self.entry_mut(ce.addr)?;
        if entry.open_rw == Some(ce.node) {
            entry.open_rw = None;
            entry.last_rw_end = entry.last_rw_end.max_windowed(ce.end);
            entry.last_rw_hash = ce.end_hash;
            Ok(())
        } else if entry.open_ro & (1u64 << ce.node.index()) != 0 {
            entry.open_ro &= !(1u64 << ce.node.index());
            entry.last_ro_end = entry.last_ro_end.max_windowed(ce.end);
            Ok(())
        } else {
            Err(CoherenceViolation::SpuriousClose {
                home,
                addr: ce.addr,
                node: ce.node,
            }
            .into())
        }
    }

    /// Scrubs stale end-times (§4.3: "We scrub METs in a similar fashion
    /// to CETs"): an end older than a quarter window is clamped forward to
    /// the quarter-window horizon. Safe because every timestamp still
    /// compared against the entry is fresher than the horizon — regular
    /// informs carry starts at most an eighth of a window old (longer
    /// epochs are reported open by then), and Open messages are sent at
    /// that same deadline. Call at least every quarter window.
    ///
    /// An end sitting at *exactly* half a window from the horizon (only
    /// reachable when scrubbing has already fallen behind its cadence)
    /// resolves through the deterministic [`Ts16::earlier_than`]
    /// tie-break instead of silently comparing as "neither earlier".
    /// Returns whether any end-time was actually clamped — a scrub that
    /// finds nothing stale leaves the table bit-identical, which
    /// incremental checkpointing relies on to keep quiescent homes out of
    /// the delta log.
    pub fn scrub(&mut self, now: Ts16) -> bool {
        let horizon = Ts16(now.0.wrapping_sub(Ts16::WINDOW / 4));
        let mut clamped = false;
        for e in self.entries.values_mut() {
            if e.last_ro_end.earlier_than(horizon) {
                e.last_ro_end = horizon;
                clamped = true;
            }
            if e.last_rw_end.earlier_than(horizon) {
                e.last_rw_end = horizon;
                clamped = true;
            }
        }
        clamped
    }

    /// The entry for `addr`, if constructed.
    pub fn entry(&self, addr: BlockAddr) -> Option<&MetEntry> {
        self.entries.get(&addr)
    }

    /// Number of blocks tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no blocks are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Messages processed so far (throughput accounting).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The home node this MET belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn met_with(addr: BlockAddr, hash: u16) -> MemoryEpochTable {
        let mut met = MemoryEpochTable::new(NodeId(0));
        met.ensure_entry(addr, Ts16(0), hash);
        met
    }

    fn inform(
        addr: BlockAddr,
        kind: EpochKind,
        node: u8,
        start: u16,
        end: u16,
        h0: u16,
        h1: u16,
    ) -> EpochMessage {
        EpochMessage::Inform(InformEpoch {
            addr,
            kind,
            node: NodeId(node),
            start: Ts16(start),
            end: Ts16(end),
            start_hash: h0,
            end_hash: h1,
        })
    }

    #[test]
    fn sequential_rw_epochs_pass_and_chain_hashes() {
        let b = BlockAddr(1);
        let mut met = met_with(b, 0xA);
        met.process(&inform(b, EpochKind::ReadWrite, 1, 1, 5, 0xA, 0xB))
            .unwrap();
        met.process(&inform(b, EpochKind::ReadWrite, 2, 5, 9, 0xB, 0xC))
            .unwrap();
        assert_eq!(met.entry(b).unwrap().last_rw_hash, 0xC);
        assert_eq!(met.entry(b).unwrap().last_rw_end, Ts16(9));
    }

    #[test]
    fn equal_start_and_end_times_are_legal() {
        // Epochs may abut exactly: "earlier than" is strict (§4.3).
        let b = BlockAddr(1);
        let mut met = met_with(b, 0xA);
        met.process(&inform(b, EpochKind::ReadWrite, 1, 0, 4, 0xA, 0xB))
            .unwrap();
        met.process(&inform(b, EpochKind::ReadOnly, 2, 4, 8, 0xB, 0xB))
            .unwrap();
    }

    #[test]
    fn rw_overlapping_rw_detected() {
        let b = BlockAddr(1);
        let mut met = met_with(b, 0xA);
        met.process(&inform(b, EpochKind::ReadWrite, 1, 1, 6, 0xA, 0xB))
            .unwrap();
        let err = met
            .process(&inform(b, EpochKind::ReadWrite, 2, 4, 9, 0xB, 0xC))
            .unwrap_err();
        assert!(matches!(
            err,
            Violation::Coherence(CoherenceViolation::EpochOverlap { .. })
        ));
    }

    #[test]
    fn ro_overlapping_rw_detected() {
        let b = BlockAddr(1);
        let mut met = met_with(b, 0xA);
        met.process(&inform(b, EpochKind::ReadWrite, 1, 1, 6, 0xA, 0xB))
            .unwrap();
        let err = met
            .process(&inform(b, EpochKind::ReadOnly, 2, 5, 7, 0xB, 0xB))
            .unwrap_err();
        assert!(matches!(
            err,
            Violation::Coherence(CoherenceViolation::EpochOverlap { .. })
        ));
    }

    #[test]
    fn ro_epochs_may_overlap_each_other() {
        let b = BlockAddr(1);
        let mut met = met_with(b, 0xA);
        met.process(&inform(b, EpochKind::ReadOnly, 1, 1, 9, 0xA, 0xA))
            .unwrap();
        met.process(&inform(b, EpochKind::ReadOnly, 2, 3, 7, 0xA, 0xA))
            .expect("concurrent readers are legal");
        // But a subsequent RW epoch must wait for the latest RO end.
        let err = met
            .process(&inform(b, EpochKind::ReadWrite, 3, 8, 12, 0xA, 0xB))
            .unwrap_err();
        assert!(matches!(
            err,
            Violation::Coherence(CoherenceViolation::EpochOverlap { .. })
        ));
    }

    #[test]
    fn data_propagation_mismatch_detected() {
        let b = BlockAddr(1);
        let mut met = met_with(b, 0xA);
        met.process(&inform(b, EpochKind::ReadWrite, 1, 1, 5, 0xA, 0xB))
            .unwrap();
        // Next epoch starts with stale data (hash 0xA instead of 0xB).
        let err = met
            .process(&inform(b, EpochKind::ReadOnly, 2, 6, 8, 0xA, 0xA))
            .unwrap_err();
        assert!(matches!(
            err,
            Violation::Coherence(CoherenceViolation::DataPropagation {
                start_hash: 0xA,
                expected_hash: 0xB,
                ..
            })
        ));
    }

    #[test]
    fn ro_epoch_with_changed_data_detected() {
        let b = BlockAddr(1);
        let mut met = met_with(b, 0xA);
        let err = met
            .process(&inform(b, EpochKind::ReadOnly, 1, 1, 5, 0xA, 0xF))
            .unwrap_err();
        assert!(matches!(
            err,
            Violation::Coherence(CoherenceViolation::DataPropagation { .. })
        ));
    }

    #[test]
    fn unknown_block_inform_detected() {
        let mut met = MemoryEpochTable::new(NodeId(0));
        let err = met
            .process(&inform(BlockAddr(9), EpochKind::ReadOnly, 1, 1, 2, 0, 0))
            .unwrap_err();
        assert!(matches!(err, Violation::Coherence(_)));
    }

    #[test]
    fn open_close_cycle_for_rw_epoch() {
        let b = BlockAddr(2);
        let mut met = met_with(b, 0xA);
        met.process(&EpochMessage::Open(InformOpenEpoch {
            addr: b,
            kind: EpochKind::ReadWrite,
            node: NodeId(3),
            start: Ts16(4),
            start_hash: 0xA,
        }))
        .unwrap();
        // While open, any other epoch overlaps.
        let err = met
            .process(&inform(b, EpochKind::ReadOnly, 1, 6, 8, 0xA, 0xA))
            .unwrap_err();
        assert!(matches!(
            err,
            Violation::Coherence(CoherenceViolation::EpochOverlap { .. })
        ));
        // Close it; the hash chain continues from the close.
        met.process(&EpochMessage::Closed(InformClosedEpoch {
            addr: b,
            node: NodeId(3),
            end: Ts16(100),
            end_hash: 0xB,
        }))
        .unwrap();
        assert_eq!(met.entry(b).unwrap().last_rw_hash, 0xB);
        assert_eq!(met.entry(b).unwrap().open_rw, None);
        met.process(&inform(b, EpochKind::ReadOnly, 1, 101, 102, 0xB, 0xB))
            .unwrap();
    }

    #[test]
    fn open_ro_epochs_tracked_per_node() {
        let b = BlockAddr(2);
        let mut met = met_with(b, 0xA);
        for node in [1u8, 2] {
            met.process(&EpochMessage::Open(InformOpenEpoch {
                addr: b,
                kind: EpochKind::ReadOnly,
                node: NodeId(node),
                start: Ts16(4),
                start_hash: 0xA,
            }))
            .unwrap();
        }
        // An RW epoch cannot start while RO epochs are open.
        let err = met
            .process(&inform(b, EpochKind::ReadWrite, 3, 5, 9, 0xA, 0xB))
            .unwrap_err();
        assert!(matches!(
            err,
            Violation::Coherence(CoherenceViolation::EpochOverlap { .. })
        ));
        // Closing one still leaves the other open.
        met.process(&EpochMessage::Closed(InformClosedEpoch {
            addr: b,
            node: NodeId(1),
            end: Ts16(10),
            end_hash: 0xA,
        }))
        .unwrap();
        assert_ne!(met.entry(b).unwrap().open_ro, 0);
    }

    #[test]
    fn spurious_close_detected() {
        let b = BlockAddr(2);
        let mut met = met_with(b, 0xA);
        let err = met
            .process(&EpochMessage::Closed(InformClosedEpoch {
                addr: b,
                node: NodeId(5),
                end: Ts16(10),
                end_hash: 0xA,
            }))
            .unwrap_err();
        assert!(matches!(
            err,
            Violation::Coherence(CoherenceViolation::SpuriousClose { .. })
        ));
    }

    #[test]
    fn ensure_entry_is_idempotent() {
        let b = BlockAddr(3);
        let mut met = met_with(b, 0xA);
        met.ensure_entry(b, Ts16(99), 0xF);
        assert_eq!(met.entry(b).unwrap().last_rw_hash, 0xA, "not overwritten");
        assert_eq!(met.len(), 1);
        assert!(!met.is_empty());
        assert_eq!(met.node(), NodeId(0));
    }

    #[test]
    fn scrub_at_exact_half_window_staleness_is_deterministic() {
        // An end exactly half a window behind the scrub horizon used to
        // compare as "neither earlier" in both directions; the Ts16
        // tie-break (smaller raw value is earlier) now resolves it the same
        // way every run.
        let b = BlockAddr(1);
        let mut met = MemoryEpochTable::new(NodeId(0));
        met.ensure_entry(b, Ts16(0x1000), 0xA);
        // horizon = 0xB000 - WINDOW/4 = 0x9000; delta(0x1000 -> 0x9000) is
        // i16::MIN, and 0x1000 < 0x9000 makes the entry "earlier": clamped.
        met.scrub(Ts16(0xB000));
        assert_eq!(met.entry(b).unwrap().last_ro_end, Ts16(0x9000));
        assert_eq!(met.entry(b).unwrap().last_rw_end, Ts16(0x9000));

        let c = BlockAddr(2);
        let mut met2 = MemoryEpochTable::new(NodeId(0));
        met2.ensure_entry(c, Ts16(0x9000), 0xA);
        // horizon = 0x3000 - WINDOW/4 = 0x1000; same ambiguous distance,
        // but 0x9000 > 0x1000 so the entry is *later*: left untouched.
        met2.scrub(Ts16(0x3000));
        assert_eq!(met2.entry(c).unwrap().last_ro_end, Ts16(0x9000));
        assert_eq!(met2.entry(c).unwrap().last_rw_end, Ts16(0x9000));
    }

    #[test]
    fn windowed_times_across_wraparound() {
        let b = BlockAddr(1);
        let mut met = MemoryEpochTable::new(NodeId(0));
        met.ensure_entry(b, Ts16(u16::MAX - 10), 0xA);
        // An epoch spanning the wraparound point.
        met.process(&inform(b, EpochKind::ReadWrite, 1, u16::MAX - 5, 3, 0xA, 0xB))
            .unwrap();
        met.process(&inform(b, EpochKind::ReadOnly, 2, 4, 9, 0xB, 0xB))
            .unwrap();
        // Overlap across the wrap still detected.
        let err = met
            .process(&inform(b, EpochKind::ReadWrite, 3, 1, 2, 0xB, 0xC))
            .unwrap_err();
        assert!(matches!(
            err,
            Violation::Coherence(CoherenceViolation::EpochOverlap { .. })
        ));
    }
}
