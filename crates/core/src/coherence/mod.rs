//! The Cache Coherence checker (§4.3).
//!
//! Coherence (plus the Single-Writer/Multiple-Reader property) is verified
//! with **epochs**: intervals of logical time during which a cache holds
//! read (Read-Only) or read-write (Read-Write) permission for a block.
//! Three rules, proven sufficient for coherence by Plakal et al., are
//! checked dynamically:
//!
//! 1. reads and writes are performed only during appropriate epochs,
//! 2. Read-Write epochs do not overlap other epochs temporally, and
//! 3. the data value of a block at the beginning of every epoch equals the
//!    value at the end of the most recent Read-Write epoch.
//!
//! Rule 1 is checked at each cache controller against its
//! [`CacheEpochTable`] (CET). Rules 2 and 3 are checked at the block's home
//! memory controller: whenever an epoch ends, the cache sends an
//! [`InformEpoch`] message; the home sorts Inform-Epochs by epoch start
//! time in a small fixed-size priority queue ([`EpochSorter`]) and checks
//! them against its [`MemoryEpochTable`] (MET).
//!
//! Logical times are 16-bit ([`dvmc_types::Ts16`]); wraparound is handled
//! by scrub FIFOs in the CET that force long-running epochs to be reported
//! with [`InformOpenEpoch`] / [`InformClosedEpoch`] message pairs before
//! timestamps become ambiguous.

mod cet;
mod epoch;
mod met;
mod sorter;

pub use cet::{CacheEpochTable, CetEntry, CET_SCRUB_FIFO_LEN};
pub use epoch::{EpochEnd, EpochKind, EpochMessage, InformClosedEpoch, InformEpoch, InformOpenEpoch};
pub use met::{MemoryEpochTable, MetEntry};
pub use sorter::EpochSorter;

use crate::obs::{CheckerEvent, EventSink, ObsRing};
use crate::violation::Violation;
use dvmc_types::Ts16;

/// Convenience wrapper pairing an [`EpochSorter`] with a
/// [`MemoryEpochTable`], as deployed at one home memory controller.
///
/// # Examples
///
/// ```rust
/// use dvmc_core::coherence::{EpochKind, HomeChecker, InformEpoch};
/// use dvmc_types::{BlockAddr, NodeId, Ts16};
///
/// let mut home = HomeChecker::new(NodeId(0), 256);
/// let addr = BlockAddr(3);
/// home.met_mut().ensure_entry(addr, Ts16(0), 0xAAAA);
/// home.push(
///     InformEpoch {
///         addr,
///         kind: EpochKind::ReadOnly,
///         node: NodeId(1),
///         start: Ts16(5),
///         end: Ts16(9),
///         start_hash: 0xAAAA,
///         end_hash: 0xAAAA,
///     }
///     .into(),
/// )
/// .unwrap();
/// assert!(home.flush().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct HomeChecker {
    sorter: EpochSorter,
    met: MemoryEpochTable,
    /// Sort time of the most recently arrived message, for detecting
    /// out-of-order arrival (the condition the sorter exists to repair).
    last_arrival: Option<Ts16>,
    obs: Option<ObsRing>,
}

impl HomeChecker {
    /// Creates a home checker with a sorter of `queue_capacity` entries
    /// (the paper configures 256, Table 6).
    pub fn new(node: dvmc_types::NodeId, queue_capacity: usize) -> Self {
        HomeChecker {
            sorter: EpochSorter::new(queue_capacity),
            met: MemoryEpochTable::new(node),
            last_arrival: None,
            obs: None,
        }
    }

    /// Attaches a bounded event ring (observability; disabled by default).
    pub fn enable_obs(&mut self, capacity: usize) {
        self.obs = Some(ObsRing::new(capacity));
    }

    /// The event ring, if enabled.
    pub fn obs(&self) -> Option<&ObsRing> {
        self.obs.as_ref()
    }

    /// Mutable access to the event ring (for cycle stamping), if enabled.
    pub fn obs_mut(&mut self) -> Option<&mut ObsRing> {
        self.obs.as_mut()
    }

    #[inline]
    fn note(&mut self, event: CheckerEvent) {
        if let Some(o) = self.obs.as_mut() {
            o.record(event);
        }
    }

    /// Queues an epoch message; if the priority queue is full, the oldest
    /// message is processed immediately.
    ///
    /// # Errors
    ///
    /// Propagates the first violation found while processing displaced
    /// messages. Every displaced message is MET-checked even when an
    /// earlier one errors — abandoning the tail of a release batch would
    /// silently lose informs and cascade secondary violations (orphaned
    /// opens, broken hash chains) on unrelated blocks.
    pub fn push(&mut self, msg: EpochMessage) -> Result<(), Violation> {
        if self.obs.is_some() {
            let addr = msg.addr();
            let t = msg.sort_time();
            if let Some(last) = self.last_arrival {
                if t.earlier_than(last) {
                    self.note(CheckerEvent::InformReorder { addr });
                }
            }
            self.last_arrival = Some(self.last_arrival.map_or(t, |l| l.max_windowed(t)));
            let queued = (self.sorter.len() + 1) as u32;
            self.note(CheckerEvent::InformEnqueue { addr, queued });
        }
        let ready = self.sorter.push(msg);
        self.process_batch(ready)
    }

    /// Processes all queued messages whose timestamp is earlier than
    /// `watermark` (safe once no older message can still arrive).
    ///
    /// # Errors
    ///
    /// Returns the first violation detected; later messages in the batch
    /// are still processed.
    pub fn drain_older_than(&mut self, watermark: Ts16) -> Result<(), Violation> {
        let ready = self.sorter.drain_older_than(watermark);
        self.process_batch(ready)
    }

    /// Processes every queued message (end of run).
    ///
    /// # Errors
    ///
    /// Returns the first violation detected; later messages in the batch
    /// are still processed.
    pub fn flush(&mut self) -> Result<(), Violation> {
        let ready = self.sorter.flush();
        self.process_batch(ready)
    }

    /// MET-checks a released batch in full, reporting the first violation.
    fn process_batch(&mut self, ready: Vec<EpochMessage>) -> Result<(), Violation> {
        let mut first = None;
        for msg in &ready {
            if let Err(v) = self.process_ready(msg) {
                first.get_or_insert(v);
            }
        }
        match first {
            Some(v) => Err(v),
            None => Ok(()),
        }
    }

    /// MET-checks one sorted message; every epoch message carries data
    /// hashes, so each check is a CRC comparison against the hash chain.
    fn process_ready(&mut self, msg: &EpochMessage) -> Result<(), Violation> {
        self.note(CheckerEvent::CrcCheck { addr: msg.addr() });
        self.met.process(msg)
    }

    /// The underlying MET.
    pub fn met(&self) -> &MemoryEpochTable {
        &self.met
    }

    /// Mutable access to the MET (for `ensure_entry` at request time).
    pub fn met_mut(&mut self) -> &mut MemoryEpochTable {
        &mut self.met
    }

    /// Runs the MET stale-timestamp scrub (call at least every quarter
    /// window of logical time). Returns whether the scrub changed any
    /// observable checker state — an end-time clamp, or the `MetScrub`
    /// event recorded when an observability ring is attached — so callers
    /// doing incremental checkpointing know whether this home dirtied
    /// itself.
    pub fn scrub(&mut self, now: Ts16) -> bool {
        self.note(CheckerEvent::MetScrub { at: now });
        self.met.scrub(now) | self.obs.is_some()
    }

    /// Number of queued (not yet processed) messages.
    pub fn queued(&self) -> usize {
        self.sorter.len()
    }

    /// Start time of the earliest queued message, if any (what the next
    /// watermark drain would release first).
    pub fn oldest_queued(&self) -> Option<Ts16> {
        self.sorter.oldest_start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvmc_types::{BlockAddr, NodeId};

    fn ro(addr: u64, node: u8, start: u16, end: u16, hash: u16) -> EpochMessage {
        InformEpoch {
            addr: BlockAddr(addr),
            kind: EpochKind::ReadOnly,
            node: NodeId(node),
            start: Ts16(start),
            end: Ts16(end),
            start_hash: hash,
            end_hash: hash,
        }
        .into()
    }

    fn rw(addr: u64, node: u8, start: u16, end: u16, h0: u16, h1: u16) -> EpochMessage {
        InformEpoch {
            addr: BlockAddr(addr),
            kind: EpochKind::ReadWrite,
            node: NodeId(node),
            start: Ts16(start),
            end: Ts16(end),
            start_hash: h0,
            end_hash: h1,
        }
        .into()
    }

    #[test]
    fn out_of_order_arrival_is_sorted_before_checking() {
        let mut home = HomeChecker::new(NodeId(0), 256);
        home.met_mut().ensure_entry(BlockAddr(1), Ts16(0), 0x11);
        // RW epoch [2, 6) then RO epochs [6, 9) arrive out of order.
        home.push(ro(1, 2, 6, 9, 0x22)).unwrap();
        home.push(rw(1, 1, 2, 6, 0x11, 0x22)).unwrap();
        home.flush().expect("sorting by start time avoids a false positive");
    }

    #[test]
    fn overlap_still_detected_after_sorting() {
        let mut home = HomeChecker::new(NodeId(0), 256);
        home.met_mut().ensure_entry(BlockAddr(1), Ts16(0), 0x11);
        home.push(rw(1, 1, 2, 8, 0x11, 0x22)).unwrap();
        home.push(ro(1, 2, 5, 9, 0x22)).unwrap();
        let err = home.flush().unwrap_err();
        assert!(matches!(err, Violation::Coherence(_)), "{err}");
    }

    #[test]
    fn obs_records_sorter_traffic_and_crc_checks() {
        let mut home = HomeChecker::new(NodeId(0), 256);
        home.enable_obs(16);
        home.met_mut().ensure_entry(BlockAddr(1), Ts16(0), 0x11);
        // In-order arrival, then one message that arrives late (earlier
        // sort time than its predecessor): a reorder the sorter repairs.
        home.push(ro(1, 2, 6, 9, 0x22)).unwrap();
        home.push(rw(1, 1, 2, 6, 0x11, 0x22)).unwrap();
        home.scrub(Ts16(64));
        home.flush().unwrap();
        let m = home.obs().unwrap().metrics();
        assert_eq!(m.informs_enqueued, 2);
        assert_eq!(m.informs_reordered, 1, "late RW inform flagged");
        assert_eq!(m.crc_checks, 2, "one MET check per message");
        assert_eq!(m.scrubs, 1);
        assert_eq!(m.sorter_occupancy_hwm, 2);
    }

    #[test]
    fn full_queue_processes_oldest() {
        let mut home = HomeChecker::new(NodeId(0), 2);
        home.met_mut().ensure_entry(BlockAddr(1), Ts16(0), 0x11);
        home.push(ro(1, 1, 1, 2, 0x11)).unwrap();
        home.push(ro(1, 2, 3, 4, 0x11)).unwrap();
        assert_eq!(home.queued(), 2);
        home.push(ro(1, 3, 5, 6, 0x11)).unwrap();
        assert_eq!(home.queued(), 2, "oldest was displaced and processed");
        home.flush().unwrap();
    }
}
