//! # The DVMC checkers
//!
//! This crate implements the paper's contribution: dynamic verification of
//! memory consistency (DVMC) via three independently checked invariants
//! that together are *sufficient* for the consistency model specified by
//! an ordering table (proven in the paper's Appendix A):
//!
//! 1. **Uniprocessor Ordering** ([`UniprocChecker`], §4.1) — every load
//!    returns the value of the most recent program-order store to the same
//!    word, verified by sequential replay at commit against a small
//!    Verification Cache.
//! 2. **Allowable Reordering** ([`ReorderChecker`], §4.2) — the reordering
//!    between program order and perform order is permitted by the
//!    consistency model's ordering table, verified with per-type `max{OP}`
//!    counter registers and lost-operation detection at membars.
//! 3. **Cache Coherence** ([`coherence`], §4.3) — the single-writer/
//!    multiple-reader property and correct data propagation, verified with
//!    epochs tracked in Cache Epoch Tables and Memory Epoch Tables linked
//!    by Inform-Epoch messages carrying CRC-16 data hashes.
//!
//! The checkers are deliberately **simulator-independent**: each is a
//! plain data structure driven by architectural events (commit, perform,
//! epoch begin/end). The `dvmc-sim` crate wires them into a full-system
//! multicore simulator; they can equally be driven by traces, unit tests,
//! or a different substrate — mirroring the paper's claim that any checker
//! can be replaced by a different scheme.
//!
//! A checker that detects an invariant violation returns a [`Violation`];
//! in a deployed system this triggers backward error recovery (the
//! `dvmc-ber` crate models SafetyNet). Checker errors can cause false
//! positives — costing an unnecessary recovery — but never false
//! acceptance of an inconsistent execution (modulo the documented CRC-16
//! aliasing probability of 1/65535 for ≥16-bit corruptions).

pub mod coherence;
pub mod cost;
pub mod obs;
pub mod reorder;
pub mod trace;
pub mod uniproc;
pub mod violation;

pub use coherence::{
    CacheEpochTable, EpochKind, EpochMessage, EpochSorter, HomeChecker, InformEpoch,
    MemoryEpochTable,
};
pub use obs::{
    CheckerEvent, EventSink, MetricsWindow, ObsMetrics, ObsRing, TimedEvent, ViolationReport,
};
pub use reorder::ReorderChecker;
pub use trace::{TraceChecker, TraceEvent};
pub use uniproc::{ReplayLookup, UniprocChecker, UniprocCheckerConfig, UniprocStats};
pub use violation::{
    CoherenceViolation, LostOpViolation, ReorderViolation, UniprocViolation, Violation,
};
