//! The Uniprocessor Ordering checker (§4.1).
//!
//! Uniprocessor Ordering is trivially satisfied when operations execute
//! sequentially in program order, so it is verified by *replaying* every
//! memory operation at commit — in program order — and comparing replayed
//! load values against the values the original out-of-order execution
//! observed.
//!
//! Replay happens in the **verification stage**, added to the pipeline
//! before retirement. Replayed stores are still speculative, so they write
//! a dedicated **Verification Cache (VC)** rather than the real cache;
//! replayed loads read the VC first and fall back to the highest cache
//! level (bypassing the write buffer) on a VC miss. A mismatch signals a
//! violation that a pipeline flush can resolve.
//!
//! When a store's last VC entry is freed (the store performed and no newer
//! committed store to the word remains), the checker compares the value
//! written to the cache against the VC record — detecting corrupted or
//! misdirected write-buffer drains.
//!
//! For models that do not order loads (RMO), the checker can additionally
//! cache executed load values in the VC so replay rarely touches the L1
//! ([`UniprocCheckerConfig::cache_load_values`], the optimization cited
//! from dynamic verification of single-threaded execution).

use crate::obs::{CheckerEvent, EventSink, ObsRing};
use crate::violation::{UniprocViolation, Violation};
use dvmc_types::WordAddr;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Configuration of the Uniprocessor Ordering checker.
#[derive(Clone, Copy, Debug)]
pub struct UniprocCheckerConfig {
    /// Cache executed load values in the VC (RMO optimization, §4.1).
    pub cache_load_values: bool,
    /// Capacity (in words) of the load-value portion of the VC. Store
    /// entries are pinned and not subject to this limit; the pipeline
    /// stalls commit instead when [`UniprocChecker::store_entries`] reaches
    /// the write-buffer bound.
    pub load_value_capacity: usize,
}

impl Default for UniprocCheckerConfig {
    fn default() -> Self {
        UniprocCheckerConfig {
            cache_load_values: false,
            load_value_capacity: 32,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct VcEntry {
    value: u64,
    /// Committed stores to this word that have not yet performed. Zero for
    /// pure load-value entries.
    pending_stores: u32,
}

/// The outcome of the VC phase of a load replay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplayLookup {
    /// The VC held the word; the comparison already happened.
    VcHit,
    /// The VC missed; the caller must read the highest-level cache
    /// (bypassing the write buffer) and finish with
    /// [`UniprocChecker::replay_load_from_cache`].
    NeedCache,
}

/// Statistics kept by the checker for the evaluation figures.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniprocStats {
    /// Loads replayed.
    pub replays: u64,
    /// Replays satisfied by the VC.
    pub vc_hits: u64,
    /// Replays that had to read the cache.
    pub cache_reads: u64,
}

/// Per-processor Uniprocessor Ordering checker (§4.1).
///
/// # Examples
///
/// ```rust
/// use dvmc_core::{UniprocChecker, ReplayLookup};
/// use dvmc_types::WordAddr;
///
/// let mut chk = UniprocChecker::new(Default::default());
/// let a = WordAddr(64);
/// chk.store_committed(a, 7);
/// // A replayed load between commit and perform hits the VC:
/// assert_eq!(chk.replay_load(a, 7).unwrap(), ReplayLookup::VcHit);
/// // The write buffer drains the store to the cache:
/// chk.store_performed(a, 7).unwrap();
/// // Later replays fall through to the cache:
/// assert_eq!(chk.replay_load(a, 7).unwrap(), ReplayLookup::NeedCache);
/// chk.replay_load_from_cache(a, 7, 7).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct UniprocChecker {
    cfg: UniprocCheckerConfig,
    vc: HashMap<WordAddr, VcEntry>,
    /// FIFO of load-value entries for capacity eviction.
    load_lru: VecDeque<WordAddr>,
    store_entries: usize,
    stats: UniprocStats,
    obs: Option<ObsRing>,
}

impl UniprocChecker {
    /// Creates a checker with the given configuration.
    pub fn new(cfg: UniprocCheckerConfig) -> Self {
        UniprocChecker {
            cfg,
            vc: HashMap::new(),
            load_lru: VecDeque::new(),
            store_entries: 0,
            stats: UniprocStats::default(),
            obs: None,
        }
    }

    /// Attaches an event ring retaining `capacity` events. Observability
    /// is off (and free) until this is called.
    pub fn enable_obs(&mut self, capacity: usize) {
        self.obs = Some(ObsRing::new(capacity));
    }

    /// The event ring, when observability is enabled.
    pub fn obs(&self) -> Option<&ObsRing> {
        self.obs.as_ref()
    }

    /// Mutable ring access (the owner stamps the current cycle each tick).
    pub fn obs_mut(&mut self) -> Option<&mut ObsRing> {
        self.obs.as_mut()
    }

    #[inline]
    fn note(&mut self, event: CheckerEvent) {
        if let Some(o) = self.obs.as_mut() {
            o.record(event);
        }
    }

    /// Records a store committing (entering the verification stage).
    /// Commits must be reported in program order; the VC entry tracks the
    /// most recent committed value for the word.
    pub fn store_committed(&mut self, addr: WordAddr, value: u64) {
        let allocated = match self.vc.entry(addr) {
            Entry::Occupied(mut e) => {
                let entry = e.get_mut();
                if entry.pending_stores == 0 {
                    // Was a load-value entry; it becomes a pinned store entry.
                    self.store_entries += 1;
                }
                entry.value = value;
                entry.pending_stores += 1;
                false
            }
            Entry::Vacant(v) => {
                v.insert(VcEntry {
                    value,
                    pending_stores: 1,
                });
                self.store_entries += 1;
                true
            }
        };
        if allocated {
            self.note(CheckerEvent::VcAlloc { addr });
        }
    }

    /// Records a store performing (its value becoming visible in the cache,
    /// e.g. at write-buffer drain). `cache_value` is the value actually
    /// written to the cache.
    ///
    /// # Errors
    ///
    /// Returns a violation if no committed store is outstanding for the
    /// word, or if — on deallocation of the word's last pending store —
    /// the cache value disagrees with the VC.
    pub fn store_performed(&mut self, addr: WordAddr, cache_value: u64) -> Result<(), Violation> {
        let Some(entry) = self.vc.get_mut(&addr) else {
            return Err(UniprocViolation::StorePerformedUnknown { addr }.into());
        };
        if entry.pending_stores == 0 {
            return Err(UniprocViolation::StorePerformedUnknown { addr }.into());
        }
        entry.pending_stores -= 1;
        if entry.pending_stores > 0 {
            // Older store of a chain drained; the newest committed value
            // still protects the word.
            return Ok(());
        }
        let vc_value = entry.value;
        self.store_entries -= 1;
        if self.cfg.cache_load_values {
            // Keep the final value as a load-value entry.
            self.note_load_entry(addr);
        } else {
            self.vc.remove(&addr);
            self.note(CheckerEvent::VcDealloc { addr });
        }
        if vc_value != cache_value {
            return Err(UniprocViolation::StoreDeallocMismatch {
                addr,
                vc_value,
                cache_value,
            }
            .into());
        }
        Ok(())
    }

    /// Records an executed load value in the VC (RMO optimization). No-op
    /// unless [`UniprocCheckerConfig::cache_load_values`] is set. Store
    /// entries take precedence and are left untouched; existing load-value
    /// entries are refreshed so the VC tracks the most recent execution
    /// (remote writes between executions would otherwise leave stale
    /// values behind).
    pub fn load_executed(&mut self, addr: WordAddr, value: u64) {
        if !self.cfg.cache_load_values {
            return;
        }
        match self.vc.entry(addr) {
            Entry::Occupied(mut e) => {
                if e.get().pending_stores == 0 {
                    e.get_mut().value = value;
                }
            }
            Entry::Vacant(v) => {
                v.insert(VcEntry {
                    value,
                    pending_stores: 0,
                });
                self.note(CheckerEvent::VcAlloc { addr });
                self.note_load_entry(addr);
            }
        }
    }

    /// Replays a load against the VC. On [`ReplayLookup::NeedCache`], the
    /// caller reads the cache (bypassing the write buffer) and completes
    /// the check with [`replay_load_from_cache`](Self::replay_load_from_cache).
    ///
    /// # Errors
    ///
    /// Returns [`UniprocViolation::LoadMismatch`] if the VC hit and the
    /// replayed value differs from `original_value`.
    pub fn replay_load(
        &mut self,
        addr: WordAddr,
        original_value: u64,
    ) -> Result<ReplayLookup, Violation> {
        self.stats.replays += 1;
        if let Some(entry) = self.vc.get(&addr).copied() {
            self.stats.vc_hits += 1;
            self.note(CheckerEvent::ReplayVcHit { addr });
            if entry.value != original_value {
                return Err(UniprocViolation::LoadMismatch {
                    addr,
                    original: original_value,
                    replayed: entry.value,
                }
                .into());
            }
            return Ok(ReplayLookup::VcHit);
        }
        self.stats.cache_reads += 1;
        self.note(CheckerEvent::ReplayCacheRead { addr });
        Ok(ReplayLookup::NeedCache)
    }

    /// Completes a VC-miss replay with the value read from the cache.
    ///
    /// # Errors
    ///
    /// Returns [`UniprocViolation::LoadMismatch`] if the cache value
    /// differs from the original execution's value.
    pub fn replay_load_from_cache(
        &mut self,
        addr: WordAddr,
        original_value: u64,
        cache_value: u64,
    ) -> Result<(), Violation> {
        if self.cfg.cache_load_values {
            self.load_executed(addr, cache_value);
        }
        if cache_value != original_value {
            return Err(UniprocViolation::LoadMismatch {
                addr,
                original: original_value,
                replayed: cache_value,
            }
            .into());
        }
        Ok(())
    }

    /// Number of VC entries currently pinned by committed-but-unperformed
    /// stores. The pipeline compares this against the VC size to decide
    /// whether commit must stall (§4.1: "the VC must be big enough to hold
    /// all stores that have been verified but not yet performed").
    pub fn store_entries(&self) -> usize {
        self.store_entries
    }

    /// Replay statistics.
    pub fn stats(&self) -> UniprocStats {
        self.stats
    }

    fn note_load_entry(&mut self, addr: WordAddr) {
        self.load_lru.push_back(addr);
        // Evict oldest load-value entries beyond capacity. Entries that
        // became store entries in the meantime are skipped (pinned).
        while self.load_lru.len() > self.cfg.load_value_capacity {
            let Some(victim) = self.load_lru.pop_front() else {
                break;
            };
            if let Some(e) = self.vc.get(&victim) {
                if e.pending_stores == 0 {
                    self.vc.remove(&victim);
                    self.note(CheckerEvent::VcDealloc { addr: victim });
                }
            }
        }
    }
}

impl Default for UniprocChecker {
    fn default() -> Self {
        UniprocChecker::new(UniprocCheckerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rmo_cfg() -> UniprocCheckerConfig {
        UniprocCheckerConfig {
            cache_load_values: true,
            load_value_capacity: 4,
        }
    }

    #[test]
    fn load_forwarded_from_vc_matches() {
        let mut chk = UniprocChecker::default();
        chk.store_committed(WordAddr(8), 42);
        assert_eq!(chk.replay_load(WordAddr(8), 42).unwrap(), ReplayLookup::VcHit);
    }

    #[test]
    fn load_forwarded_from_vc_mismatch_detected() {
        let mut chk = UniprocChecker::default();
        chk.store_committed(WordAddr(8), 42);
        // The OOO execution erroneously saw 41 (e.g. bad LSQ forwarding).
        let err = chk.replay_load(WordAddr(8), 41).unwrap_err();
        assert!(matches!(
            err,
            Violation::Uniproc(UniprocViolation::LoadMismatch { original: 41, replayed: 42, .. })
        ));
    }

    #[test]
    fn newest_committed_store_wins_in_vc() {
        let mut chk = UniprocChecker::default();
        chk.store_committed(WordAddr(8), 1);
        chk.store_committed(WordAddr(8), 2);
        assert_eq!(chk.replay_load(WordAddr(8), 2).unwrap(), ReplayLookup::VcHit);
        // Draining the older store does not free the entry...
        chk.store_performed(WordAddr(8), 1).unwrap();
        assert_eq!(chk.store_entries(), 1);
        // ...and the dealloc check fires on the last drain.
        chk.store_performed(WordAddr(8), 2).unwrap();
        assert_eq!(chk.store_entries(), 0);
    }

    #[test]
    fn store_dealloc_mismatch_detected() {
        let mut chk = UniprocChecker::default();
        chk.store_committed(WordAddr(16), 7);
        // The write buffer wrote a corrupted value to the cache.
        let err = chk.store_performed(WordAddr(16), 9).unwrap_err();
        assert!(matches!(
            err,
            Violation::Uniproc(UniprocViolation::StoreDeallocMismatch {
                vc_value: 7,
                cache_value: 9,
                ..
            })
        ));
    }

    #[test]
    fn stray_store_perform_detected() {
        let mut chk = UniprocChecker::default();
        let err = chk.store_performed(WordAddr(0), 1).unwrap_err();
        assert!(matches!(
            err,
            Violation::Uniproc(UniprocViolation::StorePerformedUnknown { .. })
        ));
        // Double-perform of a single committed store is also stray.
        chk.store_committed(WordAddr(0), 1);
        chk.store_performed(WordAddr(0), 1).unwrap();
        assert!(chk.store_performed(WordAddr(0), 1).is_err());
    }

    #[test]
    fn vc_miss_falls_through_to_cache() {
        let mut chk = UniprocChecker::default();
        assert_eq!(
            chk.replay_load(WordAddr(8), 5).unwrap(),
            ReplayLookup::NeedCache
        );
        chk.replay_load_from_cache(WordAddr(8), 5, 5).unwrap();
        let err = chk.replay_load_from_cache(WordAddr(8), 5, 6).unwrap_err();
        assert!(matches!(
            err,
            Violation::Uniproc(UniprocViolation::LoadMismatch { .. })
        ));
        assert_eq!(chk.stats().replays, 1);
        assert_eq!(chk.stats().cache_reads, 1);
    }

    #[test]
    fn rmo_load_value_caching_serves_replay() {
        let mut chk = UniprocChecker::new(rmo_cfg());
        chk.load_executed(WordAddr(8), 11);
        assert_eq!(chk.replay_load(WordAddr(8), 11).unwrap(), ReplayLookup::VcHit);
        assert_eq!(chk.stats().vc_hits, 1);
    }

    #[test]
    fn rmo_load_values_updated_by_local_stores() {
        let mut chk = UniprocChecker::new(rmo_cfg());
        chk.load_executed(WordAddr(8), 11);
        chk.store_committed(WordAddr(8), 12);
        // Replay of a later load must see the local store's value.
        assert_eq!(chk.replay_load(WordAddr(8), 12).unwrap(), ReplayLookup::VcHit);
        chk.store_performed(WordAddr(8), 12).unwrap();
        // After the drain the value is retained as a load-value entry.
        assert_eq!(chk.replay_load(WordAddr(8), 12).unwrap(), ReplayLookup::VcHit);
    }

    #[test]
    fn load_value_capacity_evicts_but_never_store_entries() {
        let mut chk = UniprocChecker::new(rmo_cfg());
        chk.store_committed(WordAddr(1), 100);
        for i in 0..10u64 {
            chk.load_executed(WordAddr(100 + i), i);
        }
        // Store entry survives the churn.
        assert_eq!(chk.replay_load(WordAddr(1), 100).unwrap(), ReplayLookup::VcHit);
        // Early load entries were evicted.
        assert_eq!(
            chk.replay_load(WordAddr(100), 0).unwrap(),
            ReplayLookup::NeedCache
        );
    }

    #[test]
    fn obs_records_vc_lifecycle_and_replay_outcomes() {
        let mut chk = UniprocChecker::default();
        chk.enable_obs(16);
        chk.store_committed(WordAddr(8), 1);
        assert_eq!(chk.replay_load(WordAddr(8), 1).unwrap(), ReplayLookup::VcHit);
        chk.store_performed(WordAddr(8), 1).unwrap();
        assert_eq!(
            chk.replay_load(WordAddr(8), 1).unwrap(),
            ReplayLookup::NeedCache
        );
        let m = chk.obs().unwrap().metrics();
        assert_eq!(m.vc_allocs, 1);
        assert_eq!(m.vc_deallocs, 1);
        assert_eq!(m.replay_vc_hits, 1);
        assert_eq!(m.replay_cache_reads, 1);
        assert_eq!(m.events, 4);
    }

    #[test]
    fn store_entry_count_tracks_pins() {
        let mut chk = UniprocChecker::new(rmo_cfg());
        chk.load_executed(WordAddr(8), 1);
        assert_eq!(chk.store_entries(), 0);
        chk.store_committed(WordAddr(8), 2);
        assert_eq!(chk.store_entries(), 1, "load entry upgraded to store entry");
        chk.store_committed(WordAddr(16), 3);
        assert_eq!(chk.store_entries(), 2);
        chk.store_performed(WordAddr(16), 3).unwrap();
        assert_eq!(chk.store_entries(), 1);
    }
}
