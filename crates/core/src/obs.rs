//! # Checker observability: structured events, metrics, and forensics
//!
//! The paper's evaluation (§6) hinges on *when* and *where* each checker
//! fires, yet a [`Violation`](crate::Violation) alone carries only the
//! final verdict. This module adds a zero-cost-when-disabled event layer:
//!
//! * [`CheckerEvent`] — the taxonomy of checker-internal events (VC
//!   traffic, replay outcomes, `max{OP}` updates, membar checks, epoch
//!   lifecycle, Inform-Epoch queueing),
//! * [`EventSink`] / [`ObsRing`] — a bounded ring buffer of
//!   cycle-stamped events plus monotonically growing [`ObsMetrics`]
//!   counters, and
//! * [`ViolationReport`] — a forensic snapshot of the last ring-buffer
//!   events taken when the first violation of a run is reported, so
//!   fault-injection experiments can attribute a detection to a concrete
//!   event chain.
//!
//! Every checker owns an `Option<ObsRing>` that defaults to `None`; the
//! disabled path is a single branch per recorded event, so the hot loops
//! are unchanged unless observability is explicitly enabled.

use crate::violation::Violation;
use dvmc_types::{BlockAddr, Cycle, NodeId, SeqNum, Ts16, WordAddr};
use std::collections::VecDeque;
use std::fmt;

/// A structured event emitted by one of the three checkers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckerEvent {
    /// The Verification Cache allocated an entry for a word.
    VcAlloc {
        /// The word the entry covers.
        addr: WordAddr,
    },
    /// The Verification Cache freed a word's entry (last pending store
    /// drained, or a load-value entry was evicted).
    VcDealloc {
        /// The word the entry covered.
        addr: WordAddr,
    },
    /// A commit-time load replay was satisfied by the VC.
    ReplayVcHit {
        /// The replayed word.
        addr: WordAddr,
    },
    /// A commit-time load replay missed the VC and read the cache.
    ReplayCacheRead {
        /// The replayed word.
        addr: WordAddr,
    },
    /// A `max{OP}` counter register advanced to a new sequence number.
    MaxOpUpdate {
        /// The performing operation that advanced the counter.
        seq: SeqNum,
    },
    /// A membar performed and ran the lost-operation check.
    MembarCheck {
        /// The membar's sequence number.
        seq: SeqNum,
    },
    /// A cache epoch opened in the CET.
    EpochOpen {
        /// The block the epoch covers.
        addr: BlockAddr,
        /// Epoch start, in logical time.
        at: Ts16,
    },
    /// A cache epoch closed in the CET (an Inform-Epoch will be sent).
    EpochClose {
        /// The block the epoch covered.
        addr: BlockAddr,
        /// Epoch end, in logical time.
        at: Ts16,
    },
    /// The CET scrub FIFO forced a long-running epoch to report open
    /// (§4.3 timestamp-wraparound handling).
    EpochScrub {
        /// The long-running epoch's block.
        addr: BlockAddr,
    },
    /// The MET scrub clamped stale end-times up to its quarter-window
    /// horizon.
    MetScrub {
        /// Logical time of the scrub pass.
        at: Ts16,
    },
    /// An Inform-Epoch message entered a home's sorting queue.
    InformEnqueue {
        /// The block the message reports on.
        addr: BlockAddr,
        /// Queue occupancy after the enqueue.
        queued: u32,
    },
    /// An Inform-Epoch arrived out of start-time order (the sorter exists
    /// for exactly this case).
    InformReorder {
        /// The out-of-order message's block.
        addr: BlockAddr,
    },
    /// The home checked an epoch message against the MET, including its
    /// CRC-16 data-propagation hashes.
    CrcCheck {
        /// The checked block.
        addr: BlockAddr,
    },
    /// Backward error recovery began a rollback to a validated checkpoint
    /// (recorded by the recovery coordinator, attributed to node 0 — BER
    /// coordination is rooted there).
    RecoveryStarted {
        /// Rollback attempt number for this run (1-based).
        attempt: u32,
        /// Creation cycle of the checkpoint being restored.
        checkpoint: Cycle,
    },
    /// A rolled-back run replayed to completion with no recurrence.
    RecoveryCompleted {
        /// Rollbacks it took.
        attempt: u32,
    },
    /// A retry escalation: the error recurred after rollback (persistent
    /// fault), so the checkpoint interval is widened — or, on the final
    /// escalation, the run is declared unrecoverable.
    RecoveryEscalated {
        /// The attempt that escalated.
        attempt: u32,
    },
}

impl CheckerEvent {
    /// A stable short name for rendering and serialization.
    pub fn name(&self) -> &'static str {
        match self {
            CheckerEvent::VcAlloc { .. } => "vc-alloc",
            CheckerEvent::VcDealloc { .. } => "vc-dealloc",
            CheckerEvent::ReplayVcHit { .. } => "replay-vc-hit",
            CheckerEvent::ReplayCacheRead { .. } => "replay-cache-read",
            CheckerEvent::MaxOpUpdate { .. } => "max-op-update",
            CheckerEvent::MembarCheck { .. } => "membar-check",
            CheckerEvent::EpochOpen { .. } => "epoch-open",
            CheckerEvent::EpochClose { .. } => "epoch-close",
            CheckerEvent::EpochScrub { .. } => "epoch-scrub",
            CheckerEvent::MetScrub { .. } => "met-scrub",
            CheckerEvent::InformEnqueue { .. } => "inform-enqueue",
            CheckerEvent::InformReorder { .. } => "inform-reorder",
            CheckerEvent::CrcCheck { .. } => "crc-check",
            CheckerEvent::RecoveryStarted { .. } => "recovery-started",
            CheckerEvent::RecoveryCompleted { .. } => "recovery-completed",
            CheckerEvent::RecoveryEscalated { .. } => "recovery-escalated",
        }
    }
}

impl fmt::Display for CheckerEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())?;
        match self {
            CheckerEvent::VcAlloc { addr }
            | CheckerEvent::VcDealloc { addr }
            | CheckerEvent::ReplayVcHit { addr }
            | CheckerEvent::ReplayCacheRead { addr } => write!(f, "({addr})"),
            CheckerEvent::MaxOpUpdate { seq } | CheckerEvent::MembarCheck { seq } => {
                write!(f, "({seq})")
            }
            CheckerEvent::EpochOpen { addr, at } | CheckerEvent::EpochClose { addr, at } => {
                write!(f, "({addr}@{at})")
            }
            CheckerEvent::EpochScrub { addr }
            | CheckerEvent::InformReorder { addr }
            | CheckerEvent::CrcCheck { addr } => write!(f, "({addr})"),
            CheckerEvent::MetScrub { at } => write!(f, "({at})"),
            CheckerEvent::InformEnqueue { addr, queued } => write!(f, "({addr},q={queued})"),
            CheckerEvent::RecoveryStarted { attempt, checkpoint } => {
                write!(f, "(a{attempt}@{checkpoint})")
            }
            CheckerEvent::RecoveryCompleted { attempt }
            | CheckerEvent::RecoveryEscalated { attempt } => write!(f, "(a{attempt})"),
        }
    }
}

/// An event stamped with the physical cycle it was recorded at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimedEvent {
    /// Recording cycle.
    pub cycle: Cycle,
    /// The event.
    pub event: CheckerEvent,
}

impl fmt::Display for TimedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.cycle, self.event)
    }
}

/// Monotonic per-checker counters, cheap enough to keep exact while the
/// ring buffer itself only retains the recent past.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ObsMetrics {
    /// Events recorded (including any the bounded ring has since dropped).
    pub events: u64,
    /// VC entries allocated.
    pub vc_allocs: u64,
    /// VC entries freed.
    pub vc_deallocs: u64,
    /// Load replays satisfied by the VC.
    pub replay_vc_hits: u64,
    /// Load replays that missed the VC and read the cache.
    pub replay_cache_reads: u64,
    /// `max{OP}` counter advances.
    pub max_op_updates: u64,
    /// Lost-operation checks run at membars.
    pub membar_checks: u64,
    /// Cache epochs opened.
    pub epoch_opens: u64,
    /// Cache epochs closed.
    pub epoch_closes: u64,
    /// Long-running epochs forced open by the CET scrub FIFO, plus MET
    /// scrub passes.
    pub scrubs: u64,
    /// Inform-Epoch messages enqueued at homes.
    pub informs_enqueued: u64,
    /// Inform-Epoch messages that arrived out of start-time order.
    pub informs_reordered: u64,
    /// Epoch messages checked against the MET (each carries CRC-16
    /// hashes).
    pub crc_checks: u64,
    /// High-water mark of the home's sorting-queue occupancy.
    pub sorter_occupancy_hwm: u64,
    /// Rollbacks started by backward error recovery.
    pub recoveries_started: u64,
    /// Rollback-and-replay sequences that completed cleanly.
    pub recoveries_completed: u64,
    /// Retry escalations (recurring error after rollback).
    pub recovery_escalations: u64,
}

impl ObsMetrics {
    /// Accumulates `other` into `self` (counters add, high-water marks
    /// take the max).
    pub fn merge(&mut self, other: &ObsMetrics) {
        self.events += other.events;
        self.vc_allocs += other.vc_allocs;
        self.vc_deallocs += other.vc_deallocs;
        self.replay_vc_hits += other.replay_vc_hits;
        self.replay_cache_reads += other.replay_cache_reads;
        self.max_op_updates += other.max_op_updates;
        self.membar_checks += other.membar_checks;
        self.epoch_opens += other.epoch_opens;
        self.epoch_closes += other.epoch_closes;
        self.scrubs += other.scrubs;
        self.informs_enqueued += other.informs_enqueued;
        self.informs_reordered += other.informs_reordered;
        self.crc_checks += other.crc_checks;
        self.sorter_occupancy_hwm = self.sorter_occupancy_hwm.max(other.sorter_occupancy_hwm);
        self.recoveries_started += other.recoveries_started;
        self.recoveries_completed += other.recoveries_completed;
        self.recovery_escalations += other.recovery_escalations;
    }
}

/// Turns cumulative [`ObsMetrics`] into per-window deltas for streaming
/// snapshots (service mode emits one every window).
///
/// Counters live inside components that backward error recovery rolls
/// back, so a window spanning a rollback can observe a *smaller*
/// cumulative value than the last window did. Deltas therefore saturate
/// at zero: a rollback window under-reports the replayed work rather
/// than panicking or going negative. High-water marks pass through
/// unchanged (they are instantaneous, not cumulative).
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsWindow {
    last: ObsMetrics,
}

impl MetricsWindow {
    /// The counters accrued since the previous call (saturating across
    /// rollbacks), given the current cumulative metrics.
    pub fn delta(&mut self, current: &ObsMetrics) -> ObsMetrics {
        let sub = |a: u64, b: u64| a.saturating_sub(b);
        let d = ObsMetrics {
            events: sub(current.events, self.last.events),
            vc_allocs: sub(current.vc_allocs, self.last.vc_allocs),
            vc_deallocs: sub(current.vc_deallocs, self.last.vc_deallocs),
            replay_vc_hits: sub(current.replay_vc_hits, self.last.replay_vc_hits),
            replay_cache_reads: sub(current.replay_cache_reads, self.last.replay_cache_reads),
            max_op_updates: sub(current.max_op_updates, self.last.max_op_updates),
            membar_checks: sub(current.membar_checks, self.last.membar_checks),
            epoch_opens: sub(current.epoch_opens, self.last.epoch_opens),
            epoch_closes: sub(current.epoch_closes, self.last.epoch_closes),
            scrubs: sub(current.scrubs, self.last.scrubs),
            informs_enqueued: sub(current.informs_enqueued, self.last.informs_enqueued),
            informs_reordered: sub(current.informs_reordered, self.last.informs_reordered),
            crc_checks: sub(current.crc_checks, self.last.crc_checks),
            sorter_occupancy_hwm: current.sorter_occupancy_hwm,
            recoveries_started: sub(current.recoveries_started, self.last.recoveries_started),
            recoveries_completed: sub(current.recoveries_completed, self.last.recoveries_completed),
            recovery_escalations: sub(current.recovery_escalations, self.last.recovery_escalations),
        };
        self.last = *current;
        d
    }
}

/// A consumer of checker events.
///
/// The shipped implementation is [`ObsRing`]; the trait exists so traces
/// can be redirected (e.g. straight to a file in a debugging build)
/// without touching the checkers.
pub trait EventSink {
    /// Records one event at the sink's current cycle.
    fn record(&mut self, event: CheckerEvent);
}

/// Default ring-buffer capacity: deep enough to hold the event chain
/// between a fault's first architectural consequence and its detection for
/// every checker, small enough to be free to keep per node.
pub const DEFAULT_RING_CAPACITY: usize = 64;

/// A bounded ring buffer of cycle-stamped [`CheckerEvent`]s plus exact
/// [`ObsMetrics`] counters.
///
/// The owner stamps the ring with the current cycle once per tick
/// ([`set_now`](Self::set_now)); `record` then timestamps events without
/// the checkers ever needing to know about physical time.
#[derive(Clone, Debug)]
pub struct ObsRing {
    capacity: usize,
    now: Cycle,
    buf: VecDeque<TimedEvent>,
    metrics: ObsMetrics,
}

impl ObsRing {
    /// Creates a ring retaining the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        ObsRing {
            capacity: capacity.max(1),
            now: 0,
            buf: VecDeque::with_capacity(capacity.max(1)),
            metrics: ObsMetrics::default(),
        }
    }

    /// Sets the cycle future events are stamped with.
    #[inline]
    pub fn set_now(&mut self, now: Cycle) {
        self.now = now;
    }

    /// The retained (most recent) events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }

    /// The exact counters.
    pub fn metrics(&self) -> ObsMetrics {
        self.metrics
    }

    /// Mutable counter access, for metrics without a ring event (e.g. the
    /// sorter occupancy high-water mark).
    pub fn metrics_mut(&mut self) -> &mut ObsMetrics {
        &mut self.metrics
    }

    /// Snapshots up to the last `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TimedEvent> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip).copied().collect()
    }
}

impl EventSink for ObsRing {
    fn record(&mut self, event: CheckerEvent) {
        let m = &mut self.metrics;
        m.events += 1;
        match event {
            CheckerEvent::VcAlloc { .. } => m.vc_allocs += 1,
            CheckerEvent::VcDealloc { .. } => m.vc_deallocs += 1,
            CheckerEvent::ReplayVcHit { .. } => m.replay_vc_hits += 1,
            CheckerEvent::ReplayCacheRead { .. } => m.replay_cache_reads += 1,
            CheckerEvent::MaxOpUpdate { .. } => m.max_op_updates += 1,
            CheckerEvent::MembarCheck { .. } => m.membar_checks += 1,
            CheckerEvent::EpochOpen { .. } => m.epoch_opens += 1,
            CheckerEvent::EpochClose { .. } => m.epoch_closes += 1,
            CheckerEvent::EpochScrub { .. } | CheckerEvent::MetScrub { .. } => m.scrubs += 1,
            CheckerEvent::InformEnqueue { queued, .. } => {
                m.informs_enqueued += 1;
                m.sorter_occupancy_hwm = m.sorter_occupancy_hwm.max(u64::from(queued));
            }
            CheckerEvent::InformReorder { .. } => m.informs_reordered += 1,
            CheckerEvent::CrcCheck { .. } => m.crc_checks += 1,
            CheckerEvent::RecoveryStarted { .. } => m.recoveries_started += 1,
            CheckerEvent::RecoveryCompleted { .. } => m.recoveries_completed += 1,
            CheckerEvent::RecoveryEscalated { .. } => m.recovery_escalations += 1,
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(TimedEvent {
            cycle: self.now,
            event,
        });
    }
}

/// Forensic context for a detection: the violation, the recent checker
/// event chain around it, and where/when it was raised.
#[derive(Clone, Debug)]
pub struct ViolationReport {
    /// The violation, when the detection came from a checker (a hang
    /// detected by the watchdog has no violation but still gets a trace).
    pub violation: Option<Violation>,
    /// The last ring-buffer events of the reporting node, oldest first,
    /// merged across its checkers and sorted by cycle.
    pub trace: Vec<TimedEvent>,
    /// The cycle the detection was reported at.
    pub cycle: Cycle,
    /// The node the detection is attributed to.
    pub node: NodeId,
}

impl ViolationReport {
    /// The trace rendered as a compact event chain
    /// (`cycle:name(args) -> ...`), for tables and logs.
    pub fn chain(&self) -> String {
        let parts: Vec<String> = self.trace.iter().map(ToString::to_string).collect();
        parts.join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counters_are_exact() {
        let mut ring = ObsRing::new(4);
        for i in 0..10u64 {
            ring.set_now(i);
            ring.record(CheckerEvent::ReplayVcHit { addr: WordAddr(i) });
        }
        assert_eq!(ring.events().count(), 4, "ring retains only the capacity");
        assert_eq!(ring.metrics().replay_vc_hits, 10, "counters stay exact");
        assert_eq!(ring.metrics().events, 10);
        let tail = ring.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[1].cycle, 9, "newest event last");
        assert_eq!(tail[0].cycle, 8);
    }

    #[test]
    fn enqueue_tracks_sorter_high_water() {
        let mut ring = ObsRing::new(8);
        for q in [1u32, 3, 2] {
            ring.record(CheckerEvent::InformEnqueue {
                addr: BlockAddr(1),
                queued: q,
            });
        }
        assert_eq!(ring.metrics().sorter_occupancy_hwm, 3);
        assert_eq!(ring.metrics().informs_enqueued, 3);
    }

    #[test]
    fn metrics_merge_adds_counts_and_maxes_hwm() {
        let mut a = ObsMetrics {
            events: 2,
            crc_checks: 1,
            sorter_occupancy_hwm: 5,
            ..ObsMetrics::default()
        };
        let b = ObsMetrics {
            events: 3,
            crc_checks: 4,
            sorter_occupancy_hwm: 2,
            ..ObsMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.events, 5);
        assert_eq!(a.crc_checks, 5);
        assert_eq!(a.sorter_occupancy_hwm, 5);
    }

    #[test]
    fn metrics_window_deltas_saturate_across_rollbacks() {
        let mut w = MetricsWindow::default();
        let first = ObsMetrics {
            events: 10,
            crc_checks: 7,
            sorter_occupancy_hwm: 4,
            ..ObsMetrics::default()
        };
        let d1 = w.delta(&first);
        assert_eq!(d1.events, 10);
        assert_eq!(d1.crc_checks, 7);
        // A rollback rewound the counters below the previous watermark:
        // the delta saturates at zero instead of underflowing.
        let rewound = ObsMetrics {
            events: 6,
            crc_checks: 9,
            sorter_occupancy_hwm: 2,
            ..ObsMetrics::default()
        };
        let d2 = w.delta(&rewound);
        assert_eq!(d2.events, 0);
        assert_eq!(d2.crc_checks, 2);
        assert_eq!(d2.sorter_occupancy_hwm, 2, "hwm passes through");
        let d3 = w.delta(&ObsMetrics {
            events: 8,
            ..rewound
        });
        assert_eq!(d3.events, 2, "counting resumes from the rewound base");
    }

    #[test]
    fn recovery_events_count_and_render() {
        let mut ring = ObsRing::new(8);
        ring.set_now(500);
        ring.record(CheckerEvent::RecoveryStarted {
            attempt: 1,
            checkpoint: 400,
        });
        ring.record(CheckerEvent::RecoveryEscalated { attempt: 2 });
        ring.record(CheckerEvent::RecoveryCompleted { attempt: 2 });
        let m = ring.metrics();
        assert_eq!(m.recoveries_started, 1);
        assert_eq!(m.recovery_escalations, 1);
        assert_eq!(m.recoveries_completed, 1);
        assert_eq!(
            CheckerEvent::RecoveryStarted {
                attempt: 1,
                checkpoint: 400
            }
            .to_string(),
            "recovery-started(a1@400)"
        );
        let mut merged = ObsMetrics::default();
        merged.merge(&m);
        assert_eq!(merged.recoveries_started, 1);
        assert_eq!(merged.recoveries_completed, 1);
    }

    #[test]
    fn event_names_and_chain_rendering() {
        let ev = CheckerEvent::EpochOpen {
            addr: BlockAddr(3),
            at: Ts16(7),
        };
        assert_eq!(ev.name(), "epoch-open");
        assert_eq!(ev.to_string(), "epoch-open(b0x3@t7)");
        let report = ViolationReport {
            violation: None,
            trace: vec![
                TimedEvent { cycle: 1, event: ev },
                TimedEvent {
                    cycle: 2,
                    event: CheckerEvent::CrcCheck { addr: BlockAddr(3) },
                },
            ],
            cycle: 2,
            node: NodeId(0),
        };
        assert_eq!(report.chain(), "1:epoch-open(b0x3@t7) -> 2:crc-check(b0x3)");
    }
}
