//! The Allowable Reordering checker (§4.2).
//!
//! DVMC verifies *Allowable Reordering* by checking all reorderings between
//! program order and perform order against the consistency model's ordering
//! table. Every instruction is labelled with a sequence number at decode;
//! the checker maintains a `max{OP}` counter register per operation type
//! holding the greatest sequence number of that type that has performed.
//! When an operation X of type `OPx` performs, the checker verifies
//! `seqX > max{OPy}` for every type `OPy` with an ordering constraint
//! `OPx < OPy`, then updates `max{OPx}`.
//!
//! The checker also detects **lost operations**: when a membar performs, any
//! committed-but-unperformed operation older than the membar of a
//! constrained type must have been lost in the memory system. The pipeline
//! injects artificial full-mask membars periodically (about one per 100k
//! cycles) to bound detection latency; injected membars flow through
//! [`ReorderChecker::op_committed`]/[`ReorderChecker::op_performed`] exactly
//! like program membars.
//!
//! The SPARC v9 extensions of §4.2 are implemented: per-operation dynamic
//! consistency models (runtime model switching; 32-bit code regions run
//! TSO), and membar ordering requirements computed from the 4-bit mask.

use crate::obs::{CheckerEvent, EventSink, ObsRing};
use crate::violation::{LostOpViolation, ReorderViolation, Violation};
use dvmc_consistency::{Model, OpClass, OpKind, Requirement};
use std::collections::BTreeSet;

const N_KINDS: usize = 3;
const N_MODELS: usize = 5;
const N_MASK_BITS: usize = 4;

fn model_index(m: Model) -> usize {
    match m {
        Model::Sc => 0,
        Model::Tso => 1,
        Model::Pso => 2,
        Model::Rmo => 3,
        Model::Pc => 4,
    }
}

const MODELS: [Model; N_MODELS] = [Model::Sc, Model::Tso, Model::Pso, Model::Rmo, Model::Pc];

use dvmc_types::SeqNum;

/// Per-processor Allowable Reordering checker.
///
/// Drive it with two event streams:
///
/// * [`op_committed`](Self::op_committed) when an operation commits (in
///   program order), and
/// * [`op_performed`](Self::op_performed) when it performs (in any order).
///
/// Loads under models without load ordering (RMO) perform at execution,
/// which may precede commit; the checker accepts either event order for a
/// given operation.
///
/// # Examples
///
/// ```rust
/// use dvmc_core::ReorderChecker;
/// use dvmc_consistency::{Model, OpClass};
/// use dvmc_types::SeqNum;
///
/// let mut chk = ReorderChecker::new();
/// chk.op_committed(SeqNum(0), OpClass::Load, Model::Tso);
/// chk.op_committed(SeqNum(1), OpClass::Store, Model::Tso);
/// chk.op_performed(SeqNum(0), OpClass::Load, Model::Tso).unwrap();
/// // TSO relaxes Store->Load, so the store may perform after the load.
/// chk.op_performed(SeqNum(1), OpClass::Store, Model::Tso).unwrap();
/// ```
#[derive(Clone, Debug, Default)]
pub struct ReorderChecker {
    /// max{OP} counters, per counter class and per decode-time model.
    max_perf: [[Option<SeqNum>; N_MODELS]; N_KINDS],
    /// Greatest performed membar sequence number carrying each mask bit.
    max_membar_bit: [Option<SeqNum>; N_MASK_BITS],
    /// Committed-but-unperformed operations, per counter class.
    outstanding: [BTreeSet<SeqNum>; N_KINDS],
    /// Performed-before-commit operations (RMO loads), per counter class.
    early_performed: [BTreeSet<SeqNum>; N_KINDS],
    checks: u64,
    obs: Option<ObsRing>,
}

impl ReorderChecker {
    /// Creates a checker with empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an event ring retaining `capacity` events. Observability
    /// is off (and free) until this is called.
    pub fn enable_obs(&mut self, capacity: usize) {
        self.obs = Some(ObsRing::new(capacity));
    }

    /// The event ring, when observability is enabled.
    pub fn obs(&self) -> Option<&ObsRing> {
        self.obs.as_ref()
    }

    /// Mutable ring access (the owner stamps the current cycle each tick).
    pub fn obs_mut(&mut self) -> Option<&mut ObsRing> {
        self.obs.as_mut()
    }

    /// Records that the operation `seq` of class `class`, decoded under
    /// `model`, committed. Commits must be reported in program order.
    pub fn op_committed(&mut self, seq: SeqNum, class: OpClass, _model: Model) {
        for &kind in class.kinds() {
            let k = kind.index();
            if !self.early_performed[k].remove(&seq) {
                self.outstanding[k].insert(seq);
            }
        }
    }

    /// Records that operation `seq` performed and checks it against the
    /// ordering table.
    ///
    /// # Errors
    ///
    /// Returns [`Violation::Reorder`] if a younger constrained operation
    /// already performed, or [`Violation::LostOp`] if `class` is a barrier
    /// and a constrained older operation committed but never performed.
    pub fn op_performed(
        &mut self,
        seq: SeqNum,
        class: OpClass,
        model: Model,
    ) -> Result<(), Violation> {
        self.checks += 1;
        self.check_ordering(seq, class, model)?;
        if class.is_barrier() {
            self.check_lost_ops(seq, class, model)?;
            if let Some(o) = self.obs.as_mut() {
                o.record(CheckerEvent::MembarCheck { seq });
            }
        }
        // All checks passed: update the max counters and outstanding sets.
        let mut advanced = false;
        for &kind in class.kinds() {
            let k = kind.index();
            if !self.outstanding[k].remove(&seq) {
                self.early_performed[k].insert(seq);
            }
            let slot = &mut self.max_perf[k][model_index(model)];
            if slot.is_none_or(|m| m < seq) {
                *slot = Some(seq);
                advanced = true;
            }
        }
        if advanced {
            if let Some(o) = self.obs.as_mut() {
                o.record(CheckerEvent::MaxOpUpdate { seq });
            }
        }
        let mask = class.membar_mask();
        for bit in 0..N_MASK_BITS {
            if mask.bits() & (1 << bit) != 0 {
                let slot = &mut self.max_membar_bit[bit];
                if slot.is_none_or(|m| m < seq) {
                    *slot = Some(seq);
                }
            }
        }
        Ok(())
    }

    /// The number of committed-but-unperformed operations of `kind`.
    pub fn outstanding(&self, kind: OpKind) -> usize {
        self.outstanding[kind.index()].len()
    }

    /// Total perform-time checks executed (for the cost/throughput benches).
    pub fn checks_performed(&self) -> u64 {
        self.checks
    }

    /// `seqX > max{OPy}` for all `OPy` with a constraint `OPx < OPy`.
    fn check_ordering(&self, seq: SeqNum, class: OpClass, model: Model) -> Result<(), Violation> {
        // Plain columns: Load and Store, split by the decode model of the
        // already-performed younger op (the constraint is the union of both
        // models' tables; see `dvmc_consistency::requires_between`).
        for col in [OpKind::Load, OpKind::Store] {
            for other in MODELS {
                let max = match self.max_perf[col.index()][model_index(other)] {
                    Some(m) if m > seq => m,
                    _ => continue,
                };
                let required = requires_class_before_kind(model, class, col)
                    || requires_class_before_kind(other, class, col);
                if required {
                    return Err(ReorderViolation {
                        seq,
                        class,
                        conflicting_kind: col,
                        max_performed: max,
                    }
                    .into());
                }
            }
        }
        // Membar column: the constraint depends on the younger membar's
        // mask, tracked per mask bit. The membar column masks are shared by
        // all non-SC tables; SC orders everything, so any younger membar
        // conflicts.
        let col_mask_bits: u8 = if model == Model::Sc {
            0b1111
        } else {
            let mut bits = 0u8;
            for &kind in class.kinds() {
                bits |= match kind {
                    OpKind::Load => 0b0011,   // #LL | #LS hold earlier loads
                    OpKind::Store => 0b1100,  // #SL | #SS hold earlier stores
                    OpKind::Membar => 0b1111, // membars are mutually ordered
                };
            }
            bits
        };
        for bit in 0..N_MASK_BITS {
            if col_mask_bits & (1 << bit) == 0 {
                continue;
            }
            if let Some(max) = self.max_membar_bit[bit] {
                if max > seq {
                    return Err(ReorderViolation {
                        seq,
                        class,
                        conflicting_kind: OpKind::Membar,
                        max_performed: max,
                    }
                    .into());
                }
            }
        }
        Ok(())
    }

    /// When a membar performs, all constrained older committed operations
    /// must already have performed.
    fn check_lost_ops(&self, seq: SeqNum, class: OpClass, model: Model) -> Result<(), Violation> {
        for row in [OpKind::Load, OpKind::Store] {
            let required = match model.table().entry(row, OpKind::Membar) {
                Requirement::Never => false,
                Requirement::Always => true,
                Requirement::MaskOfSecond(m) => class.membar_mask().intersects(m),
                Requirement::MaskOfFirst(_) => false,
            };
            if !required {
                continue;
            }
            if let Some(&lost) = self.outstanding[row.index()].first() {
                if lost < seq {
                    return Err(LostOpViolation {
                        membar_seq: seq,
                        kind: row,
                        lost_seq: lost,
                    }
                    .into());
                }
            }
        }
        Ok(())
    }
}

/// Does `first` (a concrete class) have an ordering constraint against a
/// *bare kind* column under `model`? Mask-of-second entries cannot fire
/// because a bare Load/Store column carries no mask.
fn requires_class_before_kind(model: Model, first: OpClass, col: OpKind) -> bool {
    let table = model.table();
    first.kinds().iter().any(|&row| match table.entry(row, col) {
        Requirement::Never => false,
        Requirement::Always => true,
        Requirement::MaskOfFirst(m) => first.membar_mask().intersects(m),
        Requirement::MaskOfSecond(_) => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvmc_consistency::MembarMask as M;

    fn commit_all(chk: &mut ReorderChecker, ops: &[(u64, OpClass)], model: Model) {
        for &(seq, class) in ops {
            chk.op_committed(SeqNum(seq), class, model);
        }
    }

    #[test]
    fn in_order_performs_pass_under_sc() {
        let mut chk = ReorderChecker::new();
        let ops = [
            (0, OpClass::Load),
            (1, OpClass::Store),
            (2, OpClass::Load),
            (3, OpClass::Atomic),
        ];
        commit_all(&mut chk, &ops, Model::Sc);
        for (seq, class) in ops {
            chk.op_performed(SeqNum(seq), class, Model::Sc).unwrap();
        }
    }

    #[test]
    fn sc_rejects_any_reordering() {
        let mut chk = ReorderChecker::new();
        commit_all(&mut chk, &[(0, OpClass::Store), (1, OpClass::Load)], Model::Sc);
        chk.op_performed(SeqNum(1), OpClass::Load, Model::Sc).unwrap();
        let err = chk
            .op_performed(SeqNum(0), OpClass::Store, Model::Sc)
            .unwrap_err();
        assert!(matches!(err, Violation::Reorder(_)), "{err}");
    }

    #[test]
    fn tso_allows_store_load_reordering() {
        let mut chk = ReorderChecker::new();
        commit_all(&mut chk, &[(0, OpClass::Store), (1, OpClass::Load)], Model::Tso);
        chk.op_performed(SeqNum(1), OpClass::Load, Model::Tso).unwrap();
        chk.op_performed(SeqNum(0), OpClass::Store, Model::Tso)
            .expect("TSO permits a load to perform before an older store");
    }

    #[test]
    fn tso_rejects_store_store_reordering() {
        let mut chk = ReorderChecker::new();
        commit_all(&mut chk, &[(0, OpClass::Store), (1, OpClass::Store)], Model::Tso);
        chk.op_performed(SeqNum(1), OpClass::Store, Model::Tso).unwrap();
        let err = chk
            .op_performed(SeqNum(0), OpClass::Store, Model::Tso)
            .unwrap_err();
        assert!(matches!(
            err,
            Violation::Reorder(ReorderViolation {
                conflicting_kind: OpKind::Store,
                ..
            })
        ));
    }

    #[test]
    fn tso_rejects_load_load_reordering() {
        let mut chk = ReorderChecker::new();
        commit_all(&mut chk, &[(0, OpClass::Load), (1, OpClass::Load)], Model::Tso);
        chk.op_performed(SeqNum(1), OpClass::Load, Model::Tso).unwrap();
        assert!(chk.op_performed(SeqNum(0), OpClass::Load, Model::Tso).is_err());
    }

    #[test]
    fn pso_allows_store_store_but_not_across_stbar() {
        let mut chk = ReorderChecker::new();
        commit_all(
            &mut chk,
            &[(0, OpClass::Store), (1, OpClass::Store)],
            Model::Pso,
        );
        chk.op_performed(SeqNum(1), OpClass::Store, Model::Pso).unwrap();
        chk.op_performed(SeqNum(0), OpClass::Store, Model::Pso)
            .expect("PSO permits store-store reordering");

        // Now: store(2), stbar(3). The stbar performing while the older
        // store is still outstanding is a lost-op violation: correct
        // hardware would have drained the store first.
        commit_all(&mut chk, &[(2, OpClass::Store), (3, OpClass::Stbar)], Model::Pso);
        let err = chk
            .op_performed(SeqNum(3), OpClass::Stbar, Model::Pso)
            .unwrap_err();
        assert!(
            matches!(err, Violation::LostOp(LostOpViolation { kind: OpKind::Store, .. })),
            "stbar must detect the outstanding older store: {err}"
        );
    }

    #[test]
    fn pso_correct_stbar_sequence_passes() {
        let mut chk = ReorderChecker::new();
        commit_all(
            &mut chk,
            &[(0, OpClass::Store), (1, OpClass::Stbar), (2, OpClass::Store)],
            Model::Pso,
        );
        chk.op_performed(SeqNum(0), OpClass::Store, Model::Pso).unwrap();
        chk.op_performed(SeqNum(1), OpClass::Stbar, Model::Pso).unwrap();
        chk.op_performed(SeqNum(2), OpClass::Store, Model::Pso).unwrap();
    }

    #[test]
    fn early_performing_op_caught_by_membar_bit_counter() {
        // RMO loads perform at execution, possibly before they commit, so
        // the lost-op check at the membar cannot see them. The per-bit
        // membar counters catch a load that performs after a younger #LL
        // membar performed.
        let mut chk = ReorderChecker::new();
        chk.op_performed(SeqNum(1), OpClass::Membar(M::LL), Model::Rmo)
            .unwrap();
        let err = chk
            .op_performed(SeqNum(0), OpClass::Load, Model::Rmo)
            .unwrap_err();
        assert!(
            matches!(
                err,
                Violation::Reorder(ReorderViolation {
                    conflicting_kind: OpKind::Membar,
                    ..
                })
            ),
            "{err}"
        );
    }

    #[test]
    fn stbar_performing_before_older_store_is_reorder_violation() {
        let mut chk = ReorderChecker::new();
        commit_all(&mut chk, &[(0, OpClass::Stbar), (1, OpClass::Store)], Model::Pso);
        chk.op_performed(SeqNum(1), OpClass::Store, Model::Pso).unwrap();
        // The stbar performs after a younger store it should have held back.
        let err = chk
            .op_performed(SeqNum(0), OpClass::Stbar, Model::Pso)
            .unwrap_err();
        assert!(matches!(err, Violation::Reorder(_)), "{err}");
    }

    #[test]
    fn rmo_allows_arbitrary_load_store_reordering() {
        let mut chk = ReorderChecker::new();
        let ops = [
            (0, OpClass::Load),
            (1, OpClass::Store),
            (2, OpClass::Load),
            (3, OpClass::Store),
        ];
        commit_all(&mut chk, &ops, Model::Rmo);
        for seq in [3u64, 2, 1, 0] {
            let class = ops[seq as usize].1;
            chk.op_performed(SeqNum(seq), class, Model::Rmo)
                .expect("RMO places no implicit ordering on plain accesses");
        }
    }

    #[test]
    fn rmo_membar_mask_enforced() {
        // load(0); membar #LL(1); load(2) — load 2 performing before the
        // membar violates the #LL constraint when the membar performs after.
        let mut chk = ReorderChecker::new();
        commit_all(
            &mut chk,
            &[
                (0, OpClass::Load),
                (1, OpClass::Membar(M::LL)),
                (2, OpClass::Load),
            ],
            Model::Rmo,
        );
        chk.op_performed(SeqNum(0), OpClass::Load, Model::Rmo).unwrap();
        chk.op_performed(SeqNum(2), OpClass::Load, Model::Rmo).unwrap();
        let err = chk
            .op_performed(SeqNum(1), OpClass::Membar(M::LL), Model::Rmo)
            .unwrap_err();
        assert!(matches!(err, Violation::Reorder(_)));
    }

    #[test]
    fn rmo_load_after_membar_checked_via_bit_counters() {
        // store(0); membar #SS(1); store(2): if store 0 performs after the
        // membar performed, the membar bit counter catches it.
        let mut chk = ReorderChecker::new();
        commit_all(
            &mut chk,
            &[
                (0, OpClass::Store),
                (1, OpClass::Membar(M::SS)),
                (2, OpClass::Store),
            ],
            Model::Rmo,
        );
        // Hardware loses track: membar performs although store 0 is
        // outstanding -> lost-op check fires first.
        let err = chk
            .op_performed(SeqNum(1), OpClass::Membar(M::SS), Model::Rmo)
            .unwrap_err();
        assert!(matches!(err, Violation::LostOp(_)));
    }

    #[test]
    fn rmo_unrelated_membar_mask_ignores_stores() {
        let mut chk = ReorderChecker::new();
        commit_all(
            &mut chk,
            &[(0, OpClass::Store), (1, OpClass::Membar(M::LL))],
            Model::Rmo,
        );
        // #LoadLoad does not order stores: membar may perform while the
        // store is outstanding, and the store may perform after it.
        chk.op_performed(SeqNum(1), OpClass::Membar(M::LL), Model::Rmo)
            .unwrap();
        chk.op_performed(SeqNum(0), OpClass::Store, Model::Rmo)
            .unwrap();
    }

    #[test]
    fn atomic_checked_as_load_and_store() {
        // Under TSO, an atomic performing after a younger load performed is
        // a violation through its store half... and through its load half.
        let mut chk = ReorderChecker::new();
        commit_all(&mut chk, &[(0, OpClass::Atomic), (1, OpClass::Load)], Model::Tso);
        chk.op_performed(SeqNum(1), OpClass::Load, Model::Tso).unwrap();
        let err = chk
            .op_performed(SeqNum(0), OpClass::Atomic, Model::Tso)
            .unwrap_err();
        assert!(matches!(err, Violation::Reorder(_)));
    }

    #[test]
    fn injected_membar_detects_lost_store() {
        let mut chk = ReorderChecker::new();
        commit_all(&mut chk, &[(0, OpClass::Store)], Model::Tso);
        // The store is dropped by the (faulty) write buffer and never
        // performs. An injected full-mask membar commits later and performs.
        chk.op_committed(SeqNum(100), OpClass::Membar(M::ALL), Model::Tso);
        let err = chk
            .op_performed(SeqNum(100), OpClass::Membar(M::ALL), Model::Tso)
            .unwrap_err();
        assert!(
            matches!(
                err,
                Violation::LostOp(LostOpViolation {
                    lost_seq: SeqNum(0),
                    kind: OpKind::Store,
                    ..
                })
            ),
            "{err}"
        );
    }

    #[test]
    fn injected_membar_passes_when_nothing_outstanding() {
        let mut chk = ReorderChecker::new();
        commit_all(&mut chk, &[(0, OpClass::Store), (1, OpClass::Load)], Model::Tso);
        chk.op_performed(SeqNum(1), OpClass::Load, Model::Tso).unwrap();
        chk.op_performed(SeqNum(0), OpClass::Store, Model::Tso).unwrap();
        chk.op_committed(SeqNum(2), OpClass::Membar(M::ALL), Model::Tso);
        chk.op_performed(SeqNum(2), OpClass::Membar(M::ALL), Model::Tso)
            .unwrap();
        assert_eq!(chk.outstanding(OpKind::Store), 0);
    }

    #[test]
    fn perform_before_commit_is_accepted_for_rmo_loads() {
        let mut chk = ReorderChecker::new();
        // RMO load performs at execution, before commit.
        chk.op_performed(SeqNum(0), OpClass::Load, Model::Rmo).unwrap();
        chk.op_committed(SeqNum(0), OpClass::Load, Model::Rmo);
        assert_eq!(chk.outstanding(OpKind::Load), 0);
    }

    #[test]
    fn cross_model_region_enforced_conservatively() {
        // A store decoded in a 32-bit TSO region performs; a younger store
        // decoded under RMO performed first. TSO's table requires
        // Store->Store, so this is a violation even though RMO would allow
        // it.
        let mut chk = ReorderChecker::new();
        chk.op_committed(SeqNum(0), OpClass::Store, Model::Tso);
        chk.op_committed(SeqNum(1), OpClass::Store, Model::Rmo);
        chk.op_performed(SeqNum(1), OpClass::Store, Model::Rmo).unwrap();
        let err = chk
            .op_performed(SeqNum(0), OpClass::Store, Model::Tso)
            .unwrap_err();
        assert!(matches!(err, Violation::Reorder(_)));
    }

    #[test]
    fn obs_records_counter_updates_and_membar_checks() {
        let mut chk = ReorderChecker::new();
        chk.enable_obs(16);
        commit_all(
            &mut chk,
            &[(0, OpClass::Store), (1, OpClass::Membar(M::ALL))],
            Model::Tso,
        );
        chk.op_performed(SeqNum(0), OpClass::Store, Model::Tso).unwrap();
        chk.op_performed(SeqNum(1), OpClass::Membar(M::ALL), Model::Tso)
            .unwrap();
        let m = chk.obs().unwrap().metrics();
        assert_eq!(m.max_op_updates, 2, "store and membar both advanced a counter");
        assert_eq!(m.membar_checks, 1);
    }

    #[test]
    fn outstanding_counts_track_commit_and_perform() {
        let mut chk = ReorderChecker::new();
        commit_all(
            &mut chk,
            &[(0, OpClass::Store), (1, OpClass::Store), (2, OpClass::Load)],
            Model::Pso,
        );
        assert_eq!(chk.outstanding(OpKind::Store), 2);
        assert_eq!(chk.outstanding(OpKind::Load), 1);
        chk.op_performed(SeqNum(1), OpClass::Store, Model::Pso).unwrap();
        assert_eq!(chk.outstanding(OpKind::Store), 1);
        assert_eq!(chk.checks_performed(), 1);
    }
}
