//! Hardware-cost accounting for the DVMC checkers (§6.3).
//!
//! The paper sizes the checker storage structures from the cache
//! configuration: CET entries are 34 bits per cache line (≈70 KB per node
//! for the Table 6 caches), MET entries are 48 bits per line resident in
//! any cache (≈102 KB per memory controller). These functions reproduce
//! that arithmetic for the `exp_hw_cost` harness.

/// Bits per CET entry: 1 (epoch kind) + 16 (start time) + 16 (start data
/// hash) + 1 (DataReady).
pub const CET_BITS_PER_LINE: u32 = 1 + 16 + 16 + 1;

/// Bits per MET entry: 16 (latest RO end) + 16 (latest RW end) + 16 (RW
/// data hash). Open-epoch tracking shares storage with the end times via
/// the OpenEpoch bit (§4.3), so it adds no bits for systems where the
/// processor count does not exceed the timestamp width.
pub const MET_BITS_PER_LINE: u32 = 16 + 16 + 16;

/// A cache/memory configuration, in lines.
#[derive(Clone, Copy, Debug)]
pub struct CostConfig {
    /// Lines in one node's L1 data cache.
    pub l1_lines: u64,
    /// Lines in one node's L2 cache.
    pub l2_lines: u64,
    /// Number of nodes.
    pub nodes: u64,
    /// Verification cache size in bytes per node (32–256 B, §6.3).
    pub vc_bytes: u64,
}

impl CostConfig {
    /// The paper's Table 6 configuration: 64 KB L1, 1 MB L2, 64 B lines,
    /// 8 nodes.
    pub fn paper_default() -> Self {
        CostConfig {
            l1_lines: 64 * 1024 / 64,
            l2_lines: 1024 * 1024 / 64,
            nodes: 8,
            vc_bytes: 256,
        }
    }

    /// Cache lines per node covered by the CET (all cache levels).
    pub fn lines_per_node(&self) -> u64 {
        self.l1_lines + self.l2_lines
    }

    /// CET storage per node, in bytes.
    pub fn cet_bytes_per_node(&self) -> u64 {
        (self.lines_per_node() * CET_BITS_PER_LINE as u64).div_ceil(8)
    }

    /// MET storage per memory controller, in bytes. The MET holds entries
    /// for every block resident in *any* processor cache; with one memory
    /// controller per node and block interleaving, each controller is
    /// sized for the worst case of all nodes' lines homing to it divided
    /// evenly, i.e. `nodes * lines_per_node / nodes` = one node's worth of
    /// lines per controller times the node count spread — the paper sizes
    /// it for the full aggregate: `nodes * lines_per_node / nodes` lines.
    pub fn met_bytes_per_controller(&self) -> u64 {
        // Aggregate cache lines across nodes, interleaved over `nodes`
        // controllers.
        let lines = self.lines_per_node() * self.nodes / self.nodes.max(1);
        (lines * MET_BITS_PER_LINE as u64).div_ceil(8)
    }

    /// Total DVMC checker storage in the system, in bytes (CETs + METs +
    /// VCs); excludes the BER mechanism, which the paper treats as
    /// orthogonal.
    pub fn total_bytes(&self) -> u64 {
        self.nodes * (self.cet_bytes_per_node() + self.met_bytes_per_controller() + self.vc_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_sizes_match_paper() {
        assert_eq!(CET_BITS_PER_LINE, 34);
        assert_eq!(MET_BITS_PER_LINE, 48);
    }

    #[test]
    fn paper_configuration_reproduces_reported_costs() {
        let cfg = CostConfig::paper_default();
        // "Our CET entries are 34 bits, leading to a total CET size of
        // about 70 KB per node."
        let cet_kb = cfg.cet_bytes_per_node() as f64 / 1024.0;
        assert!((68.0..76.0).contains(&cet_kb), "CET = {cet_kb:.1} KB");
        // "The MET requires 102 KB per memory controller, with an entry
        // size of 48 bits."
        let met_kb = cfg.met_bytes_per_controller() as f64 / 1024.0;
        assert!((98.0..106.0).contains(&met_kb), "MET = {met_kb:.1} KB");
    }

    #[test]
    fn totals_scale_with_nodes() {
        let mut cfg = CostConfig::paper_default();
        let t8 = cfg.total_bytes();
        cfg.nodes = 4;
        let t4 = cfg.total_bytes();
        assert_eq!(t8, 2 * t4);
    }
}
