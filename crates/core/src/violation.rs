//! Violation reports raised by the three DVMC checkers.
//!
//! A violation means the memory system deviated from one of the three
//! invariants of §3; in a deployed system it would trigger backward error
//! recovery. Violations carry enough context to identify the failing
//! component in the fault-injection experiments (§6.1).

use dvmc_consistency::{OpClass, OpKind};
use dvmc_types::{BlockAddr, NodeId, SeqNum, Ts16, WordAddr};
use std::error::Error;
use std::fmt;

/// Any invariant violation detected by a DVMC checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// An illegal reordering between program order and perform order
    /// (Allowable Reordering invariant, §4.2).
    Reorder(ReorderViolation),
    /// A committed operation never performed (lost-operation detection,
    /// §4.2).
    LostOp(LostOpViolation),
    /// A replayed load or deallocated store disagreed with the original
    /// execution (Uniprocessor Ordering invariant, §4.1).
    Uniproc(UniprocViolation),
    /// An epoch-rule violation (Cache Coherence invariant, §4.3).
    Coherence(CoherenceViolation),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Reorder(v) => write!(f, "allowable-reordering violation: {v}"),
            Violation::LostOp(v) => write!(f, "lost-operation violation: {v}"),
            Violation::Uniproc(v) => write!(f, "uniprocessor-ordering violation: {v}"),
            Violation::Coherence(v) => write!(f, "cache-coherence violation: {v}"),
        }
    }
}

impl Error for Violation {}

impl From<ReorderViolation> for Violation {
    fn from(v: ReorderViolation) -> Self {
        Violation::Reorder(v)
    }
}
impl From<LostOpViolation> for Violation {
    fn from(v: LostOpViolation) -> Self {
        Violation::LostOp(v)
    }
}
impl From<UniprocViolation> for Violation {
    fn from(v: UniprocViolation) -> Self {
        Violation::Uniproc(v)
    }
}
impl From<CoherenceViolation> for Violation {
    fn from(v: CoherenceViolation) -> Self {
        Violation::Coherence(v)
    }
}

/// An operation performed although a younger operation with an ordering
/// constraint against it had already performed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReorderViolation {
    /// The operation that performed too late.
    pub seq: SeqNum,
    /// Its class.
    pub class: OpClass,
    /// The counter class of the younger operation that already performed.
    pub conflicting_kind: OpKind,
    /// The `max{OP}` counter value that exposed the violation.
    pub max_performed: SeqNum,
}

impl fmt::Display for ReorderViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} performed after younger {} (max performed {})",
            self.class, self.seq, self.conflicting_kind, self.max_performed
        )
    }
}

/// A committed operation older than a performing membar never performed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LostOpViolation {
    /// The membar (real or injected) whose check exposed the loss.
    pub membar_seq: SeqNum,
    /// The counter class of the lost operation.
    pub kind: OpKind,
    /// The sequence number of the oldest outstanding (lost) operation.
    pub lost_seq: SeqNum,
}

impl fmt::Display for LostOpViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} committed but never performed before membar {}",
            self.kind, self.lost_seq, self.membar_seq
        )
    }
}

/// A Uniprocessor Ordering failure detected during replay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UniprocViolation {
    /// A replayed load returned a different value than the original
    /// execution.
    LoadMismatch {
        /// The word that was loaded.
        addr: WordAddr,
        /// The value observed by the original (out-of-order) execution.
        original: u64,
        /// The value observed by the sequential replay.
        replayed: u64,
    },
    /// When a store's VC entry was deallocated, the value it wrote to the
    /// cache differed from the VC's record of the most recent committed
    /// store.
    StoreDeallocMismatch {
        /// The word that was stored.
        addr: WordAddr,
        /// The value recorded in the verification cache.
        vc_value: u64,
        /// The value actually written to the cache.
        cache_value: u64,
    },
    /// A store reported performing without a matching committed VC entry.
    StorePerformedUnknown {
        /// The word the stray store targeted.
        addr: WordAddr,
    },
}

impl fmt::Display for UniprocViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniprocViolation::LoadMismatch {
                addr,
                original,
                replayed,
            } => write!(
                f,
                "replayed load of {addr} saw {replayed:#x}, original execution saw {original:#x}"
            ),
            UniprocViolation::StoreDeallocMismatch {
                addr,
                vc_value,
                cache_value,
            } => write!(
                f,
                "store to {addr} wrote {cache_value:#x} to cache but VC holds {vc_value:#x}"
            ),
            UniprocViolation::StorePerformedUnknown { addr } => {
                write!(f, "store to {addr} performed without a committed VC entry")
            }
        }
    }
}

/// An epoch-rule violation detected by the coherence checker (§4.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoherenceViolation {
    /// A load or store was performed outside an appropriate epoch (rule 1).
    AccessOutsideEpoch {
        /// The cache whose access check failed.
        node: NodeId,
        /// The block accessed.
        addr: BlockAddr,
        /// Whether the access was a write.
        write: bool,
    },
    /// A Read-Write epoch temporally overlapped another epoch (rule 2).
    EpochOverlap {
        /// Home memory controller that detected the overlap.
        home: NodeId,
        /// The block whose epochs overlap.
        addr: BlockAddr,
        /// Start time of the offending epoch.
        start: Ts16,
        /// End time of the epoch it collides with.
        conflicting_end: Ts16,
    },
    /// Block data at the start of an epoch differed from the data at the
    /// end of the most recent Read-Write epoch (rule 3).
    DataPropagation {
        /// Home memory controller that detected the mismatch.
        home: NodeId,
        /// The block whose data was corrupted in flight.
        addr: BlockAddr,
        /// Hash the epoch started with.
        start_hash: u16,
        /// Hash at the end of the latest Read-Write epoch.
        expected_hash: u16,
    },
    /// An Inform-Closed-Epoch arrived for an epoch that was never reported
    /// open.
    SpuriousClose {
        /// Home memory controller.
        home: NodeId,
        /// The block.
        addr: BlockAddr,
        /// The node claiming to close an epoch.
        node: NodeId,
    },
    /// A cache-resident data block failed its ECC check: it changed without
    /// being written by a store (Cache Correctness, Definition 2).
    EccMismatch {
        /// The node whose storage failed the check.
        node: NodeId,
        /// The block.
        addr: BlockAddr,
    },
}

impl fmt::Display for CoherenceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceViolation::AccessOutsideEpoch { node, addr, write } => write!(
                f,
                "{} on {node} accessed {addr} outside an appropriate epoch",
                if *write { "store" } else { "load" }
            ),
            CoherenceViolation::EpochOverlap {
                home,
                addr,
                start,
                conflicting_end,
            } => write!(
                f,
                "epoch for {addr} starting at {start} overlaps epoch ending at {conflicting_end} (home {home})"
            ),
            CoherenceViolation::DataPropagation {
                home,
                addr,
                start_hash,
                expected_hash,
            } => write!(
                f,
                "{addr} entered an epoch with hash {start_hash:#06x}, expected {expected_hash:#06x} (home {home})"
            ),
            CoherenceViolation::SpuriousClose { home, addr, node } => {
                write!(f, "{node} closed an unopened epoch for {addr} (home {home})")
            }
            CoherenceViolation::EccMismatch { node, addr } => {
                write!(f, "ECC mismatch on {addr} at {node}: data changed without a store")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvmc_consistency::MembarMask;

    #[test]
    fn display_is_informative() {
        let v = Violation::Reorder(ReorderViolation {
            seq: SeqNum(3),
            class: OpClass::Membar(MembarMask::ALL),
            conflicting_kind: OpKind::Store,
            max_performed: SeqNum(9),
        });
        let s = v.to_string();
        assert!(s.contains("#3") && s.contains("Store") && s.contains("#9"), "{s}");

        let v = Violation::Uniproc(UniprocViolation::LoadMismatch {
            addr: WordAddr(16),
            original: 1,
            replayed: 2,
        });
        assert!(v.to_string().contains("0x2"));

        let v = Violation::Coherence(CoherenceViolation::EpochOverlap {
            home: NodeId(1),
            addr: BlockAddr(5),
            start: Ts16(10),
            conflicting_end: Ts16(12),
        });
        assert!(v.to_string().contains("overlap"));
    }

    #[test]
    fn conversions_into_violation() {
        let lost: Violation = LostOpViolation {
            membar_seq: SeqNum(10),
            kind: OpKind::Store,
            lost_seq: SeqNum(4),
        }
        .into();
        assert!(matches!(lost, Violation::LostOp(_)));
        assert!(lost.to_string().contains("never performed"));
    }

    #[test]
    fn error_trait_object() {
        let v: Box<dyn Error> = Box::new(Violation::Uniproc(
            UniprocViolation::StorePerformedUnknown { addr: WordAddr(1) },
        ));
        assert!(v.to_string().contains("without a committed"));
    }
}
