//! Event traces: drive the DVMC checkers from a recorded stream of
//! architectural events, with no simulator attached.
//!
//! The framework's modularity claim (§3, §A.2) is that the three
//! invariants are checked *independently of the mechanisms that produce
//! the events*. This module makes that operational: any agent — a
//! simulator, an RTL testbench, a post-mortem log — can serialize its
//! commit/perform/epoch events as [`TraceEvent`]s and have
//! [`TraceChecker`] validate them.
//!
//! Events carry the processor or home they belong to; the checker
//! maintains one [`ReorderChecker`]/[`UniprocChecker`] pair per processor
//! and one [`HomeChecker`] per home node.

use crate::coherence::{EpochMessage, HomeChecker};
use crate::reorder::ReorderChecker;
use crate::uniproc::{ReplayLookup, UniprocChecker, UniprocCheckerConfig};
use crate::violation::Violation;
use dvmc_consistency::{Model, OpClass};
use dvmc_types::{BlockAddr, NodeId, SeqNum, Ts16, WordAddr};
use std::collections::HashMap;

/// One architectural event, as consumed by the checkers.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TraceEvent {
    /// Operation `seq` on `proc` committed (program order).
    Committed {
        /// The committing processor.
        proc: NodeId,
        /// Program-order sequence number.
        seq: SeqNum,
        /// Operation class.
        class: OpClass,
        /// The consistency model the op was decoded under.
        model: Model,
    },
    /// Operation `seq` on `proc` performed.
    Performed {
        /// The performing processor.
        proc: NodeId,
        /// Program-order sequence number.
        seq: SeqNum,
        /// Operation class.
        class: OpClass,
        /// The consistency model the op was decoded under.
        model: Model,
    },
    /// A store on `proc` committed its value (VC write, §4.1).
    StoreValue {
        /// The processor.
        proc: NodeId,
        /// The stored word.
        addr: WordAddr,
        /// The stored value.
        value: u64,
    },
    /// A store on `proc` drained to the cache.
    StoreDrained {
        /// The processor.
        proc: NodeId,
        /// The drained word.
        addr: WordAddr,
        /// The value written to the cache.
        value: u64,
    },
    /// A load replay on `proc`: original value plus the cache word at
    /// replay time (used only on a VC miss).
    Replay {
        /// The processor.
        proc: NodeId,
        /// The loaded word.
        addr: WordAddr,
        /// The value the original execution observed.
        original: u64,
        /// The value the cache held at replay time.
        cache: u64,
    },
    /// A block was first requested at its home (MET entry construction).
    HomeEntry {
        /// The home memory controller.
        home: NodeId,
        /// The block.
        addr: BlockAddr,
        /// Logical time of the request.
        now: Ts16,
        /// CRC-16 of the block in memory.
        memory_hash: u16,
    },
    /// An epoch message arrived at its home (§4.3).
    Epoch {
        /// The home memory controller.
        home: NodeId,
        /// The message.
        msg: EpochMessage,
    },
}

/// Replays [`TraceEvent`]s through per-processor and per-home checkers.
///
/// # Examples
///
/// ```rust
/// use dvmc_core::trace::{TraceChecker, TraceEvent};
/// use dvmc_consistency::{Model, OpClass};
/// use dvmc_types::{NodeId, SeqNum};
///
/// let mut chk = TraceChecker::new(Model::Tso);
/// let events = [
///     TraceEvent::Committed { proc: NodeId(0), seq: SeqNum(0), class: OpClass::Store, model: Model::Tso },
///     TraceEvent::Committed { proc: NodeId(0), seq: SeqNum(1), class: OpClass::Load, model: Model::Tso },
///     TraceEvent::Performed { proc: NodeId(0), seq: SeqNum(1), class: OpClass::Load, model: Model::Tso },
///     TraceEvent::Performed { proc: NodeId(0), seq: SeqNum(0), class: OpClass::Store, model: Model::Tso },
/// ];
/// assert!(chk.run(events).is_ok(), "TSO permits the Store->Load reorder");
/// ```
pub struct TraceChecker {
    model: Model,
    reorder: HashMap<NodeId, ReorderChecker>,
    uniproc: HashMap<NodeId, UniprocChecker>,
    homes: HashMap<NodeId, HomeChecker>,
    events: u64,
}

impl TraceChecker {
    /// Creates a trace checker; `model` selects the RMO load-value-cache
    /// optimization for the Uniprocessor Ordering checkers.
    pub fn new(model: Model) -> Self {
        TraceChecker {
            model,
            reorder: HashMap::new(),
            uniproc: HashMap::new(),
            homes: HashMap::new(),
            events: 0,
        }
    }

    fn uniproc(&mut self, proc: NodeId) -> &mut UniprocChecker {
        let model = self.model;
        self.uniproc.entry(proc).or_insert_with(|| {
            UniprocChecker::new(UniprocCheckerConfig {
                cache_load_values: model == Model::Rmo,
                load_value_capacity: 32,
            })
        })
    }

    /// Feeds one event.
    ///
    /// # Errors
    ///
    /// Returns the violation the event exposed, if any.
    pub fn feed(&mut self, event: TraceEvent) -> Result<(), Violation> {
        self.events += 1;
        match event {
            TraceEvent::Committed {
                proc,
                seq,
                class,
                model,
            } => {
                self.reorder
                    .entry(proc)
                    .or_default()
                    .op_committed(seq, class, model);
                Ok(())
            }
            TraceEvent::Performed {
                proc,
                seq,
                class,
                model,
            } => self
                .reorder
                .entry(proc)
                .or_default()
                .op_performed(seq, class, model),
            TraceEvent::StoreValue { proc, addr, value } => {
                self.uniproc(proc).store_committed(addr, value);
                Ok(())
            }
            TraceEvent::StoreDrained { proc, addr, value } => {
                self.uniproc(proc).store_performed(addr, value)
            }
            TraceEvent::Replay {
                proc,
                addr,
                original,
                cache,
            } => match self.uniproc(proc).replay_load(addr, original)? {
                ReplayLookup::VcHit => Ok(()),
                ReplayLookup::NeedCache => {
                    self.uniproc(proc).replay_load_from_cache(addr, original, cache)
                }
            },
            TraceEvent::HomeEntry {
                home,
                addr,
                now,
                memory_hash,
            } => {
                self.homes
                    .entry(home)
                    .or_insert_with(|| HomeChecker::new(home, 256))
                    .met_mut()
                    .ensure_entry(addr, now, memory_hash);
                Ok(())
            }
            TraceEvent::Epoch { home, msg } => self
                .homes
                .entry(home)
                .or_insert_with(|| HomeChecker::new(home, 256))
                .push(msg),
        }
    }

    /// Feeds a whole trace, stopping at the first violation.
    ///
    /// # Errors
    ///
    /// Returns the first violation and implicitly the number of clean
    /// events via [`events_checked`](Self::events_checked).
    pub fn run(&mut self, trace: impl IntoIterator<Item = TraceEvent>) -> Result<(), Violation> {
        for e in trace {
            self.feed(e)?;
        }
        self.finish()
    }

    /// Flushes all home checkers (end of trace).
    ///
    /// # Errors
    ///
    /// Returns the first violation found in the queued epoch messages.
    pub fn finish(&mut self) -> Result<(), Violation> {
        for home in self.homes.values_mut() {
            home.flush()?;
        }
        Ok(())
    }

    /// Events processed so far.
    pub fn events_checked(&self) -> u64 {
        self.events
    }
}

impl std::fmt::Debug for TraceChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceChecker")
            .field("model", &self.model)
            .field("procs", &self.reorder.len())
            .field("homes", &self.homes.len())
            .field("events", &self.events)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coherence::{EpochKind, InformEpoch};

    fn committed(seq: u64, class: OpClass) -> TraceEvent {
        TraceEvent::Committed {
            proc: NodeId(0),
            seq: SeqNum(seq),
            class,
            model: Model::Tso,
        }
    }

    fn performed(seq: u64, class: OpClass) -> TraceEvent {
        TraceEvent::Performed {
            proc: NodeId(0),
            seq: SeqNum(seq),
            class,
            model: Model::Tso,
        }
    }

    #[test]
    fn clean_multi_proc_trace_passes() {
        let mut chk = TraceChecker::new(Model::Tso);
        let mut trace = Vec::new();
        for p in 0..4u8 {
            trace.push(TraceEvent::Committed {
                proc: NodeId(p),
                seq: SeqNum(0),
                class: OpClass::Store,
                model: Model::Tso,
            });
            trace.push(TraceEvent::StoreValue {
                proc: NodeId(p),
                addr: WordAddr(8 * p as u64),
                value: p as u64,
            });
            trace.push(TraceEvent::StoreDrained {
                proc: NodeId(p),
                addr: WordAddr(8 * p as u64),
                value: p as u64,
            });
            trace.push(TraceEvent::Performed {
                proc: NodeId(p),
                seq: SeqNum(0),
                class: OpClass::Store,
                model: Model::Tso,
            });
        }
        chk.run(trace).unwrap();
        assert_eq!(chk.events_checked(), 16);
    }

    #[test]
    fn reorder_violation_stops_the_trace() {
        let mut chk = TraceChecker::new(Model::Tso);
        let trace = vec![
            committed(0, OpClass::Store),
            committed(1, OpClass::Store),
            performed(1, OpClass::Store),
            performed(0, OpClass::Store),
        ];
        let err = chk.run(trace).unwrap_err();
        assert!(matches!(err, Violation::Reorder(_)));
    }

    #[test]
    fn uniproc_violation_detected_from_trace() {
        let mut chk = TraceChecker::new(Model::Tso);
        let trace = vec![
            TraceEvent::StoreValue {
                proc: NodeId(1),
                addr: WordAddr(8),
                value: 7,
            },
            TraceEvent::Replay {
                proc: NodeId(1),
                addr: WordAddr(8),
                original: 9,
                cache: 0,
            },
        ];
        let err = chk.run(trace).unwrap_err();
        assert!(matches!(err, Violation::Uniproc(_)));
    }

    #[test]
    fn epoch_events_checked_at_finish() {
        let mut chk = TraceChecker::new(Model::Tso);
        let addr = BlockAddr(4);
        let mk = |node: u8, start: u16, end: u16, h0: u16, h1: u16| TraceEvent::Epoch {
            home: NodeId(0),
            msg: InformEpoch {
                addr,
                kind: EpochKind::ReadWrite,
                node: NodeId(node),
                start: Ts16(start),
                end: Ts16(end),
                start_hash: h0,
                end_hash: h1,
            }
            .into(),
        };
        chk.feed(TraceEvent::HomeEntry {
            home: NodeId(0),
            addr,
            now: Ts16(0),
            memory_hash: 0xA,
        })
        .unwrap();
        chk.feed(mk(1, 1, 5, 0xA, 0xB)).unwrap();
        chk.feed(mk(2, 3, 8, 0xB, 0xC)).unwrap(); // overlaps epoch 1
        let err = chk.finish().unwrap_err();
        assert!(matches!(err, Violation::Coherence(_)));
    }

    #[test]
    fn rmo_traces_use_load_value_caching() {
        let mut chk = TraceChecker::new(Model::Rmo);
        chk.feed(TraceEvent::StoreValue {
            proc: NodeId(0),
            addr: WordAddr(8),
            value: 3,
        })
        .unwrap();
        chk.feed(TraceEvent::StoreDrained {
            proc: NodeId(0),
            addr: WordAddr(8),
            value: 3,
        })
        .unwrap();
        // Under RMO the drained value stays as a load-value entry, so the
        // replay hits the VC even though the trace provides a stale cache
        // value.
        chk.feed(TraceEvent::Replay {
            proc: NodeId(0),
            addr: WordAddr(8),
            original: 3,
            cache: 99,
        })
        .unwrap();
    }
}
