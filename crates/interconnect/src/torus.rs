//! The 2D torus network (Table 6: "2D torus, 2.5 GB/s links, unordered").

use dvmc_types::{Cycle, NodeId};
use std::collections::VecDeque;

/// One-shot fault actions applied to the next message sent (§6.1 injects
/// dropped, reordered, mis-routed, and duplicated messages).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetFault {
    /// Silently discard the next message.
    Drop,
    /// Deliver the next message twice.
    Duplicate,
    /// Send the next message to the wrong destination.
    Misroute(NodeId),
    /// Hold the next message for this many extra cycles before routing
    /// (reorders it behind later traffic).
    Delay(u32),
}

/// Cumulative per-link statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Total bytes that crossed the link.
    pub bytes: u64,
    /// Messages that crossed the link.
    pub messages: u64,
}

#[derive(Clone, Debug)]
struct InFlight<T> {
    payload: T,
    bytes: u32,
    dst: NodeId,
    /// Cycle at which the message finishes the current hop.
    arrives_at: Cycle,
    /// Node the message is currently travelling toward (next router).
    next_router: NodeId,
}

/// A 2D torus with XY dimension-order routing and wraparound, modelling
/// per-link serialization (bandwidth) plus per-hop latency.
///
/// Messages are injected with [`send`](Self::send) and picked up from
/// per-node inboxes with [`recv`](Self::recv) after
/// [`tick`](Self::tick)ing the network each cycle.
///
/// # Examples
///
/// ```rust
/// use dvmc_interconnect::Torus;
/// use dvmc_types::NodeId;
///
/// let mut net: Torus<&str> = Torus::new(8, 8, 2);
/// net.send(NodeId(0), NodeId(5), "hello", 64, 0);
/// let mut cycle = 0;
/// loop {
///     net.tick(cycle);
///     if let Some(msg) = net.recv(NodeId(5)) {
///         assert_eq!(msg, "hello");
///         break;
///     }
///     cycle += 1;
/// }
/// ```
/// A fault-delayed message awaiting release: (release cycle, src, dst,
/// payload, bytes).
type Delayed<T> = (Cycle, NodeId, NodeId, T, u32);

/// Predicate selecting which payloads an armed fault may hit. Shared
/// (`Arc`) so the network — and with it a BER system snapshot — stays
/// cloneable; filters are stateless closures, so sharing is safe.
type FaultFilter<T> = std::sync::Arc<dyn Fn(&T) -> bool + Send + Sync>;

#[derive(Clone)]
pub struct Torus<T> {
    cols: usize,
    rows: usize,
    /// Bytes per cycle per link.
    link_bandwidth: u32,
    /// Cycles of propagation per hop.
    hop_latency: u32,
    /// Earliest cycle at which each directed link is free.
    /// Indexed `node * 4 + dir` (E, W, N, S).
    link_free_at: Vec<Cycle>,
    link_stats: Vec<LinkStats>,
    in_flight: Vec<InFlight<T>>,
    /// Messages held by a Delay fault until their release cycle.
    delayed: Vec<Delayed<T>>,
    inboxes: Vec<VecDeque<T>>,
    armed_fault: Option<NetFault>,
    fault_filter: Option<FaultFilter<T>>,
    faults_applied: u64,
    total_sent: u64,
}

impl<T> std::fmt::Debug for Torus<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Torus")
            .field("shape", &(self.cols, self.rows))
            .field("in_flight", &self.in_flight.len())
            .field("total_sent", &self.total_sent)
            .finish_non_exhaustive()
    }
}

const DIR_E: usize = 0;
const DIR_W: usize = 1;
const DIR_N: usize = 2;
const DIR_S: usize = 3;

impl<T> Torus<T> {
    /// Creates a torus sized for `nodes` (folded into the squarest
    /// possible `cols x rows` grid) with the given link bandwidth
    /// (bytes/cycle) and per-hop latency (cycles).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `link_bandwidth == 0`.
    pub fn new(nodes: usize, link_bandwidth: u32, hop_latency: u32) -> Self {
        assert!(nodes > 0, "torus needs at least one node");
        assert!(link_bandwidth > 0, "link bandwidth must be positive");
        let cols = (1..=nodes)
            .filter(|c| nodes.is_multiple_of(*c))
            .min_by_key(|&c| (nodes / c).abs_diff(c))
            .unwrap_or(nodes);
        let rows = nodes / cols;
        let cols = cols.max(rows);
        let rows = nodes / cols;
        Torus {
            cols,
            rows,
            link_bandwidth,
            hop_latency,
            link_free_at: vec![0; nodes * 4],
            link_stats: vec![LinkStats::default(); nodes * 4],
            in_flight: Vec::new(),
            delayed: Vec::new(),
            inboxes: (0..nodes).map(|_| VecDeque::new()).collect(),
            armed_fault: None,
            fault_filter: None,
            faults_applied: 0,
            total_sent: 0,
        }
    }

    /// Approximate serialized size of the network state, in bytes
    /// (incremental-checkpoint accounting).
    pub fn approx_state_bytes(&self) -> u64 {
        let queued = self.in_flight.len()
            + self.delayed.len()
            + self.inboxes.iter().map(VecDeque::len).sum::<usize>();
        (std::mem::size_of::<Self>()
            + self.link_free_at.len() * 8
            + self.link_stats.len() * std::mem::size_of::<LinkStats>()
            + queued * (std::mem::size_of::<T>() + 24)) as u64
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.inboxes.len()
    }

    /// Grid shape `(cols, rows)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Arms a one-shot fault applied to the next [`send`](Self::send).
    pub fn arm_fault(&mut self, fault: NetFault) {
        self.armed_fault = Some(fault);
        self.fault_filter = None;
    }

    /// Arms a one-shot fault applied to the next sent message for which
    /// `filter` returns true (targets a message class, e.g. protocol
    /// traffic only).
    pub fn arm_fault_filtered(
        &mut self,
        fault: NetFault,
        filter: impl Fn(&T) -> bool + Send + Sync + 'static,
    ) {
        self.armed_fault = Some(fault);
        self.fault_filter = Some(std::sync::Arc::new(filter));
    }

    /// Disarms any armed-but-unapplied fault (recovery rolls the system
    /// back to a pre-fault checkpoint and must not re-trip on replay).
    pub fn disarm_fault(&mut self) {
        self.armed_fault = None;
        self.fault_filter = None;
    }

    /// Number of fault actions actually applied.
    pub fn faults_applied(&self) -> u64 {
        self.faults_applied
    }

    fn coords(&self, n: NodeId) -> (usize, usize) {
        (n.index() % self.cols, n.index() / self.cols)
    }

    fn node_at(&self, x: usize, y: usize) -> NodeId {
        NodeId((y * self.cols + x) as u8)
    }

    /// The next hop from `at` toward `dst` (XY routing with wraparound
    /// taking the shorter direction), and the directed link used.
    fn route(&self, at: NodeId, dst: NodeId) -> (NodeId, usize) {
        let (ax, ay) = self.coords(at);
        let (dx, dy) = self.coords(dst);
        if ax != dx {
            let fwd = (dx + self.cols - ax) % self.cols;
            let bwd = (ax + self.cols - dx) % self.cols;
            if fwd <= bwd {
                (self.node_at((ax + 1) % self.cols, ay), at.index() * 4 + DIR_E)
            } else {
                (
                    self.node_at((ax + self.cols - 1) % self.cols, ay),
                    at.index() * 4 + DIR_W,
                )
            }
        } else {
            let fwd = (dy + self.rows - ay) % self.rows;
            let bwd = (ay + self.rows - dy) % self.rows;
            if fwd <= bwd {
                (self.node_at(ax, (ay + 1) % self.rows), at.index() * 4 + DIR_N)
            } else {
                (
                    self.node_at(ax, (ay + self.rows - 1) % self.rows),
                    at.index() * 4 + DIR_S,
                )
            }
        }
    }

    fn launch(&mut self, from: NodeId, dst: NodeId, payload: T, bytes: u32, now: Cycle) {
        if from == dst {
            self.inboxes[dst.index()].push_back(payload);
            return;
        }
        let (next, link) = self.route(from, dst);
        let serialization = (bytes as u64).div_ceil(self.link_bandwidth as u64);
        let start = self.link_free_at[link].max(now);
        self.link_free_at[link] = start + serialization;
        self.link_stats[link].bytes += bytes as u64;
        self.link_stats[link].messages += 1;
        self.in_flight.push(InFlight {
            payload,
            bytes,
            dst,
            arrives_at: start + serialization + self.hop_latency as u64,
            next_router: next,
        });
    }

    /// Advances the network to `now`: messages that completed their current
    /// hop are forwarded or delivered, and fault-delayed messages whose
    /// release time arrived are injected.
    pub fn tick(&mut self, now: Cycle) {
        let mut j = 0;
        while j < self.delayed.len() {
            if self.delayed[j].0 <= now {
                let (_, src, dst, payload, bytes) = self.delayed.swap_remove(j);
                self.launch(src, dst, payload, bytes, now);
            } else {
                j += 1;
            }
        }
        let mut i = 0;
        let mut arrived = Vec::new();
        while i < self.in_flight.len() {
            if self.in_flight[i].arrives_at <= now {
                arrived.push(self.in_flight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        for m in arrived {
            if m.next_router == m.dst {
                self.inboxes[m.dst.index()].push_back(m.payload);
            } else {
                self.launch(m.next_router, m.dst, m.payload, m.bytes, now);
            }
        }
    }

    /// Pops the next delivered message for `node`, if any.
    pub fn recv(&mut self, node: NodeId) -> Option<T> {
        self.inboxes[node.index()].pop_front()
    }

    /// Whether any traffic is still in flight or queued for delivery.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight.is_empty()
            && self.delayed.is_empty()
            && self.inboxes.iter().all(VecDeque::is_empty)
    }

    /// Per-link statistics (4 directed links per node: E, W, N, S).
    pub fn link_stats(&self) -> &[LinkStats] {
        &self.link_stats
    }

    /// Bytes on the most heavily loaded link (Figure 7 plots its mean
    /// bandwidth).
    pub fn max_link_bytes(&self) -> u64 {
        self.link_stats.iter().map(|s| s.bytes).max().unwrap_or(0)
    }

    /// Total bytes sent across all links.
    pub fn total_bytes(&self) -> u64 {
        self.link_stats.iter().map(|s| s.bytes).sum()
    }

    /// Total messages injected.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }
}

impl<T: Clone> Torus<T> {
    /// Injects a message of `bytes` wire bytes from `src` to `dst` at
    /// cycle `now`. Local (`src == dst`) messages are delivered directly.
    ///
    /// Any armed [`NetFault`] is consumed and applied here.
    pub fn send(&mut self, src: NodeId, dst: NodeId, payload: T, bytes: u32, now: Cycle) {
        self.total_sent += 1;
        if let (Some(_), Some(filter)) = (&self.armed_fault, &self.fault_filter) {
            if !filter(&payload) {
                self.launch(src, dst, payload, bytes, now);
                return;
            }
        }
        match self.armed_fault.take() {
            Some(NetFault::Drop) => {
                self.faults_applied += 1;
            }
            Some(NetFault::Duplicate) => {
                self.faults_applied += 1;
                self.launch(src, dst, payload.clone(), bytes, now);
                self.launch(src, dst, payload, bytes, now);
            }
            Some(NetFault::Misroute(wrong)) => {
                self.faults_applied += 1;
                let wrong = NodeId((wrong.index() % self.nodes()) as u8);
                self.launch(src, wrong, payload, bytes, now);
            }
            Some(NetFault::Delay(extra)) => {
                self.faults_applied += 1;
                self.delayed
                    .push((now + extra as u64, src, dst, payload, bytes));
            }
            None => self.launch(src, dst, payload, bytes, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_delivered(net: &mut Torus<u32>, node: NodeId, deadline: Cycle) -> (u32, Cycle) {
        for c in 0..deadline {
            net.tick(c);
            if let Some(m) = net.recv(node) {
                return (m, c);
            }
        }
        panic!("message not delivered within {deadline} cycles");
    }

    #[test]
    fn shape_is_squarest_factorization() {
        assert_eq!(Torus::<u8>::new(8, 1, 1).shape(), (4, 2));
        assert_eq!(Torus::<u8>::new(4, 1, 1).shape(), (2, 2));
        assert_eq!(Torus::<u8>::new(1, 1, 1).shape(), (1, 1));
        assert_eq!(Torus::<u8>::new(6, 1, 1).shape(), (3, 2));
        assert_eq!(Torus::<u8>::new(7, 1, 1).shape(), (7, 1));
    }

    #[test]
    fn local_send_is_immediate() {
        let mut net: Torus<u32> = Torus::new(4, 8, 1);
        net.send(NodeId(2), NodeId(2), 9, 64, 0);
        assert_eq!(net.recv(NodeId(2)), Some(9));
    }

    #[test]
    fn delivery_latency_scales_with_distance() {
        let mut near: Torus<u32> = Torus::new(8, 64, 3);
        near.send(NodeId(0), NodeId(1), 1, 64, 0);
        let (_, c_near) = run_until_delivered(&mut near, NodeId(1), 100);

        let mut far: Torus<u32> = Torus::new(8, 64, 3);
        far.send(NodeId(0), NodeId(6), 1, 64, 0); // 2 hops away on 4x2
        let (_, c_far) = run_until_delivered(&mut far, NodeId(6), 100);
        assert!(c_far > c_near, "{c_far} vs {c_near}");
    }

    #[test]
    fn wraparound_shortens_routes() {
        // On a 4x2 torus, node 0 -> node 3 is one hop west via wraparound.
        let net: Torus<u32> = Torus::new(8, 64, 1);
        let (next, _) = net.route(NodeId(0), NodeId(3));
        assert_eq!(next, NodeId(3));
    }

    #[test]
    fn bandwidth_serializes_messages() {
        // 1 byte/cycle: a 64-byte message occupies the first link 64 cycles.
        let mut net: Torus<u32> = Torus::new(4, 1, 0);
        net.send(NodeId(0), NodeId(1), 1, 64, 0);
        net.send(NodeId(0), NodeId(1), 2, 64, 0);
        let (m1, c1) = run_until_delivered(&mut net, NodeId(1), 1000);
        let (m2, c2) = {
            for c in c1..1000 {
                net.tick(c);
                if let Some(m) = net.recv(NodeId(1)) {
                    assert_eq!(m, 2);
                    break;
                }
            }
            (2, ())
        };
        let _ = (m2, c2);
        assert_eq!(m1, 1);
        assert!(c1 >= 64, "serialization delay must apply, got {c1}");
    }

    #[test]
    fn link_stats_accumulate() {
        let mut net: Torus<u32> = Torus::new(8, 64, 1);
        net.send(NodeId(0), NodeId(1), 1, 100, 0);
        net.send(NodeId(0), NodeId(1), 2, 50, 0);
        assert_eq!(net.max_link_bytes(), 150);
        assert_eq!(net.total_bytes(), 150);
        assert_eq!(net.total_sent(), 2);
    }

    #[test]
    fn multi_hop_counts_bytes_on_every_link() {
        let mut net: Torus<u32> = Torus::new(8, 64, 1);
        net.send(NodeId(0), NodeId(2), 7, 64, 0); // 2 hops east
        for c in 0..50 {
            net.tick(c);
        }
        assert_eq!(net.recv(NodeId(2)), Some(7));
        assert_eq!(net.total_bytes(), 128, "64 bytes on each of 2 links");
    }

    #[test]
    fn fault_drop() {
        let mut net: Torus<u32> = Torus::new(4, 64, 1);
        net.arm_fault(NetFault::Drop);
        net.send(NodeId(0), NodeId(1), 1, 64, 0);
        for c in 0..100 {
            net.tick(c);
        }
        assert_eq!(net.recv(NodeId(1)), None);
        assert_eq!(net.faults_applied(), 1);
        assert!(net.is_quiescent());
    }

    #[test]
    fn fault_duplicate() {
        let mut net: Torus<u32> = Torus::new(4, 64, 1);
        net.arm_fault(NetFault::Duplicate);
        net.send(NodeId(0), NodeId(1), 1, 64, 0);
        for c in 0..100 {
            net.tick(c);
        }
        assert_eq!(net.recv(NodeId(1)), Some(1));
        assert_eq!(net.recv(NodeId(1)), Some(1));
    }

    #[test]
    fn fault_misroute() {
        let mut net: Torus<u32> = Torus::new(4, 64, 1);
        net.arm_fault(NetFault::Misroute(NodeId(3)));
        net.send(NodeId(0), NodeId(1), 1, 64, 0);
        for c in 0..100 {
            net.tick(c);
        }
        assert_eq!(net.recv(NodeId(1)), None);
        assert_eq!(net.recv(NodeId(3)), Some(1));
    }

    #[test]
    fn fault_delay_reorders() {
        let mut net: Torus<u32> = Torus::new(4, 64, 1);
        net.arm_fault(NetFault::Delay(50));
        net.send(NodeId(0), NodeId(1), 1, 16, 0);
        net.send(NodeId(0), NodeId(1), 2, 16, 0);
        let mut order = Vec::new();
        for c in 0..200 {
            net.tick(c);
            while let Some(m) = net.recv(NodeId(1)) {
                order.push(m);
            }
        }
        assert_eq!(order, vec![2, 1], "delayed message arrives second");
    }

    #[test]
    fn disarm_cancels_a_pending_fault() {
        let mut net: Torus<u32> = Torus::new(4, 64, 1);
        net.arm_fault(NetFault::Drop);
        net.disarm_fault();
        net.send(NodeId(0), NodeId(1), 1, 64, 0);
        for c in 0..100 {
            net.tick(c);
        }
        assert_eq!(net.recv(NodeId(1)), Some(1), "disarmed fault must not fire");
        assert_eq!(net.faults_applied(), 0);
    }

    #[test]
    fn cloned_torus_is_independent() {
        let mut net: Torus<u32> = Torus::new(4, 64, 1);
        net.send(NodeId(0), NodeId(1), 7, 64, 0);
        let mut snap = net.clone();
        // Advance the original past delivery; the clone still holds the
        // message in flight.
        for c in 0..100 {
            net.tick(c);
        }
        assert_eq!(net.recv(NodeId(1)), Some(7));
        assert!(!snap.is_quiescent(), "clone keeps its own in-flight state");
        for c in 0..100 {
            snap.tick(c);
        }
        assert_eq!(snap.recv(NodeId(1)), Some(7));
    }

    #[test]
    fn single_node_torus_delivers_everything_locally() {
        let mut net: Torus<u32> = Torus::new(1, 64, 1);
        net.send(NodeId(0), NodeId(0), 5, 64, 0);
        assert_eq!(net.recv(NodeId(0)), Some(5));
    }
}
