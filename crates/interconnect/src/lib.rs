//! # Interconnect substrate
//!
//! The networks of Table 6:
//!
//! * [`Torus`] — a 2D torus with XY wraparound routing, per-link bandwidth
//!   and occupancy modelling, and per-link byte accounting (used for the
//!   data network in both protocols and the request network in the
//!   directory protocol; drives Figures 7 and 8).
//! * [`BroadcastTree`] — the *ordered* broadcast tree used as the snooping
//!   protocol's address network: every node observes all requests in the
//!   same total order, which also serves as the snooping system's logical
//!   time base (§4.3).
//!
//! Both networks are generic over the payload type; the coherence and
//! simulator crates instantiate them with their message enums. Payload
//! sizes are passed explicitly in bytes so bandwidth accounting reflects
//! wire format rather than Rust struct layout.
//!
//! Fault injection (dropped, duplicated, mis-routed, delayed messages) is
//! supported through one-shot [`NetFault`] actions armed by the fault
//! injector.

pub mod torus;
pub mod tree;

pub use torus::{LinkStats, NetFault, Torus};
pub use tree::BroadcastTree;
