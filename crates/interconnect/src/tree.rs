//! The ordered broadcast tree used as the snooping address network
//! (Table 6: "bcast tree, 2.5 GB/s links, ordered").
//!
//! Every request injected anywhere is serialized at the tree root and
//! delivered to **all** nodes (including the sender) in the same total
//! order. That total order doubles as the snooping system's logical time
//! base: "the logical time for each cache and memory controller is the
//! number of cache coherence requests that it has processed thus far"
//! (§4.3).

use dvmc_types::{Cycle, NodeId};
use std::collections::VecDeque;

#[derive(Clone, Debug)]
struct Pending<T> {
    payload: T,
    bytes: u32,
    src: NodeId,
}

#[derive(Clone, Debug)]
struct InFlight<T> {
    payload: T,
    deliver_at: Cycle,
    order: u64,
}

/// An ordered broadcast network: per-cycle root arbitration, bandwidth
/// serialization at the root, and fixed fan-out latency.
///
/// # Examples
///
/// ```rust
/// use dvmc_interconnect::BroadcastTree;
/// use dvmc_types::NodeId;
///
/// let mut tree: BroadcastTree<&str> = BroadcastTree::new(4, 16, 3);
/// tree.send(NodeId(1), "GetM", 8, 0);
/// let mut got = None;
/// for c in 0..20 {
///     tree.tick(c);
///     if let Some((order, msg)) = tree.recv(NodeId(2)) {
///         got = Some((order, msg));
///         break;
///     }
/// }
/// assert_eq!(got, Some((0, "GetM")));
/// ```
#[derive(Clone, Debug)]
pub struct BroadcastTree<T> {
    /// Requests awaiting root arbitration, FIFO.
    pending: VecDeque<Pending<T>>,
    /// Serialized requests fanning out to the leaves.
    in_flight: Vec<InFlight<T>>,
    /// Delivered requests per node, tagged with their global order.
    inboxes: Vec<VecDeque<(u64, T)>>,
    /// Bytes per cycle through the root.
    root_bandwidth: u32,
    /// Cycles from root serialization to leaf delivery.
    fanout_latency: u32,
    root_free_at: Cycle,
    next_order: u64,
    total_bytes: u64,
    drop_next: bool,
    drops_applied: u64,
}

impl<T> BroadcastTree<T> {
    /// Creates a broadcast tree over `nodes` leaves with the given root
    /// bandwidth (bytes/cycle) and fan-out latency (cycles).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `root_bandwidth == 0`.
    pub fn new(nodes: usize, root_bandwidth: u32, fanout_latency: u32) -> Self {
        assert!(nodes > 0, "tree needs at least one node");
        assert!(root_bandwidth > 0, "root bandwidth must be positive");
        BroadcastTree {
            pending: VecDeque::new(),
            in_flight: Vec::new(),
            inboxes: (0..nodes).map(|_| VecDeque::new()).collect(),
            root_bandwidth,
            fanout_latency,
            root_free_at: 0,
            next_order: 0,
            total_bytes: 0,
            drop_next: false,
            drops_applied: 0,
        }
    }

    /// Number of leaves.
    pub fn nodes(&self) -> usize {
        self.inboxes.len()
    }

    /// Approximate serialized size of the network state, in bytes
    /// (incremental-checkpoint accounting).
    pub fn approx_state_bytes(&self) -> u64 {
        let queued = self.pending.len()
            + self.in_flight.len()
            + self.inboxes.iter().map(VecDeque::len).sum::<usize>();
        (std::mem::size_of::<Self>() + queued * (std::mem::size_of::<T>() + 24)) as u64
    }

    /// Injects a request for ordered broadcast.
    pub fn send(&mut self, src: NodeId, payload: T, bytes: u32, _now: Cycle) {
        if self.drop_next {
            self.drop_next = false;
            self.drops_applied += 1;
            return;
        }
        self.pending.push_back(Pending {
            payload,
            bytes,
            src,
        });
    }

    /// Arms a one-shot drop of the next injected request (fault model for
    /// the ordered network, where mis-routing is not meaningful).
    pub fn arm_drop(&mut self) {
        self.drop_next = true;
    }

    /// Drops applied so far.
    pub fn drops_applied(&self) -> u64 {
        self.drops_applied
    }

    /// Total bytes serialized through the root.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Pops the next delivered `(order, request)` for `node`, if any.
    /// Orders are globally consecutive; all nodes observe the same
    /// sequence.
    pub fn recv(&mut self, node: NodeId) -> Option<(u64, T)> {
        self.inboxes[node.index()].pop_front()
    }

    /// Whether any request is still pending, in flight, or undelivered.
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty()
            && self.in_flight.is_empty()
            && self.inboxes.iter().all(VecDeque::is_empty)
    }
}

impl<T: Clone> BroadcastTree<T> {
    /// Advances the tree to `now`: arbitrates pending requests through the
    /// root and fans out completed ones to every leaf inbox.
    pub fn tick(&mut self, now: Cycle) {
        // Root arbitration with bandwidth serialization.
        while let Some(front) = self.pending.front() {
            let start = self.root_free_at.max(now);
            if start > now {
                break;
            }
            let serialization = (front.bytes as u64).div_ceil(self.root_bandwidth as u64);
            let p = self.pending.pop_front().expect("front exists");
            let _ = p.src;
            self.root_free_at = start + serialization;
            self.total_bytes += p.bytes as u64;
            self.in_flight.push(InFlight {
                payload: p.payload,
                deliver_at: start + serialization + self.fanout_latency as u64,
                order: self.next_order,
            });
            self.next_order += 1;
        }
        // Fan-out: deliver in order to keep all inboxes identically
        // sequenced even if multiple requests complete in one cycle.
        self.in_flight.sort_by_key(|m| m.order);
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].deliver_at <= now {
                let m = self.in_flight.remove(i);
                for inbox in &mut self.inboxes {
                    inbox.push_back((m.order, m.payload.clone()));
                }
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(tree: &mut BroadcastTree<u32>, node: NodeId, cycles: Cycle) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        for c in 0..cycles {
            tree.tick(c);
            while let Some(m) = tree.recv(node) {
                out.push(m);
            }
        }
        out
    }

    #[test]
    fn all_nodes_observe_the_same_total_order() {
        let mut tree: BroadcastTree<u32> = BroadcastTree::new(4, 8, 2);
        for (i, src) in [(10u32, 3u8), (20, 1), (30, 0), (40, 2)] {
            tree.send(NodeId(src), i, 8, 0);
        }
        for c in 0..50 {
            tree.tick(c);
        }
        let mut sequences = Vec::new();
        for n in 0..4 {
            let mut seq = Vec::new();
            while let Some(m) = tree.recv(NodeId(n)) {
                seq.push(m);
            }
            sequences.push(seq);
        }
        assert_eq!(sequences[0], vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
        for s in &sequences[1..] {
            assert_eq!(s, &sequences[0]);
        }
    }

    #[test]
    fn sender_also_receives_its_own_request() {
        let mut tree: BroadcastTree<u32> = BroadcastTree::new(2, 8, 1);
        tree.send(NodeId(0), 7, 8, 0);
        let got = drain(&mut tree, NodeId(0), 10);
        assert_eq!(got, vec![(0, 7)]);
    }

    #[test]
    fn root_bandwidth_serializes() {
        // 1 byte/cycle, 8-byte requests: second request starts 8 cycles
        // after the first.
        let mut tree: BroadcastTree<u32> = BroadcastTree::new(2, 1, 0);
        tree.send(NodeId(0), 1, 8, 0);
        tree.send(NodeId(1), 2, 8, 0);
        let mut deliveries = Vec::new();
        for c in 0..40 {
            tree.tick(c);
            while let Some((o, m)) = tree.recv(NodeId(0)) {
                deliveries.push((c, o, m));
            }
        }
        assert_eq!(deliveries.len(), 2);
        assert!(
            deliveries[1].0 >= deliveries[0].0 + 8,
            "second delivery at {} vs first at {}",
            deliveries[1].0,
            deliveries[0].0
        );
    }

    #[test]
    fn orders_are_consecutive() {
        let mut tree: BroadcastTree<u32> = BroadcastTree::new(1, 64, 0);
        for i in 0..10 {
            tree.send(NodeId(0), i, 8, 0);
        }
        let got = drain(&mut tree, NodeId(0), 20);
        let orders: Vec<u64> = got.iter().map(|&(o, _)| o).collect();
        assert_eq!(orders, (0..10).collect::<Vec<_>>());
        assert_eq!(tree.total_bytes(), 80);
        assert!(tree.is_quiescent());
    }

    #[test]
    fn armed_drop_discards_one_request() {
        let mut tree: BroadcastTree<u32> = BroadcastTree::new(2, 8, 0);
        tree.arm_drop();
        tree.send(NodeId(0), 1, 8, 0);
        tree.send(NodeId(0), 2, 8, 0);
        let got = drain(&mut tree, NodeId(1), 10);
        assert_eq!(got, vec![(0, 2)]);
        assert_eq!(tree.drops_applied(), 1);
    }
}
