//! Property tests of the interconnect: exactly-once delivery on the torus
//! and identical total order on the broadcast tree, under random traffic.

use dvmc_interconnect::{BroadcastTree, Torus};
use dvmc_types::NodeId;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Every message sent on a fault-free torus is delivered exactly once
    /// to exactly its destination, regardless of size or timing.
    #[test]
    fn torus_delivers_exactly_once(
        nodes in 1usize..9,
        sends in proptest::collection::vec((0u8..8, 0u8..8, 1u32..200, 0u64..500), 1..80),
        bandwidth in 1u32..16,
        latency in 0u32..8,
    ) {
        let mut net: Torus<usize> = Torus::new(nodes, bandwidth, latency);
        let mut expected: HashMap<usize, usize> = HashMap::new(); // dst -> count
        let mut sent = 0usize;
        let mut sorted: Vec<_> = sends.clone();
        sorted.sort_by_key(|s| s.3);
        let mut cycle = 0u64;
        for (src, dst, bytes, at) in sorted {
            let (src, dst) = (src as usize % nodes, dst as usize % nodes);
            while cycle < at {
                net.tick(cycle);
                cycle += 1;
            }
            net.send(NodeId(src as u8), NodeId(dst as u8), sent, bytes, cycle);
            *expected.entry(dst).or_default() += 1;
            sent += 1;
        }
        // Drain.
        let mut received: HashMap<usize, usize> = HashMap::new();
        for extra in 0..200_000u64 {
            net.tick(cycle + extra);
            for n in 0..nodes {
                while net.recv(NodeId(n as u8)).is_some() {
                    *received.entry(n).or_default() += 1;
                }
            }
            if received.values().sum::<usize>() == sent {
                break;
            }
        }
        prop_assert_eq!(received, expected);
        prop_assert!(net.is_quiescent());
    }

    /// All leaves of the broadcast tree observe the identical, gap-free
    /// global order.
    #[test]
    fn tree_total_order_is_identical_everywhere(
        nodes in 1usize..9,
        sends in proptest::collection::vec((0u8..8, 1u32..32), 1..60),
        bandwidth in 1u32..16,
        latency in 0u32..8,
    ) {
        let mut tree: BroadcastTree<usize> = BroadcastTree::new(nodes, bandwidth, latency);
        for (i, (src, bytes)) in sends.iter().enumerate() {
            tree.send(NodeId(*src % nodes as u8), i, *bytes, 0);
        }
        let mut seqs: Vec<Vec<(u64, usize)>> = vec![Vec::new(); nodes];
        for cycle in 0..500_000u64 {
            tree.tick(cycle);
            for (n, seq) in seqs.iter_mut().enumerate() {
                while let Some(m) = tree.recv(NodeId(n as u8)) {
                    seq.push(m);
                }
            }
            if seqs.iter().all(|s| s.len() == sends.len()) {
                break;
            }
        }
        for s in &seqs {
            prop_assert_eq!(s.len(), sends.len(), "all requests delivered");
            prop_assert_eq!(s, &seqs[0], "identical order at every leaf");
            for (k, &(order, _)) in s.iter().enumerate() {
                prop_assert_eq!(order, k as u64, "orders are consecutive");
            }
        }
        prop_assert!(tree.is_quiescent());
    }
}
