//! Criterion micro-benchmarks of the two checkpoint schemes behind
//! SafetyNet BER: whole-machine snapshot cloning versus log-based
//! incremental deltas (DESIGN.md §14).
//!
//! Two costs matter. *Capture* runs every checkpoint interval on the
//! fast path — the delta scheme's claim is that a quiet interval appends
//! a near-empty record where the snapshot scheme clones the whole
//! machine. *Rollback* runs only on detection — the delta scheme pays an
//! undo-replay log scan there to win its cheap captures.

use criterion::{criterion_group, criterion_main, Criterion};
use dvmc_sim::{CheckpointMode, KernelMode, RecoveryPolicy, System, SystemBuilder};
use dvmc_workloads::spec::WorkloadKind;

/// A warmed service-mode machine: open-loop traffic, recovery armed, and
/// enough history that the BER log is full and rollback is meaningful.
fn warmed(checkpoint: CheckpointMode, mean_gap: u32) -> System {
    let mut sys = SystemBuilder::new()
        .nodes(4)
        .workload(WorkloadKind::Service { mean_gap }, u64::MAX / 2)
        .recovery(RecoveryPolicy::default())
        .watchdog(200_000)
        .seed(17)
        .kernel(KernelMode::Legacy)
        .checkpoint_mode(checkpoint)
        .build();
    for _ in 0..60_000 {
        sys.tick();
    }
    sys
}

fn bench_capture(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint_capture");
    // Quiet interval: nothing (or almost nothing) mutated since the last
    // capture. The delta scheme should be orders of magnitude cheaper
    // than cloning the machine.
    for (name, mode) in [
        ("quiet_whole_snapshot", CheckpointMode::Snapshot),
        ("quiet_delta_append", CheckpointMode::DeltaLog),
    ] {
        let mut sys = warmed(mode, 8_000);
        g.bench_function(name, |b| {
            b.iter(|| sys.force_checkpoint());
        });
    }
    // Busy interval: a burst of traffic dirties parts of the machine
    // between captures; the delta narrows toward the snapshot cost but
    // still only captures what moved.
    for (name, mode) in [
        ("busy_whole_snapshot", CheckpointMode::Snapshot),
        ("busy_delta_append", CheckpointMode::DeltaLog),
    ] {
        let mut sys = warmed(mode, 400);
        g.bench_function(name, |b| {
            b.iter(|| {
                for _ in 0..50 {
                    sys.tick();
                }
                sys.force_checkpoint()
            });
        });
    }
    g.finish();
}

fn bench_rollback(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint_rollback");
    for (name, mode) in [
        ("whole_snapshot_restore", CheckpointMode::Snapshot),
        ("delta_undo_replay", CheckpointMode::DeltaLog),
    ] {
        let mut sys = warmed(mode, 400);
        g.bench_function(name, |b| {
            b.iter(|| {
                // Mutate forward so the rollback has real work to undo,
                // then restore to the newest held checkpoint.
                for _ in 0..50 {
                    sys.tick();
                }
                sys.force_rollback().expect("warmed log holds a checkpoint")
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_capture, bench_rollback);
criterion_main!(benches);
