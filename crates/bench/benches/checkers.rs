//! Criterion micro-benchmarks of the DVMC checkers themselves: the
//! per-operation cost of the Allowable Reordering checker, VC replay
//! throughput in the Uniprocessor Ordering checker, and Inform-Epoch
//! processing rate at the MET — the numbers behind the paper's claim that
//! the checker logic is simple and off the critical path (§6.3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dvmc_consistency::{Model, OpClass};
use dvmc_core::coherence::{EpochKind, EpochMessage, EpochSorter, InformEpoch, MemoryEpochTable};
use dvmc_core::{ReorderChecker, UniprocChecker, UniprocCheckerConfig};
use dvmc_types::{BlockAddr, NodeId, SeqNum, Ts16, WordAddr};

fn bench_reorder_checker(c: &mut Criterion) {
    let mut g = c.benchmark_group("reorder_checker");
    g.throughput(Throughput::Elements(1));
    for model in [Model::Sc, Model::Tso, Model::Rmo] {
        g.bench_function(format!("commit_perform_{model}"), |b| {
            b.iter_batched(
                ReorderChecker::new,
                |mut chk| {
                    for i in 0..64u64 {
                        let class = if i % 3 == 0 {
                            OpClass::Store
                        } else {
                            OpClass::Load
                        };
                        chk.op_committed(SeqNum(i), class, model);
                        chk.op_performed(SeqNum(i), class, model).unwrap();
                    }
                    chk
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_uniproc_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("uniproc_checker");
    g.throughput(Throughput::Elements(64));
    g.bench_function("store_commit_replay_drain", |b| {
        b.iter_batched(
            || UniprocChecker::new(UniprocCheckerConfig::default()),
            |mut chk| {
                for i in 0..64u64 {
                    let a = WordAddr(i % 16);
                    chk.store_committed(a, i);
                    let _ = chk.replay_load(a, i).unwrap();
                    chk.store_performed(a, i).unwrap();
                }
                chk
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_met_processing(c: &mut Criterion) {
    let mut g = c.benchmark_group("coherence_checker");
    g.throughput(Throughput::Elements(256));
    g.bench_function("met_process_informs", |b| {
        b.iter_batched(
            || {
                let mut met = MemoryEpochTable::new(NodeId(0));
                for blk in 0..16u64 {
                    met.ensure_entry(BlockAddr(blk), Ts16(0), 0xAA);
                }
                met
            },
            |mut met| {
                for i in 0..256u16 {
                    let blk = BlockAddr(i as u64 % 16);
                    let start = Ts16(i * 4 + 1);
                    met.process(&EpochMessage::Inform(InformEpoch {
                        addr: blk,
                        kind: EpochKind::ReadOnly,
                        node: NodeId((i % 8) as u8),
                        start,
                        end: Ts16(start.0 + 2),
                        start_hash: 0xAA,
                        end_hash: 0xAA,
                    }))
                    .unwrap();
                }
                met
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("sorter_push_drain", |b| {
        b.iter_batched(
            || EpochSorter::new(256),
            |mut q| {
                for i in 0..256u16 {
                    // Slightly out-of-order arrivals.
                    let t = i ^ 3;
                    q.push(EpochMessage::Inform(InformEpoch {
                        addr: BlockAddr(i as u64),
                        kind: EpochKind::ReadOnly,
                        node: NodeId(0),
                        start: Ts16(t),
                        end: Ts16(t + 1),
                        start_hash: 0,
                        end_hash: 0,
                    }));
                }
                q.flush()
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_reorder_checker,
    bench_uniproc_replay,
    bench_met_processing
);
criterion_main!(benches);
