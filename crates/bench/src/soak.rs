//! Soak/service harness (DESIGN.md §13): drives a [`System`] in service
//! mode — open-loop traffic, a consistency-model schedule applied
//! mid-run, an optional fault storm — and reduces the outcome to the
//! latency percentiles the acceptance gate checks.
//!
//! [`run_soak`] is a pure function of its [`SoakSpec`]: every seed is
//! inside the spec, windows stream through the caller's callback (display
//! only), and the returned [`SoakOutcome`] is what lands in the canonical
//! artifact — so `exp_soak`'s JSON is byte-identical at any `--jobs`.

use dvmc_consistency::Model;
use dvmc_faults::FaultPlan;
use dvmc_sim::{
    percentile, CheckpointMode, CheckpointStats, KernelMode, Protocol, RecoveryPolicy,
    SafetyNetConfig, ServiceReport, ServiceStop, SystemBuilder, WindowSnapshot,
};
use dvmc_types::rng::derive_seed;
use dvmc_types::Cycle;
use dvmc_workloads::spec::WorkloadKind;

/// A soak run's SafetyNet: a long recovery window (the paper's default
/// 100k-cycle window targets fast detections; a soak must also survive
/// latent corruption that surfaces only at eviction/CRC, ~2M cycles into
/// hot-block churn), traded against log depth as §6.2 discusses.
pub fn soak_ber() -> SafetyNetConfig {
    SafetyNetConfig {
        checkpoint_interval: 20_000,
        validation_latency: 10_000,
        max_checkpoints: 150, // 3M-cycle window
        coordination_bytes: 16,
    }
}

/// One fully specified soak cell.
#[derive(Clone, Debug)]
pub struct SoakSpec {
    /// Display/artifact tag.
    pub tag: String,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// `(model, segment length)` pairs applied in order; the horizon is
    /// their sum. Switches land at the first quiescent point of each
    /// segment.
    pub schedule: Vec<(Model, Cycle)>,
    /// Nodes (processors).
    pub nodes: usize,
    /// Mean open-loop inter-arrival gap per thread, in cycles.
    pub mean_gap: u32,
    /// Base seed (program and perturbation seeds derive from it).
    pub seed: u64,
    /// The fault storm, fully expanded (empty: fault-free soak).
    pub plans: Vec<FaultPlan>,
    /// Streaming-snapshot window length.
    pub window: Cycle,
    /// Per-episode rollback budget before the run gives up.
    pub max_retries: u32,
    /// Hang-watchdog threshold.
    pub watchdog: Cycle,
    /// Simulation kernel (legacy every-cycle vs event-scheduled); both
    /// produce bit-identical behaviour, so this only changes speed.
    pub kernel: KernelMode,
    /// Checkpoint scheme (whole snapshots vs the incremental delta log).
    pub checkpoint: CheckpointMode,
}

/// What [`run_soak`] hands back: the full service report plus the
/// percentile reductions the gate and the artifact use.
#[derive(Clone, Debug)]
pub struct SoakOutcome {
    /// The service-mode report (windows, episodes, final run report).
    pub service: ServiceReport,
    /// The configured horizon (sum of schedule segments).
    pub horizon: Cycle,
    /// p50 of injection-to-detection latency over detected episodes.
    pub p50_detection: Option<Cycle>,
    /// p99 of injection-to-detection latency.
    pub p99_detection: Option<Cycle>,
    /// p50 of detection-to-clean latency over recovered episodes.
    pub p50_recovery: Option<Cycle>,
    /// p99 of detection-to-clean latency.
    pub p99_recovery: Option<Cycle>,
    /// Cycles the kernel actually simulated.
    pub executed: u64,
    /// Cycles the event-scheduled kernel jumped over (0 under legacy).
    pub skipped: u64,
    /// Checkpoint/rollback cost counters for the whole run.
    pub checkpoint: CheckpointStats,
}

/// Runs one soak cell to its horizon (or fatal stop), streaming each
/// window snapshot through `on_window` as it closes.
///
/// # Panics
///
/// Panics on an empty schedule or an invalid system configuration.
pub fn run_soak(spec: &SoakSpec, on_window: &mut dyn FnMut(&WindowSnapshot)) -> SoakOutcome {
    let first_model = spec.schedule.first().expect("soak schedule must not be empty").0;
    let mut sys = SystemBuilder::new()
        .nodes(spec.nodes)
        .protocol(spec.protocol)
        .model(first_model)
        .workload(
            WorkloadKind::Service {
                mean_gap: spec.mean_gap,
            },
            u64::MAX / 2, // open-loop: the quota is never the terminator
        )
        .seed(spec.seed)
        .perturbation(derive_seed(spec.seed, 0x50AC))
        .storm(spec.plans.clone())
        .ber_config(soak_ber())
        .recovery(RecoveryPolicy {
            max_retries: spec.max_retries,
            backoff_factor: 2,
        })
        .watchdog(spec.watchdog)
        .obs(32)
        .kernel(spec.kernel)
        .checkpoint_mode(spec.checkpoint)
        .build();
    sys.arm_service(spec.window);
    let mut t: Cycle = 0;
    'schedule: for &(model, len) in &spec.schedule {
        let end = t + len;
        sys.switch_model(model);
        while t < end {
            t = (t + spec.window).min(end);
            if sys.run_service_until(t, on_window) != ServiceStop::Horizon {
                break 'schedule;
            }
            // A rollback can restore cores to a pre-switch snapshot; the
            // re-assert is idempotent, so issue it every chunk.
            sys.switch_model(model);
        }
    }
    let horizon: Cycle = spec.schedule.iter().map(|&(_, len)| len).sum();
    let (executed, skipped) = sys.kernel_stats();
    let checkpoint = sys.checkpoint_stats();
    let service = sys.finish_service();
    let det = service.detection_latencies();
    let rec = service.recovery_latencies();
    SoakOutcome {
        p50_detection: percentile(&det, 50),
        p99_detection: percentile(&det, 99),
        p50_recovery: percentile(&rec, 50),
        p99_recovery: percentile(&rec, 99),
        service,
        horizon,
        executed,
        skipped,
        checkpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_spec(seed: u64) -> SoakSpec {
        SoakSpec {
            tag: "test/quiet".into(),
            protocol: Protocol::Directory,
            schedule: vec![(Model::Tso, 30_000), (Model::Rmo, 30_000)],
            nodes: 2,
            mean_gap: 400,
            seed,
            plans: Vec::new(),
            window: 10_000,
            max_retries: 4,
            watchdog: 60_000,
            kernel: KernelMode::default(),
            checkpoint: CheckpointMode::default(),
        }
    }

    /// A fault-free soak is silent, reaches its horizon, and makes
    /// forward progress in every window.
    #[test]
    fn quiet_soak_is_silent_to_the_horizon() {
        let mut streamed = Vec::new();
        let got = run_soak(&quiet_spec(9), &mut |w| streamed.push(*w));
        assert_eq!(got.service.stopped, ServiceStop::Horizon);
        assert_eq!(got.service.injected, 0);
        assert!(got.service.episodes.is_empty());
        assert!(got.service.report.violations.is_empty());
        assert!(!got.service.report.hung);
        assert_eq!(got.p50_detection, None);
        assert_eq!(streamed.len(), 6, "60k horizon / 10k windows, exact tiling");
        assert!(got.service.windows.iter().all(|w| w.retired_ops > 0));
    }

    /// The same spec reproduces the same outcome — the determinism the
    /// canonical artifact's byte-compare gate rests on.
    #[test]
    fn soak_is_deterministic() {
        let a = run_soak(&quiet_spec(21), &mut |_| {});
        let b = run_soak(&quiet_spec(21), &mut |_| {});
        assert_eq!(format!("{:?}", a.service.windows), format!("{:?}", b.service.windows));
        assert_eq!(
            a.service.report.memory_digest,
            b.service.report.memory_digest
        );
    }
}
