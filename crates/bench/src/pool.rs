//! A minimal deterministic worker pool: the campaign runner's scheduling
//! pattern, factored out so other fan-out consumers (the analyzer's
//! parallel BFS frontier) share one implementation.
//!
//! Work distribution is a shared atomic cursor — an idle worker claims
//! the next unstarted item, so long items never leave the pool idle
//! behind a static partition. Results land at their submission index
//! regardless of completion order, which is the whole determinism story:
//! callers that fold the returned vector in index order observe the same
//! sequence at any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Applies `work` to every item of `items` on `jobs` worker threads
/// (clamped to at least one and at most the item count) and returns the
/// results in item order. `on_done(completed_so_far)` runs on the
/// calling thread after each completion, for progress reporting.
///
/// # Panics
///
/// Panics propagate from worker threads: a panicking `work` call poisons
/// the scope and re-raises on join, matching the inline-loop behavior at
/// `jobs = 1`. Callers that must survive panics catch them inside `work`.
pub fn parallel_map_indexed<T, R, F, P>(items: &[T], jobs: usize, work: F, mut on_done: P) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    P: FnMut(usize),
{
    let total = items.len();
    let workers = jobs.max(1).min(total.max(1));
    if workers <= 1 {
        // Inline fast path: no thread, channel, or slot overhead.
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let r = work(i, item);
                on_done(i + 1);
                r
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let work = &work;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if tx.send((i, work(i, item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut done = 0usize;
        for (i, r) in rx {
            done += 1;
            slots[i] = Some(r);
            on_done(done);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker finished without reporting an item"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_submission_order_at_any_worker_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let got = parallel_map_indexed(&items, jobs, |_, &i| i * i, |_| {});
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn progress_reports_every_completion() {
        let items = [1u8; 17];
        let mut seen = 0usize;
        let _ = parallel_map_indexed(&items, 4, |_, _| (), |done| seen = seen.max(done));
        assert_eq!(seen, 17);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u8> = parallel_map_indexed(&[] as &[u8], 8, |_, &b| b, |_| {});
        assert!(got.is_empty());
    }
}
