//! # Experiment harness
//!
//! Shared infrastructure for the binaries that regenerate every evaluation
//! artifact of the paper (Figures 3–9, the §6.1 error-detection study, and
//! the §6.3 hardware-cost table). Each binary prints the same rows/series
//! the paper reports; `EXPERIMENTS.md` records paper-vs-measured.
//!
//! Methodology follows §5: every configuration is run several times with
//! pseudo-random perturbations (ten in the paper; three by default here —
//! raise with `--runs=10`) and reported as mean ± one standard deviation.
//!
//! Common flags for all `exp_*` binaries:
//!
//! * `--runs=N` — perturbed repetitions per configuration (default 3)
//! * `--txns=N` — transactions per thread (default 24)
//! * `--nodes=N` — system size (default 8, max 255)
//! * `--seed=N` — base seed (default 42)
//! * `--jobs=N` — worker threads for the campaign runner (default: all
//!   available cores); results are bit-identical regardless of `N`
//! * `--protocol=directory|snooping` — where applicable

pub mod campaign;
pub mod pool;
pub mod soak;

pub use campaign::{Campaign, CampaignResult, Cell, CellOutcome};
pub use pool::parallel_map_indexed;
pub use soak::{run_soak, SoakOutcome, SoakSpec};

use dvmc_sim::{mean_std, Protection, Protocol, RunReport, System, SystemBuilder, SystemConfig};
use dvmc_workloads::spec::WorkloadKind;

/// Options parsed from the command line.
#[derive(Clone, Copy, Debug)]
pub struct ExpOpts {
    /// Perturbed repetitions per configuration (§5 uses ten).
    pub runs: u32,
    /// Transactions per thread.
    pub txns: u64,
    /// Nodes (processors).
    pub nodes: usize,
    /// Base seed.
    pub seed: u64,
    /// Protocol for single-protocol experiments.
    pub protocol: Protocol,
    /// Hard per-run cycle limit.
    pub max_cycles: u64,
    /// Campaign worker threads (`--jobs`; defaults to the core count).
    pub jobs: usize,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            runs: 3,
            txns: 24,
            nodes: 8,
            seed: 42,
            protocol: Protocol::Directory,
            max_cycles: 50_000_000,
            jobs: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }
}

impl ExpOpts {
    /// Parses `--key=value` style arguments; unknown arguments and
    /// out-of-range node counts abort with a usage message.
    pub fn from_args() -> ExpOpts {
        Self::from_args_with(|_, _| false)
    }

    /// Like [`from_args`](Self::from_args), but offers each argument to
    /// `extra` first; a `true` return consumes it (binaries with flags
    /// beyond the common set, e.g. `dvmc-campaign`). A bare flag without
    /// `=` reaches `extra` with an empty value (`--metrics` style); the
    /// common flags below all require `--key=value`.
    pub fn from_args_with(mut extra: impl FnMut(&str, &str) -> bool) -> ExpOpts {
        let mut o = ExpOpts::default();
        for arg in std::env::args().skip(1) {
            let (key, value) = arg.split_once('=').unwrap_or((arg.as_str(), ""));
            if extra(key, value) {
                continue;
            }
            if !arg.contains('=') {
                usage(&arg);
            }
            match key {
                "--runs" => o.runs = value.parse().unwrap_or_else(|_| usage(&arg)),
                "--txns" => o.txns = value.parse().unwrap_or_else(|_| usage(&arg)),
                "--nodes" => o.nodes = value.parse().unwrap_or_else(|_| usage(&arg)),
                "--seed" => o.seed = value.parse().unwrap_or_else(|_| usage(&arg)),
                "--max-cycles" => o.max_cycles = value.parse().unwrap_or_else(|_| usage(&arg)),
                "--jobs" => o.jobs = value.parse().unwrap_or_else(|_| usage(&arg)),
                "--protocol" => {
                    o.protocol = match value {
                        "directory" => Protocol::Directory,
                        "snooping" => Protocol::Snooping,
                        _ => usage(&arg),
                    }
                }
                _ => usage(&arg),
            }
        }
        // Reject what `SystemConfig::validate` would refuse later, before
        // any sweep expands (node identifiers are 8-bit; oversized counts
        // used to truncate silently).
        if o.nodes == 0 || o.nodes > u8::MAX as usize {
            eprintln!(
                "--nodes={} out of range: a system has 1..={} nodes (8-bit NodeId)",
                o.nodes,
                u8::MAX
            );
            std::process::exit(2)
        }
        o
    }
}

fn usage(arg: &str) -> ! {
    eprintln!("unrecognized argument: {arg}");
    eprintln!(
        "usage: exp_* [--runs=N] [--txns=N] [--nodes=N] [--seed=N] \
         [--max-cycles=N] [--jobs=N] [--protocol=directory|snooping]"
    );
    std::process::exit(2)
}

/// A fully specified run configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    /// Workload.
    pub kind: WorkloadKind,
    /// Consistency model.
    pub model: dvmc_consistency::Model,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Protection mechanisms.
    pub protection: Protection,
    /// Nodes.
    pub nodes: usize,
    /// Transactions per thread.
    pub txns: u64,
    /// Link bandwidth in bytes/cycle.
    pub link_bandwidth: u32,
}

impl RunSpec {
    /// A spec from the experiment options, TSO directory full-DVMC by
    /// default.
    pub fn new(opts: &ExpOpts, kind: WorkloadKind) -> RunSpec {
        RunSpec {
            kind,
            model: dvmc_consistency::Model::Tso,
            protocol: opts.protocol,
            protection: Protection::FULL,
            nodes: opts.nodes,
            txns: opts.txns,
            link_bandwidth: 2,
        }
    }

    /// The validated [`SystemConfig`] for this spec and seed pair — the
    /// campaign runner expands specs into configs up front and builds the
    /// systems later, on worker threads.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration ([`ExpOpts::from_args`] rejects
    /// out-of-range node counts before any spec is constructed).
    pub fn config(&self, base_seed: u64, perturbation: u64) -> SystemConfig {
        SystemBuilder::new()
            .nodes(self.nodes)
            .protocol(self.protocol)
            .model(self.model)
            .protection(self.protection)
            .link_bandwidth(self.link_bandwidth)
            .workload(self.kind, self.txns)
            .seed(base_seed)
            .perturbation(perturbation)
            .into_config()
            .unwrap_or_else(|e| panic!("invalid run spec {self:?}: {e}"))
    }

    fn build(&self, base_seed: u64, perturbation: u64) -> System {
        System::new(self.config(base_seed, perturbation))
    }
}

/// Runs a spec `opts.runs` times with §5-style perturbation seeds; panics
/// if any run fails to complete cleanly (evaluation runs are error-free).
pub fn run_spec(opts: &ExpOpts, spec: RunSpec) -> Vec<RunReport> {
    let reports = dvmc_sim::perturbed_runs(opts.runs, opts.seed, opts.max_cycles, |perturbation| {
        spec.build(opts.seed, perturbation)
    });
    for r in &reports {
        assert!(
            r.completed && !r.hung,
            "run did not complete: {spec:?} -> cycles={} hung={}",
            r.cycles,
            r.hung
        );
        assert!(
            r.violations.is_empty(),
            "error-free run raised violations: {spec:?} -> {:?}",
            r.violations
        );
    }
    reports
}

/// Mean ± std of the runtimes (cycles) of a report set (accepts owned
/// reports by reference or the borrowed groups a
/// [`CampaignResult`] hands out).
pub fn runtime_stats<'a>(reports: impl IntoIterator<Item = &'a RunReport>) -> (f64, f64) {
    let xs: Vec<f64> = reports.into_iter().map(|r| r.cycles as f64).collect();
    mean_std(&xs)
}

/// Normalizes `(mean, std)` against a baseline mean.
pub fn normalize(stats: (f64, f64), baseline_mean: f64) -> (f64, f64) {
    (stats.0 / baseline_mean, stats.1 / baseline_mean)
}

/// Formats `mean ± std` compactly.
pub fn fmt_pm((mean, std): (f64, f64)) -> String {
    format!("{mean:5.2} ±{std:4.2}")
}

/// Prints an aligned table: a header row followed by rows of equal arity.
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{:<w$}", c, w = widths[0]));
            } else {
                line.push_str(&format!("  {:>w$}", c, w = widths[i]));
            }
        }
        line
    };
    let head: Vec<String> = header.iter().map(std::string::ToString::to_string).collect();
    println!("{}", fmt_row(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The workloads in the paper's presentation order.
pub fn workloads() -> [WorkloadKind; 5] {
    WorkloadKind::ALL
}

/// For Figures 8 and 9: queues, under `prefix`, the unprotected and the
/// fully protected variant of every workload's spec (tags
/// `"{prefix}/{kind}/Base"` and `"{prefix}/{kind}/DVMC"`), with `make`
/// supplying the per-workload spec (protection is overridden here).
/// Aggregate with [`mean_ratio_of`].
pub fn push_ratio_cells(
    campaign: &mut Campaign,
    opts: &ExpOpts,
    prefix: &str,
    make: impl Fn(WorkloadKind) -> RunSpec,
) {
    for kind in workloads() {
        let mut spec = make(kind);
        for protection in [Protection::BASE, Protection::FULL] {
            spec.protection = protection;
            campaign.push_spec(opts, format!("{prefix}/{kind}/{}", protection.label()), spec);
        }
    }
}

/// The mean ± std (across workloads) of the ratio between the fully
/// protected and the unprotected system's runtime, over cells queued by
/// [`push_ratio_cells`] with the same `prefix`.
pub fn mean_ratio_of(result: &CampaignResult, prefix: &str) -> (f64, f64) {
    let mut ratios = Vec::new();
    for kind in workloads() {
        let base = runtime_stats(result.expect_clean(&format!("{prefix}/{kind}/Base"))).0;
        let full = runtime_stats(result.expect_clean(&format!("{prefix}/{kind}/DVMC"))).0;
        ratios.push(full / base);
    }
    mean_std(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_and_format() {
        let n = normalize((220.0, 11.0), 200.0);
        assert!((n.0 - 1.1).abs() < 1e-9);
        assert!((n.1 - 0.055).abs() < 1e-9);
        assert_eq!(fmt_pm((1.0, 0.05)), " 1.00 ±0.05");
    }

    #[test]
    fn small_run_spec_completes() {
        let opts = ExpOpts {
            runs: 1,
            txns: 2,
            nodes: 2,
            ..ExpOpts::default()
        };
        let spec = RunSpec::new(&opts, WorkloadKind::Jbb);
        let reports = run_spec(&opts, spec);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].cycles > 0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_checks_arity() {
        print_table("t", &["a", "b"], &[vec!["x".into()]]);
    }
}
