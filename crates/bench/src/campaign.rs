//! # Parallel campaign runner
//!
//! The experiment suite is embarrassingly parallel: every figure is a
//! sweep over (workload × model × protocol × protection × size × seed)
//! cells, and each cell is an independent [`dvmc_sim::System`] run. This
//! module fans those cells across a worker pool and aggregates the
//! [`RunReport`]s — the `exp_*` binaries expand their whole grid into one
//! [`Campaign`], run it once with `--jobs=N`, and read results back by
//! tag.
//!
//! ## Determinism contract
//!
//! Results are **bit-identical regardless of worker count**:
//!
//! * every cell's seeds are derived *during serial expansion* (via
//!   `dvmc_types::rng::perturbation_seed` /
//!   `dvmc_types::rng::campaign_cell_seed`), never from worker state;
//! * each cell runs as a pure function of its `SystemConfig`
//!   ([`dvmc_sim::run_cell`]), sharing nothing with its siblings;
//! * outcomes are stored at the cell's submission index, so aggregation
//!   order is the submission order, not the completion order;
//! * [`CampaignResult::canonical_json`] contains only simulation
//!   quantities (cycles, bytes, counts) — wall-clock timing lives in the
//!   separate `timing` section of [`CampaignResult::json`].
//!
//! `--jobs=1` therefore produces byte-identical canonical JSON to
//! `--jobs=8`; a regression test and the CI smoke job both assert this.

use crate::ExpOpts;
use dvmc_core::ObsMetrics;
use dvmc_sim::{RunReport, SystemConfig};


use std::time::{Duration, Instant};

/// One unit of work: a fully specified simulation run.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Aggregation key; cells sharing a tag form one report group
    /// (typically the `opts.runs` perturbed trials of one configuration).
    pub tag: String,
    /// Trial index within the tag (the §5 perturbation index).
    pub trial: u32,
    /// The complete system configuration, seeds included.
    pub cfg: SystemConfig,
    /// Hard cycle limit for this cell.
    pub max_cycles: u64,
}

/// A completed cell: its report plus the wall-clock time it took.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell's aggregation tag.
    pub tag: String,
    /// The cell's trial index.
    pub trial: u32,
    /// The simulation report.
    pub report: RunReport,
    /// Wall-clock duration of this cell alone (timing only — never part
    /// of the canonical output).
    pub wall: Duration,
}

/// A batch of independent simulation cells to run.
#[derive(Clone, Debug, Default)]
pub struct Campaign {
    cells: Vec<Cell>,
    obs_capacity: usize,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Campaign {
        Campaign::default()
    }

    /// Number of cells queued.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are queued.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Queues one cell.
    pub fn push(
        &mut self,
        tag: impl Into<String>,
        trial: u32,
        mut cfg: SystemConfig,
        max_cycles: u64,
    ) {
        if self.obs_capacity > 0 {
            cfg.obs_capacity = self.obs_capacity;
        }
        self.cells.push(Cell {
            tag: tag.into(),
            trial,
            cfg,
            max_cycles,
        });
    }

    /// Attaches checker observability rings of `capacity` events to every
    /// queued and future cell (the `--metrics` flag). Metrics are pure
    /// simulation quantities, so the determinism contract extends to
    /// [`CampaignResult::obs_json`].
    pub fn enable_obs(&mut self, capacity: usize) {
        self.obs_capacity = capacity;
        for cell in &mut self.cells {
            cell.cfg.obs_capacity = capacity;
        }
    }

    /// Queues `opts.runs` perturbed trials of `spec` under `tag`, with
    /// the same per-trial seeds the serial harness
    /// ([`crate::run_spec`]) uses — porting a binary onto the campaign
    /// runner changes the schedule, never the numbers.
    pub fn push_spec(&mut self, opts: &ExpOpts, tag: impl Into<String>, spec: crate::RunSpec) {
        let tag = tag.into();
        for trial in 0..opts.runs {
            let perturbation = dvmc_types::rng::perturbation_seed(opts.seed, trial);
            self.push(
                tag.clone(),
                trial,
                spec.config(opts.seed, perturbation),
                opts.max_cycles,
            );
        }
    }

    /// Runs every cell on a pool of `jobs` worker threads (clamped to at
    /// least one) and returns the aggregated result. Progress is reported
    /// on stderr.
    ///
    /// Work distribution is a shared atomic cursor — an idle worker takes
    /// the next unstarted cell, so long cells never leave the pool idle
    /// behind a static partition. Outcomes land at their submission
    /// index regardless of completion order (see the module-level
    /// determinism contract).
    pub fn run(&self, jobs: usize) -> CampaignResult {
        let total = self.cells.len();
        let workers = jobs.max(1).min(total.max(1));
        let started = Instant::now();
        let results = crate::pool::parallel_map_indexed(
            &self.cells,
            workers,
            |_, cell| {
                let t0 = Instant::now();
                let report = dvmc_sim::run_cell(&cell.cfg, cell.max_cycles);
                (report, t0.elapsed())
            },
            |done| {
                eprint!(
                    "\r[campaign] {done}/{total} cells ({workers} workers, {:.1}s)   ",
                    started.elapsed().as_secs_f64()
                );
            },
        );
        if total > 0 {
            eprintln!();
        }
        let outcomes = self
            .cells
            .iter()
            .zip(results)
            .map(|(cell, (report, wall))| CellOutcome {
                tag: cell.tag.clone(),
                trial: cell.trial,
                report,
                wall,
            })
            .collect();
        CampaignResult {
            outcomes,
            wall: started.elapsed(),
            jobs: workers,
        }
    }
}

/// The aggregated outcome of a [`Campaign::run`].
#[derive(Clone, Debug)]
pub struct CampaignResult {
    outcomes: Vec<CellOutcome>,
    wall: Duration,
    jobs: usize,
}

impl CampaignResult {
    /// All outcomes, in submission order.
    pub fn outcomes(&self) -> &[CellOutcome] {
        &self.outcomes
    }

    /// The reports filed under `tag`, in trial (submission) order.
    pub fn reports(&self, tag: &str) -> Vec<&RunReport> {
        self.outcomes
            .iter()
            .filter(|o| o.tag == tag)
            .map(|o| &o.report)
            .collect()
    }

    /// Like [`reports`](Self::reports), but asserts every run completed
    /// cleanly — the campaign equivalent of [`crate::run_spec`]'s
    /// invariant for error-free evaluation runs.
    ///
    /// # Panics
    ///
    /// Panics if no cell carries `tag`, or if any run hung, hit its cycle
    /// limit, or raised a violation.
    pub fn expect_clean(&self, tag: &str) -> Vec<&RunReport> {
        let reports = self.reports(tag);
        assert!(!reports.is_empty(), "no campaign cells tagged {tag:?}");
        for r in &reports {
            assert!(
                r.completed && !r.hung,
                "run did not complete: {tag} -> cycles={} hung={}",
                r.cycles,
                r.hung
            );
            assert!(
                r.violations.is_empty(),
                "error-free run raised violations: {tag} -> {:?}",
                r.violations
            );
        }
        reports
    }

    /// Worker threads actually used.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Wall-clock duration of the whole campaign.
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// Sum of the cells' individual wall-clock durations — what a serial
    /// (`--jobs=1`) schedule would have cost, up to scheduling noise.
    pub fn serial_wall(&self) -> Duration {
        self.outcomes.iter().map(|o| o.wall).sum()
    }

    /// Observed speedup over a serial schedule.
    pub fn speedup(&self) -> f64 {
        self.serial_wall().as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }

    /// Deterministic JSON: per-cell simulation quantities only (integers
    /// and booleans — no timing, no floats), in submission order. Two
    /// runs of the same campaign produce byte-identical canonical JSON
    /// regardless of `--jobs`.
    pub fn canonical_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"dvmc-campaign/v1\",\n  \"cells\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let r = &o.report;
            let detection = match &r.detection {
                Some(d) => format!(
                    "{{\"injected_at\": {}, \"detected_at\": {}, \"latency\": {}, \"recoverable\": {}}}",
                    d.injected_at,
                    d.detected_at,
                    d.latency(),
                    d.recoverable
                ),
                None => "null".into(),
            };
            let recovery = match &r.recovery {
                Some(rec) => format!(
                    "{{\"attempts\": {}, \"escalations\": {}, \"checkpoint\": {}, \"recovered\": {}}}",
                    rec.attempts,
                    rec.escalations,
                    rec.checkpoint,
                    rec.outcome == dvmc_sim::RecoveryOutcome::Recovered
                ),
                None => "null".into(),
            };
            let obs = if r.obs.is_empty() {
                "null".to_string()
            } else {
                let mut total = ObsMetrics::default();
                for m in &r.obs {
                    total.merge(m);
                }
                obs_metrics_json(&total)
            };
            out.push_str(&format!(
                "    {{\"tag\": {}, \"trial\": {}, \"cycles\": {}, \"transactions\": {}, \
                 \"completed\": {}, \"hung\": {}, \"violations\": {}, \"detection\": {}, \
                 \"max_link_bytes\": {}, \"total_bytes\": {}, \"checker_bytes\": {}, \
                 \"ber_bytes\": {}, \"recovery\": {}, \"memory_digest\": {}, \"obs\": {}}}{}\n",
                json_str(&o.tag),
                o.trial,
                r.cycles,
                r.transactions,
                r.completed,
                r.hung,
                r.violations.len(),
                detection,
                r.max_link_bytes,
                r.total_bytes,
                r.checker_bytes,
                r.ber_bytes,
                recovery,
                r.memory_digest,
                obs,
                if i + 1 < self.outcomes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Full JSON: the canonical cells plus a `timing` section (jobs,
    /// wall-clock, serial-equivalent, speedup). The timing section is the
    /// only part that varies between runs.
    pub fn json(&self) -> String {
        let canonical = self.canonical_json();
        let body = canonical
            .strip_suffix("  ]\n}\n")
            .expect("canonical JSON ends with its cells array");
        format!(
            "{body}  ],\n  \"timing\": {{\"jobs\": {}, \"wall_ms\": {}, \"serial_ms\": {}, \
             \"speedup\": {:.2}}}\n}}\n",
            self.jobs,
            self.wall.as_millis(),
            self.serial_wall().as_millis(),
            self.speedup()
        )
    }

    /// Deterministic observability JSON (the `--metrics` artifact,
    /// `results/BENCH_obs.json`): per-cell, per-node checker metrics plus
    /// the forensic event chain of any detection, in submission order.
    /// Simulation quantities only — byte-identical regardless of
    /// `--jobs`, like [`canonical_json`](Self::canonical_json).
    pub fn obs_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"dvmc-campaign-obs/v1\",\n  \"cells\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let r = &o.report;
            let nodes: Vec<String> = r.obs.iter().map(obs_metrics_json).collect();
            let forensics = match &r.forensics {
                Some(f) => format!(
                    "{{\"node\": {}, \"cycle\": {}, \"events\": {}, \"chain\": {}}}",
                    f.node.index(),
                    f.cycle,
                    f.trace.len(),
                    json_str(&f.chain())
                ),
                None => "null".into(),
            };
            out.push_str(&format!(
                "    {{\"tag\": {}, \"trial\": {}, \"nodes\": [{}], \"forensics\": {}}}{}\n",
                json_str(&o.tag),
                o.trial,
                nodes.join(", "),
                forensics,
                if i + 1 < self.outcomes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the canonical (timing-free) JSON to `path`, creating parent
    /// directories. This is the variant to publish when the artifact
    /// itself is byte-compared across `--jobs` values.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_canonical_json(&self, path: &std::path::Path) {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(path, self.canonical_json())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!(
            "[campaign] wrote {} ({} cells, canonical)",
            path.display(),
            self.outcomes.len()
        );
    }

    /// Writes the full JSON to `path`, creating parent directories.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_json(&self, path: &std::path::Path) {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(path, self.json())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!(
            "[campaign] wrote {} ({} cells, {} workers, speedup {:.2}x)",
            path.display(),
            self.outcomes.len(),
            self.jobs,
            self.speedup()
        );
    }
}

/// One [`ObsMetrics`] as a JSON object with a fixed key order.
fn obs_metrics_json(m: &ObsMetrics) -> String {
    format!(
        "{{\"events\": {}, \"vc_allocs\": {}, \"vc_deallocs\": {}, \"replay_vc_hits\": {}, \
         \"replay_cache_reads\": {}, \"max_op_updates\": {}, \"membar_checks\": {}, \
         \"epoch_opens\": {}, \"epoch_closes\": {}, \"scrubs\": {}, \"informs_enqueued\": {}, \
         \"informs_reordered\": {}, \"crc_checks\": {}, \"sorter_occupancy_hwm\": {}, \
         \"recoveries_started\": {}, \"recoveries_completed\": {}, \"recovery_escalations\": {}}}",
        m.events,
        m.vc_allocs,
        m.vc_deallocs,
        m.replay_vc_hits,
        m.replay_cache_reads,
        m.max_op_updates,
        m.membar_checks,
        m.epoch_opens,
        m.epoch_closes,
        m.scrubs,
        m.informs_enqueued,
        m.informs_reordered,
        m.crc_checks,
        m.sorter_occupancy_hwm,
        m.recoveries_started,
        m.recoveries_completed,
        m.recovery_escalations
    )
}

/// Minimal JSON string escaping (tags are ASCII identifiers, but quote
/// them defensively). Shared with the `exp_*` binaries that emit their
/// own canonical artifacts (e.g. `exp_fuzz`).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunSpec;
    use dvmc_workloads::spec::WorkloadKind;

    fn tiny_opts() -> ExpOpts {
        ExpOpts {
            runs: 2,
            txns: 2,
            nodes: 2,
            ..ExpOpts::default()
        }
    }

    #[test]
    fn campaign_matches_serial_harness() {
        // Porting a spec onto the campaign must not change its numbers.
        let opts = tiny_opts();
        let spec = RunSpec::new(&opts, WorkloadKind::Jbb);
        let serial = crate::run_spec(&opts, spec);
        let mut campaign = Campaign::new();
        campaign.push_spec(&opts, "jbb", spec);
        let result = campaign.run(2);
        let parallel = result.expect_clean("jbb");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel) {
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.transactions, p.transactions);
            assert_eq!(s.total_bytes, p.total_bytes);
        }
    }

    #[test]
    fn outcomes_keep_submission_order() {
        let opts = tiny_opts();
        let mut campaign = Campaign::new();
        campaign.push_spec(&opts, "a", RunSpec::new(&opts, WorkloadKind::Jbb));
        campaign.push_spec(&opts, "b", RunSpec::new(&opts, WorkloadKind::Apache));
        let result = campaign.run(4);
        let tags: Vec<&str> = result.outcomes().iter().map(|o| o.tag.as_str()).collect();
        assert_eq!(tags, ["a", "a", "b", "b"]);
        let trials: Vec<u32> = result.outcomes().iter().map(|o| o.trial).collect();
        assert_eq!(trials, [0, 1, 0, 1]);
    }

    #[test]
    fn json_shapes() {
        let opts = ExpOpts {
            runs: 1,
            ..tiny_opts()
        };
        let mut campaign = Campaign::new();
        campaign.push_spec(&opts, "jbb", RunSpec::new(&opts, WorkloadKind::Jbb));
        let result = campaign.run(1);
        let canonical = result.canonical_json();
        assert!(canonical.contains("\"schema\": \"dvmc-campaign/v1\""));
        assert!(canonical.contains("\"tag\": \"jbb\""));
        assert!(!canonical.contains("timing"), "canonical JSON carries no timing");
        let full = result.json();
        assert!(full.starts_with(canonical.strip_suffix("  ]\n}\n").unwrap()));
        assert!(full.contains("\"timing\""));
        assert!(full.contains("\"jobs\": 1"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_campaign_runs() {
        let result = Campaign::new().run(4);
        assert!(result.outcomes().is_empty());
        assert!(result.canonical_json().contains("\"cells\": [\n  ]"));
    }

    #[test]
    fn obs_json_is_byte_identical_across_jobs() {
        let opts = tiny_opts();
        let build = || {
            let mut campaign = Campaign::new();
            campaign.push_spec(&opts, "jbb", RunSpec::new(&opts, WorkloadKind::Jbb));
            campaign.enable_obs(16);
            campaign
        };
        let serial = build().run(1);
        let parallel = build().run(2);
        assert_eq!(serial.obs_json(), parallel.obs_json());
        assert_eq!(serial.canonical_json(), parallel.canonical_json());
        // The instrumented cells actually recorded checker activity …
        let obs = serial.obs_json();
        assert!(obs.contains("\"schema\": \"dvmc-campaign-obs/v1\""));
        assert!(obs.contains("\"vc_allocs\""));
        assert!(serial.canonical_json().contains("\"obs\": {"));
        // … while an uninstrumented campaign reports none.
        let mut plain = Campaign::new();
        plain.push_spec(&opts, "jbb", RunSpec::new(&opts, WorkloadKind::Jbb));
        let plain = plain.run(1);
        assert!(plain.canonical_json().contains("\"obs\": null"));
        assert!(plain.obs_json().contains("\"nodes\": []"));
    }
}
