//! **Figure 7**: mean bandwidth on the most heavily loaded interconnect
//! link for Base, SN, SN+DVCC, and full DVMC (directory TSO).
//!
//! Paper shape to reproduce: coherence verification (DVCC) imposes a
//! consistent ~20–30% traffic overhead from Inform-Epoch messages; load
//! replay has no measurable bandwidth impact; SafetyNet adds little.

use dvmc_bench::{print_table, Campaign, ExpOpts, RunSpec};
use dvmc_sim::{Protection, RunReport};

const CONFIGS: [Protection; 4] = [
    Protection::BASE,
    Protection::SN,
    Protection::SN_DVCC,
    Protection::FULL,
];

fn max_link_bw(reports: &[&RunReport]) -> f64 {
    let xs: Vec<f64> = reports.iter().map(|r| r.max_link_bandwidth()).collect();
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn checker_share(reports: &[&RunReport]) -> f64 {
    let checker: u64 = reports.iter().map(|r| r.checker_bytes).sum();
    let total: u64 = reports.iter().map(|r| r.total_bytes).sum();
    checker as f64 / total.max(1) as f64
}

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure 7 — mean bandwidth on the most-loaded link, bytes/cycle (TSO, {:?}, {} nodes, {} runs, {} jobs)",
        opts.protocol, opts.nodes, opts.runs, opts.jobs
    );

    let mut campaign = Campaign::new();
    for kind in dvmc_bench::workloads() {
        for protection in CONFIGS {
            let mut spec = RunSpec::new(&opts, kind);
            spec.protection = protection;
            campaign.push_spec(&opts, format!("{kind}/{}", protection.label()), spec);
        }
    }
    let result = campaign.run(opts.jobs);

    let header = vec![
        "workload", "Base", "SN", "SN+DVCC", "DVMC", "DVCC overhead", "inform share",
    ];
    let mut rows = Vec::new();
    for kind in dvmc_bench::workloads() {
        let mut bws = Vec::new();
        let mut informs = 0.0;
        for protection in CONFIGS {
            let reports = result.expect_clean(&format!("{kind}/{}", protection.label()));
            bws.push(max_link_bw(&reports));
            if protection == Protection::FULL {
                informs = checker_share(&reports);
            }
        }
        let overhead = (bws[2] / bws[1].max(1e-9) - 1.0) * 100.0;
        rows.push(vec![
            kind.to_string(),
            format!("{:.3}", bws[0]),
            format!("{:.3}", bws[1]),
            format!("{:.3}", bws[2]),
            format!("{:.3}", bws[3]),
            format!("{:+.1}%", overhead),
            format!("{:.1}%", informs * 100.0),
        ]);
    }
    print_table("max-link bandwidth", &header, &rows);
    println!("\n(\"DVCC overhead\" compares SN+DVCC against SN, isolating Inform-Epoch traffic;");
    println!(" the paper reports a consistent 20-30% band.)");
}
