//! **Figure 9**: DVMC runtime overhead (DVTSO / unprotected) as a
//! function of processor count (1–8 nodes), for both protocols.
//!
//! Paper shape to reproduce: no strong correlation between system size and
//! DVMC overhead — checker traffic is all unicast and scales linearly with
//! demand traffic, so relative bandwidth consumption stays constant.

use dvmc_bench::{fmt_pm, mean_ratio_of, print_table, push_ratio_cells, Campaign, ExpOpts, RunSpec};
use dvmc_sim::Protocol;

fn main() {
    let opts = ExpOpts::from_args();
    let node_counts = [1usize, 2, 4, 8];
    println!(
        "Figure 9 — DVMC overhead vs processor count ({} runs, {} jobs, mean over workloads)",
        opts.runs, opts.jobs
    );

    let mut campaign = Campaign::new();
    for protocol in [Protocol::Directory, Protocol::Snooping] {
        for nodes in node_counts {
            let mut o = opts;
            o.nodes = nodes;
            push_ratio_cells(&mut campaign, &o, &format!("{protocol:?}/{nodes}p"), |kind| {
                let mut spec = RunSpec::new(&o, kind);
                spec.protocol = protocol;
                spec
            });
        }
    }
    let result = campaign.run(opts.jobs);

    let header = vec!["protocol", "1p", "2p", "4p", "8p"];
    let mut rows = Vec::new();
    for protocol in [Protocol::Directory, Protocol::Snooping] {
        let mut row = vec![format!("{protocol:?}")];
        for nodes in node_counts {
            row.push(fmt_pm(mean_ratio_of(&result, &format!("{protocol:?}/{nodes}p"))));
        }
        rows.push(row);
    }
    print_table(
        "runtime of DVMC system normalized to unprotected system",
        &header,
        &rows,
    );
    println!("\n(The paper finds no strong correlation between system size and overhead.)");
}
