//! **Figure 9**: DVMC runtime overhead (DVTSO / unprotected) as a
//! function of processor count (1–8 nodes), for both protocols.
//!
//! Paper shape to reproduce: no strong correlation between system size and
//! DVMC overhead — checker traffic is all unicast and scales linearly with
//! demand traffic, so relative bandwidth consumption stays constant.

use dvmc_bench::{fmt_pm, mean_ratio, print_table, ExpOpts, RunSpec};
use dvmc_sim::Protocol;

fn main() {
    let opts = ExpOpts::from_args();
    let node_counts = [1usize, 2, 4, 8];
    println!(
        "Figure 9 — DVMC overhead vs processor count ({} runs, mean over workloads)",
        opts.runs
    );

    let header = vec!["protocol", "1p", "2p", "4p", "8p"];
    let mut rows = Vec::new();
    for protocol in [Protocol::Directory, Protocol::Snooping] {
        let mut row = vec![format!("{protocol:?}")];
        for nodes in node_counts {
            let mut o = opts;
            o.nodes = nodes;
            let stats = mean_ratio(&o, |kind| {
                let mut spec = RunSpec::new(&o, kind);
                spec.protocol = protocol;
                spec
            });
            row.push(fmt_pm(stats));
        }
        rows.push(row);
    }
    print_table(
        "runtime of DVMC system normalized to unprotected system",
        &header,
        &rows,
    );
    println!("\n(The paper finds no strong correlation between system size and overhead.)");
}
