//! **§6.1 error detection**: injects randomly chosen errors (type, time,
//! location) into running benchmarks and reports detection rate, detection
//! latency, and recoverability, for all four consistency models on both
//! protocols — plus a per-category coverage sweep.
//!
//! Paper result to reproduce: DVMC detected **all** injected errors well
//! within the SafetyNet recovery window (~100k cycles), with a valid
//! checkpoint still available at detection time.
//!
//! All fault plans are drawn *serially* during campaign expansion (the
//! random sequence per (model, protocol) is fixed by the seed), so the
//! trial set — and therefore every number below — is independent of
//! `--jobs`.
//!
//! Observability rings are attached to every trial, so each detection is
//! attributed to the checker event chain that led up to it (the forensics
//! listing after the coverage table).

use dvmc_bench::{print_table, Campaign, ExpOpts};
use dvmc_consistency::Model;
use dvmc_faults::{all_faults, random_plan, FaultPlan};
use dvmc_sim::{Protocol, RunReport, SystemBuilder, SystemConfig};
use dvmc_types::rng::det_rng;
use dvmc_types::NodeId;
use dvmc_workloads::spec::WorkloadKind;

const MAX_CYCLES: u64 = 3_000_000;

struct Trial {
    detected: bool,
    /// Detection happened in the end-of-run audit sweep rather than live
    /// (the fault's consequence stayed latent for the whole run).
    audit: bool,
    latency: u64,
    recoverable: bool,
}

// A fault that never manifests (e.g. a duplicated message absorbed by the
// protocol) is *masked*: there is no error to detect. The paper's trials
// run "until the error is detected", implying manifest errors only.

fn trial_config(
    opts: &ExpOpts,
    model: Model,
    protocol: Protocol,
    plan: FaultPlan,
    seed: u64,
) -> SystemConfig {
    SystemBuilder::new()
        .nodes(opts.nodes)
        .model(model)
        .protocol(protocol)
        .workload(WorkloadKind::Oltp, u64::MAX / 2) // run until detection
        .seed(seed)
        .fault(plan)
        .watchdog(100_000)
        .max_cycles(MAX_CYCLES)
        .into_config()
        .expect("valid trial config")
}

fn trial_of(report: &RunReport) -> Trial {
    match &report.detection {
        Some(d) => Trial {
            detected: true,
            audit: d.detected_at >= MAX_CYCLES,
            latency: d.latency(),
            recoverable: d.recoverable,
        },
        None => Trial {
            detected: false,
            audit: false,
            latency: 0,
            recoverable: false,
        },
    }
}

const MODELS: [Model; 4] = [Model::Sc, Model::Tso, Model::Pso, Model::Rmo];
const PROTOCOLS: [Protocol; 2] = [Protocol::Directory, Protocol::Snooping];

fn main() {
    let opts = ExpOpts::from_args();
    let trials_per_config = opts.runs.max(2);
    println!(
        "§6.1 — error detection: {} random trials per (model, protocol), {} nodes, {} jobs",
        trials_per_config, opts.nodes, opts.jobs
    );

    // Phase 1: expand both sweeps into one campaign.
    let mut campaign = Campaign::new();
    for model in MODELS {
        for protocol in PROTOCOLS {
            let mut rng = det_rng(opts.seed ^ model as u64 ^ ((protocol as u64) << 8));
            for t in 0..trials_per_config {
                let plan = random_plan(&mut rng, opts.nodes, 10_000, 60_000);
                campaign.push(
                    format!("random/{model}/{protocol:?}"),
                    t,
                    trial_config(&opts, model, protocol, plan, opts.seed + t as u64),
                    MAX_CYCLES,
                );
            }
        }
    }
    let category_faults = all_faults(NodeId(1), NodeId(2));
    for (i, fault) in category_faults.iter().enumerate() {
        let plan = FaultPlan {
            at_cycle: 20_000,
            fault: *fault,
        };
        campaign.push(
            format!("cat/{fault}"),
            0,
            trial_config(&opts, Model::Tso, opts.protocol, plan, opts.seed + 1000 + i as u64),
            MAX_CYCLES,
        );
    }
    // Event rings on every trial: each detection must be attributable to
    // the checker event chain that produced it.
    campaign.enable_obs(16);
    let result = campaign.run(opts.jobs);

    // Phase 2: aggregate the random-plan sweep (the paper's design).
    let mut rows = Vec::new();
    for model in MODELS {
        for protocol in PROTOCOLS {
            let mut detected = 0;
            let mut audits = 0;
            let mut masked = 0;
            let mut recoverable = 0;
            let mut latencies = Vec::new();
            for report in result.reports(&format!("random/{model}/{protocol:?}")) {
                let trial = trial_of(report);
                if trial.detected {
                    detected += 1;
                    if trial.audit {
                        audits += 1;
                    } else {
                        latencies.push(trial.latency as f64);
                    }
                    if trial.recoverable {
                        recoverable += 1;
                    }
                } else {
                    masked += 1;
                }
            }
            let mean_lat = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
            let max_lat = latencies.iter().copied().fold(0.0, f64::max);
            rows.push(vec![
                format!("{model}"),
                format!("{protocol:?}"),
                format!("{detected}/{trials_per_config}"),
                format!("{audits}"),
                format!("{masked}"),
                format!("{recoverable}/{detected}"),
                format!("{mean_lat:.0}"),
                format!("{max_lat:.0}"),
            ]);
        }
    }
    print_table(
        "random fault injection",
        &["model", "protocol", "detected", "audit", "masked", "recoverable", "mean latency", "max latency"],
        &rows,
    );
    println!("(masked = the fault never manifested an error — e.g. a duplicated");
    println!(" message absorbed by the protocol — so there was nothing to detect.");
    println!(" audit = the consequence stayed latent for the whole run and was");
    println!(" exposed by the end-of-run epoch audit; latency stats cover live");
    println!(" detections only.)");

    // Category coverage: one fault of every kind on the default config.
    let mut rows = Vec::new();
    for fault in &category_faults {
        let reports = result.reports(&format!("cat/{fault}"));
        let trial = trial_of(reports[0]);
        rows.push(vec![
            fault.to_string(),
            if !trial.detected {
                "masked"
            } else if trial.audit {
                "audit"
            } else {
                "yes"
            }
            .to_string(),
            if trial.detected && !trial.audit {
                format!("{}", trial.latency)
            } else {
                "-".into()
            },
            if trial.recoverable { "yes" } else { "no" }.to_string(),
        ]);
    }
    print_table(
        "per-category coverage (TSO)",
        &["fault", "detected", "latency", "recoverable"],
        &rows,
    );
    println!("\n(The paper reports every injected error detected within the SafetyNet");
    println!(" window of ~100k cycles; hang-class faults are detected by timeout.)");

    // Forensics: the checker event chain behind every detection. Every
    // detection must carry one — a detection we cannot attribute would
    // mean a checker fired without recording its own activity.
    println!("\n=== detection forensics (checker event chains) ===");
    for outcome in result.outcomes() {
        let report = &outcome.report;
        if report.detection.is_none() {
            continue;
        }
        let forensics = report
            .forensics
            .as_ref()
            .unwrap_or_else(|| panic!("detection without forensics: {}", outcome.tag));
        assert!(
            !forensics.trace.is_empty(),
            "empty forensic trace for {}: node{} at cycle {}",
            outcome.tag,
            forensics.node.index(),
            forensics.cycle
        );
        println!(
            "{}[{}]: node{} @{}: {}",
            outcome.tag,
            outcome.trial,
            forensics.node.index(),
            forensics.cycle,
            forensics.chain()
        );
    }
}
