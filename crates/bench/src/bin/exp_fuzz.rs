//! **Adversarial fuzz campaign**: diy-style random litmus programs
//! (`dvmc_workloads::fuzz`) run on the full simulated machine with the
//! online DVMC checkers armed, each execution cross-checked against the
//! offline polynomial-time oracle (`dvmc_consistency::oracle`). The two
//! verifiers are independent implementations of the same ordering tables,
//! so on an error-free run they must agree: the checkers pass *and* the
//! oracle says `Allowed`. Any disagreement is automatically a bug in one
//! of them and fails the run loudly, with the generated program listing
//! and the machine's forensics attached (DESIGN.md §12).
//!
//! Grid: every evaluated model × both coherence protocols × `--programs`
//! seeds. Every eighth program also arms checkpoint/rollback/replay and
//! injects a transient cache fault mid-run, so the cross-check covers
//! recovered executions (the commit log reflects the final, replayed
//! timeline).
//!
//! `--mutant=drop-sl` self-tests the harness: it emulates an online
//! checker that lost the SC table's Store→Load edge (behaviorally: the
//! machine and checkers run TSO while the oracle holds the SC table) and
//! demands the oracle catches the discrepancy on at least one program.
//! A fuzzer that cannot catch a seeded checker bug proves nothing.
//!
//! Every cell is a pure function of its config, all seeds are fixed at
//! expansion time, and disagreement aggregation happens serially in
//! submission order — so `--out` is byte-identical at any `--jobs` (the
//! CI gate compares `--jobs=1` against `--jobs=2`).

use dvmc_bench::campaign::json_str;
use dvmc_bench::{print_table, Campaign, ExpOpts};
use dvmc_consistency::{verify, CommitRecord, Model, Verdict};
use dvmc_faults::{Fault, FaultPlan};
use dvmc_sim::{Protocol, RecoveryPolicy, RunReport, SystemBuilder, SystemConfig};
use dvmc_types::rng::derive_seed;
use dvmc_types::NodeId;
use dvmc_workloads::spec::WorkloadKind;
use dvmc_workloads::{generate_fuzz_program, generate_fuzz_program_with, AddrMix, FuzzProgram};

const MAX_CYCLES: u64 = 2_000_000;

/// Per-cell metadata kept in submission order, zipped against the
/// campaign outcomes during serial aggregation.
struct TrialMeta {
    tag: String,
    program: FuzzProgram,
    /// The table the *oracle* verifies against. Equal to the machine's
    /// model except in mutant mode, where the gap between the two *is*
    /// the seeded checker bug.
    oracle_model: Model,
    faulted: bool,
}

/// One fuzz cell: `program_seed` fixes the program (via the workload
/// layer), derived seeds fix the machine RNG and the timing jitter.
fn cell(
    program: &FuzzProgram,
    machine_model: Model,
    protocol: Protocol,
    program_seed: u64,
    faulted: bool,
) -> SystemConfig {
    let kind = match program.mix {
        AddrMix::Disjoint => WorkloadKind::Fuzz(program_seed),
        AddrMix::Mixed => WorkloadKind::FuzzMixed(program_seed),
    };
    let mut b = SystemBuilder::new()
        .nodes(program.threads())
        .model(machine_model)
        .protocol(protocol)
        .dvmc(true)
        .workload(kind, 1)
        .seed(derive_seed(program_seed, 1))
        .perturbation(derive_seed(program_seed, 2))
        .record_commits(true)
        .watchdog(200_000)
        .max_cycles(MAX_CYCLES);
    if faulted {
        b = b
            .recovery(RecoveryPolicy::default())
            .fault(FaultPlan {
                at_cycle: 100,
                fault: Fault::CacheBitFlip { node: NodeId(0) },
            });
    }
    b.into_config().expect("valid fuzz cell")
}

/// Cross-checks one outcome; returns `Some(description)` on disagreement.
fn cross_check(meta: &TrialMeta, report: &RunReport) -> (Verdict, Option<String>) {
    assert!(
        report.completed && !report.hung,
        "{}: fuzz run did not complete (cycles={}, hung={})",
        meta.tag,
        report.cycles,
        report.hung
    );
    let online_pass = report.violations.is_empty();
    let verdict = verify(meta.oracle_model.table(), &report.commit_logs);
    if online_pass == verdict.is_allowed() {
        return (verdict, None);
    }
    let side = if online_pass {
        "online checkers PASSED but the offline oracle says Forbidden"
    } else {
        "online checkers raised a violation but the offline oracle says Allowed"
    };
    let mut desc = format!(
        "{}: {side}\n{}oracle ({} table): {verdict:?}\nonline violations: {:?}\n",
        meta.tag,
        meta.program.render(),
        meta.oracle_model,
        report.violations,
    );
    if let Some(f) = &report.forensics {
        use std::fmt::Write;
        let _ = writeln!(desc, "forensics: node{} @{}: {}", f.node.index(), f.cycle, f.chain());
    }
    (verdict, Some(desc))
}

/// Total committed operations across all cores — a cheap, deterministic
/// fingerprint of the execution for the canonical artifact.
fn commit_count(logs: &[Vec<CommitRecord>]) -> usize {
    logs.iter().map(Vec::len).sum()
}

fn main() {
    let mut programs: u64 = 64;
    let mut out = String::from("results/BENCH_fuzz.json");
    let mut mutant: Option<String> = None;
    let mut mixed = false;
    let opts = ExpOpts::from_args_with(|key, value| match key {
        "--programs" => {
            programs = value.parse().expect("--programs=N");
            true
        }
        "--mixed" => {
            mixed = value.is_empty() || value.parse().expect("--mixed[=bool]");
            true
        }
        "--out" => {
            out = value.to_string();
            true
        }
        "--mutant" => {
            mutant = Some(value.to_string());
            true
        }
        _ => false,
    });

    if let Some(kind) = mutant {
        assert_eq!(kind, "drop-sl", "known mutants: drop-sl");
        run_mutant(&opts, programs);
        return;
    }

    let mix = if mixed { AddrMix::Mixed } else { AddrMix::Disjoint };
    println!(
        "fuzz cross-check ({mix:?} pool): {} models × 2 protocols × {programs} programs = {} \
         runs, {} jobs",
        Model::EVALUATED.len(),
        Model::EVALUATED.len() as u64 * 2 * programs,
        opts.jobs
    );

    // Serial expansion: every seed and program is fixed here, before any
    // worker runs, so the artifact cannot depend on scheduling.
    let mut campaign = Campaign::new();
    campaign.enable_obs(16);
    let mut metas: Vec<TrialMeta> = Vec::new();
    for (mi, model) in Model::EVALUATED.into_iter().enumerate() {
        for (pi, protocol) in [Protocol::Directory, Protocol::Snooping].into_iter().enumerate() {
            for p in 0..programs {
                let program_seed =
                    derive_seed(derive_seed(opts.seed, (mi * 2 + pi) as u64), p);
                let program = generate_fuzz_program_with(program_seed, model, mix);
                let faulted = p % 8 == 3;
                let arm = if mixed { "fuzz-mixed" } else { "fuzz" };
                let tag = format!("{arm}/{model}/{protocol:?}/{p}");
                campaign.push(
                    tag.clone(),
                    p as u32,
                    cell(&program, model, protocol, program_seed, faulted),
                    MAX_CYCLES,
                );
                metas.push(TrialMeta {
                    tag,
                    program,
                    oracle_model: model,
                    faulted,
                });
            }
        }
    }
    let result = campaign.run(opts.jobs);

    // Serial aggregation in submission order.
    let mut cells_json = String::new();
    let mut disagreements: Vec<String> = Vec::new();
    let mut rows = Vec::new();
    let mut row_key = String::new();
    let (mut row_n, mut row_recovered, mut row_commits) = (0u64, 0u64, 0u64);
    for (meta, outcome) in metas.iter().zip(result.outcomes()) {
        let report = &outcome.report;
        let (verdict, disagreement) = cross_check(meta, report);
        if let Some(desc) = disagreement {
            eprintln!("\n=== DISAGREEMENT ===\n{desc}");
            disagreements.push(meta.tag.clone());
        }
        let recovered = report.recovery.is_some();
        if meta.faulted {
            assert!(
                report.violations.is_empty(),
                "{}: a violation survived rollback/replay: {:?}",
                meta.tag,
                report.violations
            );
        }
        if !cells_json.is_empty() {
            cells_json.push(',');
        }
        use std::fmt::Write;
        let _ = write!(
            cells_json,
            "{{\"tag\":{},\"program_seed\":{},\"threads\":{},\"cycles\":{},\"commits\":{},\
             \"violations\":{},\"oracle_allowed\":{},\"faulted\":{},\"recovered\":{}}}",
            json_str(&meta.tag),
            json_str(&format!("{:#x}", meta.program.seed)),
            meta.program.threads(),
            report.cycles,
            commit_count(&report.commit_logs),
            report.violations.len(),
            verdict.is_allowed(),
            meta.faulted,
            recovered,
        );
        // Summary rows: one per (model, protocol) group; tags are grouped
        // because expansion iterates programs innermost.
        let key = meta.tag.rsplit_once('/').map(|(k, _)| k.to_string()).unwrap_or_default();
        if key != row_key {
            if !row_key.is_empty() {
                rows.push(vec![
                    row_key.clone(),
                    format!("{row_n}"),
                    format!("{row_recovered}"),
                    format!("{row_commits}"),
                ]);
            }
            row_key = key;
            (row_n, row_recovered, row_commits) = (0, 0, 0);
        }
        row_n += 1;
        row_recovered += u64::from(recovered);
        row_commits += commit_count(&report.commit_logs) as u64;
    }
    if !row_key.is_empty() {
        rows.push(vec![
            row_key,
            format!("{row_n}"),
            format!("{row_recovered}"),
            format!("{row_commits}"),
        ]);
    }
    print_table(
        "fuzz cross-check (online checkers vs offline oracle)",
        &["cell", "programs", "recovered", "commits"],
        &rows,
    );

    let json = format!(
        "{{\"schema\":\"dvmc-fuzz/v1\",\"programs\":{programs},\"seed\":{},\
         \"mixed\":{mixed},\"disagreements\":{},\"cells\":[{cells_json}]}}\n",
        opts.seed,
        disagreements.len(),
    );
    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(path, json).expect("write fuzz artifact");
    println!("\nwrote {out}");

    assert!(
        disagreements.is_empty(),
        "{} disagreement(s) between the online checkers and the offline \
         oracle: {:?} — one of them has a bug",
        disagreements.len(),
        disagreements
    );
    println!(
        "{} runs: online checkers and offline oracle agree on every execution.",
        metas.len()
    );
}

/// The seeded-mutant gate: emulates an online checker whose ordering
/// table lost the Store→Load edge of SC. Behaviorally such a checker is
/// exactly a TSO checker, so the machine and checkers run TSO while the
/// oracle verifies the same executions against the unmutated SC table.
/// Store-buffer reorderings the broken checker waves through must show up
/// as oracle `Forbidden` verdicts — at least one across the budget, or
/// the fuzzer has no teeth.
fn run_mutant(opts: &ExpOpts, programs: u64) {
    println!(
        "mutant drop-sl: machine+checkers on {}, oracle on {} — {programs} programs × 2 \
         perturbations, {} jobs",
        Model::Tso,
        Model::Sc,
        opts.jobs
    );
    let mut campaign = Campaign::new();
    campaign.enable_obs(16);
    let mut metas: Vec<TrialMeta> = Vec::new();
    for p in 0..programs {
        for rep in 0..2u64 {
            let program_seed = derive_seed(derive_seed(opts.seed ^ 0x5E11, p), rep);
            let program = generate_fuzz_program(program_seed, Model::Tso);
            let tag = format!("mutant/drop-sl/{p}.{rep}");
            campaign.push(
                tag.clone(),
                (p * 2 + rep) as u32,
                cell(&program, Model::Tso, Protocol::Directory, program_seed, false),
                MAX_CYCLES,
            );
            metas.push(TrialMeta {
                tag,
                program,
                oracle_model: Model::Sc,
                faulted: false,
            });
        }
    }
    let result = campaign.run(opts.jobs);
    let mut caught = 0u64;
    for (meta, outcome) in metas.iter().zip(result.outcomes()) {
        let (_, disagreement) = cross_check(meta, &outcome.report);
        if let Some(desc) = disagreement {
            if caught == 0 {
                println!("\nmutant caught (as intended):\n{desc}");
            }
            caught += 1;
        }
    }
    assert!(
        caught > 0,
        "the drop-sl checker mutant survived {} runs undetected — the fuzzer \
         cannot catch a missing ordering-table edge",
        metas.len()
    );
    println!(
        "mutant drop-sl caught in {caught}/{} runs: the oracle detects a dropped \
         Store→Load table edge.",
        metas.len()
    );
}
