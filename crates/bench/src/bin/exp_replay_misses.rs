//! **Figure 6**: L1 cache misses during verification-stage replay,
//! normalized to L1 misses during regular execution (directory TSO).
//!
//! Paper shape to reproduce: replay misses are *rare* — the time between a
//! load's execution and its verification is small — and they concentrate
//! in lock spin loops (a failed acquire's polled line is invalidated by
//! the eventual owner between execution and replay).

use dvmc_bench::{print_table, Campaign, ExpOpts, RunSpec};
use dvmc_sim::RunReport;

fn ratio(reports: &[&RunReport]) -> (f64, f64, f64) {
    let mut replay = 0u64;
    let mut demand = 0u64;
    let mut replays_total = 0u64;
    for r in reports {
        replay += r.replay_l1_misses();
        demand += r.l1_misses();
        replays_total += r
            .replay_stats
            .iter()
            .map(|s| s.replays)
            .sum::<u64>();
    }
    (
        replay as f64 / demand.max(1) as f64,
        replay as f64 / replays_total.max(1) as f64,
        replays_total as f64,
    )
}

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure 6 — replay L1 misses (TSO, {:?} protocol, {} nodes, {} runs, {} jobs)",
        opts.protocol, opts.nodes, opts.runs, opts.jobs
    );

    let mut campaign = Campaign::new();
    for kind in dvmc_bench::workloads() {
        campaign.push_spec(&opts, kind.name(), RunSpec::new(&opts, kind));
    }
    let result = campaign.run(opts.jobs);

    let header = vec![
        "workload",
        "replay misses / demand misses",
        "replay miss rate",
        "replays",
    ];
    let mut rows = Vec::new();
    for kind in dvmc_bench::workloads() {
        let (vs_demand, rate, replays) = ratio(&result.expect_clean(kind.name()));
        rows.push(vec![
            kind.to_string(),
            format!("{:.4}", vs_demand),
            format!("{:.5}", rate),
            format!("{:.0}", replays),
        ]);
    }
    print_table("replay miss ratios", &header, &rows);
    println!("\n(The paper reports these ratios are small everywhere, with lock-heavy");
    println!(" workloads — slash, oltp — highest; misses stem from failed lock acquires.)");
}
