//! **§6.3 hardware cost**: reproduces the checker storage arithmetic —
//! CET ≈ 70 KB per node at 34 bits per cache line, MET ≈ 102 KB per
//! memory controller at 48 bits per line resident in any cache — for the
//! Table 6 configuration and a sweep of alternatives.

use dvmc_bench::{print_table, ExpOpts};
use dvmc_core::cost::{CostConfig, CET_BITS_PER_LINE, MET_BITS_PER_LINE};

fn main() {
    // No simulations here — the table is pure arithmetic — but parse the
    // common flags anyway so every exp_* binary accepts the same CLI.
    let _opts = ExpOpts::from_args();
    println!("§6.3 — DVMC hardware cost");
    println!("CET entry: {CET_BITS_PER_LINE} bits/line; MET entry: {MET_BITS_PER_LINE} bits/line");

    let mut rows = Vec::new();
    let configs: [(&str, CostConfig); 4] = [
        ("paper (64KB L1 + 1MB L2, 8p)", CostConfig::paper_default()),
        (
            "small (32KB L1 + 256KB L2, 4p)",
            CostConfig {
                l1_lines: 32 * 1024 / 64,
                l2_lines: 256 * 1024 / 64,
                nodes: 4,
                vc_bytes: 128,
            },
        ),
        (
            "large (64KB L1 + 4MB L2, 8p)",
            CostConfig {
                l1_lines: 64 * 1024 / 64,
                l2_lines: 4 * 1024 * 1024 / 64,
                nodes: 8,
                vc_bytes: 256,
            },
        ),
        (
            "16-way (64KB L1 + 1MB L2, 16p)",
            CostConfig {
                nodes: 16,
                ..CostConfig::paper_default()
            },
        ),
    ];
    for (name, cfg) in configs {
        rows.push(vec![
            name.to_string(),
            format!("{:.1} KB", cfg.cet_bytes_per_node() as f64 / 1024.0),
            format!("{:.1} KB", cfg.met_bytes_per_controller() as f64 / 1024.0),
            format!("{} B", cfg.vc_bytes),
            format!("{:.1} KB", cfg.total_bytes() as f64 / 1024.0),
        ]);
    }
    print_table(
        "checker storage",
        &["configuration", "CET / node", "MET / controller", "VC / node", "system total"],
        &rows,
    );
    println!("\n(Paper: \"a total CET size of about 70 KB per node ... The MET requires");
    println!(" 102 KB per memory controller, with an entry size of 48 bits.\")");
}
