//! **Soak/service campaign** (DESIGN.md §13): long open-loop runs under
//! continuous fault injection, proving the DVMC + SafetyNet stack holds
//! up as a *service*, not just per-experiment:
//!
//! * `soak/storm/*` — a Poisson fault storm of overlapping transients
//!   while the consistency model is switched SC→TSO→PSO→RMO mid-run.
//!   Gate: the run reaches its horizon with **zero unrecovered
//!   episodes**, **zero false violations**, and finite detection/recovery
//!   latency percentiles.
//! * `soak/quiet/*` — the same schedule with no faults. Gate: total
//!   silence (no violations, no hangs, nothing injected or recovered) —
//!   the long-horizon false-positive gate, on both protocols.
//! * `soak/persistent/*` — one stuck-bit (persistent) fault. Gate: never
//!   a *false* violation; if the defect manifests, recovery must spend
//!   its full retry budget with escalating checkpoint back-off and end
//!   `Unrecoverable` (a stuck bit cannot be replayed away).
//!
//! Window snapshots stream to stderr as each window closes (tagged, one
//! line each). The canonical JSON written to `--out` contains only
//! integers reduced in submission order from pure-function cells, so it
//! is byte-identical at any `--jobs` (the CI gate compares `--jobs=1`
//! against `--jobs=2`).

use dvmc_bench::campaign::json_str;
use dvmc_bench::soak::{run_soak, SoakOutcome, SoakSpec};
use dvmc_bench::{parallel_map_indexed, print_table, ExpOpts};
use dvmc_consistency::Model;
use dvmc_faults::{storm_plan, Fault, FaultPlan, StormConfig};
use dvmc_sim::{CheckpointMode, KernelMode, Protocol, ServiceStop};
use dvmc_types::rng::{det_rng, derive_seed};
use dvmc_types::{Cycle, NodeId};
use std::fmt::Write as _;

const WATCHDOG: Cycle = 100_000;
const MAX_RETRIES: u32 = 4;

/// The model schedule every soak cycles through: each model holds a
/// quarter of the horizon, weakest last so the RMO segment inherits a
/// machine warmed up under stricter models.
fn schedule(duration: Cycle) -> Vec<(Model, Cycle)> {
    let seg = (duration / Model::EVALUATED.len() as Cycle).max(1);
    let mut s: Vec<(Model, Cycle)> =
        Model::EVALUATED.iter().map(|&m| (m, seg)).collect();
    // Remainder cycles go to the last segment so the sum is exact.
    s.last_mut().expect("non-empty").1 += duration - seg * Model::EVALUATED.len() as Cycle;
    s
}

fn stop_label(stop: ServiceStop) -> &'static str {
    match stop {
        ServiceStop::Horizon => "horizon",
        ServiceStop::FalseViolation => "false-violation",
        ServiceStop::Unrecoverable => "unrecoverable",
    }
}

fn opt_cycle(v: Option<Cycle>) -> String {
    v.map_or_else(|| "null".into(), |c| c.to_string())
}

fn opt_dash(v: Option<Cycle>) -> String {
    v.map_or_else(|| "-".into(), |c| c.to_string())
}

fn main() {
    let mut duration: Cycle = 2_000_000;
    let mut window: Cycle = 100_000;
    let mut mean_gap: u32 = 400;
    let mut out = String::from("results/BENCH_soak.json");
    let opts = ExpOpts::from_args_with(|key, value| match key {
        "--duration" => {
            duration = value.parse().expect("--duration=CYCLES");
            true
        }
        "--window" => {
            window = value.parse().expect("--window=CYCLES");
            true
        }
        "--mean-gap" => {
            mean_gap = value.parse().expect("--mean-gap=CYCLES");
            true
        }
        "--out" => {
            out = value.to_string();
            true
        }
        _ => false,
    });
    assert!(window > 0 && duration >= window, "need --duration >= --window > 0");

    // ~12 transient bursts across the horizon, clustered so episodes
    // genuinely overlap; injections start after a warmup twentieth.
    let storm_cfg = StormConfig {
        mean_gap: (duration / 12).max(1),
        burst: (1, 3),
        burst_spread: 2_000,
        persistent_every: 0,
    };

    let mut specs: Vec<SoakSpec> = Vec::new();
    for (pi, protocol) in [Protocol::Directory, Protocol::Snooping].into_iter().enumerate() {
        let mut rng = det_rng(derive_seed(opts.seed, 0x5708 + pi as u64));
        let plans = storm_plan(&mut rng, opts.nodes, duration / 20, duration, &storm_cfg);
        specs.push(SoakSpec {
            tag: format!("soak/storm/{protocol:?}"),
            protocol,
            schedule: schedule(duration),
            nodes: opts.nodes,
            mean_gap,
            seed: derive_seed(opts.seed, 1 + pi as u64),
            plans,
            window,
            max_retries: MAX_RETRIES,
            watchdog: WATCHDOG,
            kernel: KernelMode::default(),
            checkpoint: CheckpointMode::default(),
        });
        specs.push(SoakSpec {
            tag: format!("soak/quiet/{protocol:?}"),
            protocol,
            schedule: schedule(duration),
            nodes: opts.nodes,
            mean_gap,
            seed: derive_seed(opts.seed, 3 + pi as u64),
            plans: Vec::new(),
            window,
            max_retries: MAX_RETRIES,
            watchdog: WATCHDOG,
            kernel: KernelMode::default(),
            checkpoint: CheckpointMode::default(),
        });
    }
    // Latent stuck bits surface at eviction/CRC; give the episode twice
    // the horizon under the busiest (hot-block) traffic to manifest.
    specs.push(SoakSpec {
        tag: "soak/persistent/Directory".into(),
        protocol: Protocol::Directory,
        schedule: vec![(Model::Tso, duration * 2)],
        nodes: opts.nodes,
        mean_gap,
        seed: derive_seed(opts.seed, 5),
        plans: vec![FaultPlan {
            at_cycle: duration / 4,
            fault: Fault::CacheStuckBit { node: NodeId(1) },
        }],
        window,
        max_retries: MAX_RETRIES,
        watchdog: WATCHDOG,
        kernel: KernelMode::default(),
        checkpoint: CheckpointMode::default(),
    });

    let injected_total: usize = specs.iter().map(|s| s.plans.len()).sum();
    println!(
        "soak: {} cells ({} faults planned), horizon {duration} cycles, window {window}, \
         {} nodes, {} jobs",
        specs.len(),
        injected_total,
        opts.nodes,
        opts.jobs
    );

    // Windows stream to stderr as they close (display only; the artifact
    // is reduced serially below, so scheduling cannot touch it).
    let outcomes: Vec<SoakOutcome> = parallel_map_indexed(
        &specs,
        opts.jobs,
        |i, spec| {
            let tag = spec.tag.clone();
            run_soak(spec, &mut |w| {
                eprintln!(
                    "[{tag}] window {}..{}: retired={} requests={} injected={} masked={} \
                     episodes={} retries={} depth={} sorter_hwm={} informs={} crc={} closes={} \
                     qdelay={}x/{}p50/{}p99",
                    w.start,
                    w.end,
                    w.retired_ops,
                    w.requests,
                    w.injected,
                    w.masked,
                    w.episodes_closed,
                    w.retries,
                    w.rollback_depth_max,
                    w.sorter_hwm,
                    w.informs,
                    w.crc_checks,
                    w.epoch_closes,
                    w.queue_delay_count,
                    w.queue_delay_p50,
                    w.queue_delay_p99,
                );
                let _ = i;
            })
        },
        |_| {},
    );

    // Serial aggregation in submission order.
    let mut rows = Vec::new();
    let mut cells_json = String::new();
    for (spec, got) in specs.iter().zip(&outcomes) {
        let svc = &got.service;
        let tag = &spec.tag;
        let arm = tag.split('/').nth(1).unwrap_or_default();
        if svc.stopped != ServiceStop::Horizon {
            eprintln!(
                "[{tag}] stopped {:?} at cycle {}: hung={} violations={:?}",
                svc.stopped, svc.report.cycles, svc.report.hung, svc.report.violations
            );
            if let Some(f) = &svc.report.forensics {
                eprintln!("[{tag}] forensics: node{} @{}: {}", f.node.index(), f.cycle, f.chain());
            }
        }
        match arm {
            "storm" => {
                assert_eq!(
                    svc.stopped,
                    ServiceStop::Horizon,
                    "{tag}: a transient storm must never end the service"
                );
                assert_eq!(svc.unrecovered(), 0, "{tag}: unrecovered transient episodes");
                assert!(
                    svc.report.violations.is_empty(),
                    "{tag}: violations outlived recovery: {:?}",
                    svc.report.violations
                );
                assert!(!svc.report.hung, "{tag}: service ended hung");
                assert!(svc.injected > 0, "{tag}: the storm never fired");
                let detected = svc.episodes.iter().filter(|e| e.detected_at.is_some()).count();
                if detected > 0 {
                    assert!(
                        got.p50_detection.is_some() && got.p99_detection.is_some(),
                        "{tag}: detected episodes must yield finite detection percentiles"
                    );
                    assert!(
                        got.p50_recovery.is_some() && got.p99_recovery.is_some(),
                        "{tag}: recovered episodes must yield finite recovery percentiles"
                    );
                }
                // At the default horizon the storm is dense enough that a
                // fully masked run would itself be a detection bug.
                if duration >= 2_000_000 {
                    assert!(detected > 0, "{tag}: no storm fault was ever detected");
                }
            }
            "quiet" => {
                assert_eq!(svc.stopped, ServiceStop::Horizon, "{tag}: quiet soak stopped early");
                assert_eq!(svc.injected, 0, "{tag}: quiet soak injected faults");
                assert!(
                    svc.report.violations.is_empty() && svc.episodes.is_empty(),
                    "{tag}: FALSE VIOLATION on a fault-free soak: {:?}",
                    svc.report.violations
                );
                assert!(!svc.report.hung, "{tag}: fault-free soak hung");
            }
            "persistent" => {
                assert_ne!(
                    svc.stopped,
                    ServiceStop::FalseViolation,
                    "{tag}: persistent-fault run misclassified a detection as false"
                );
                if svc.stopped == ServiceStop::Unrecoverable {
                    let rec = svc
                        .report
                        .recovery
                        .expect("unrecoverable soak carries a recovery report");
                    assert_eq!(
                        rec.attempts, MAX_RETRIES,
                        "{tag}: every allowed retry must be spent first"
                    );
                    assert!(
                        rec.escalations >= 1,
                        "{tag}: repeated re-manifestation must escalate the cadence"
                    );
                } else {
                    eprintln!("[{tag}] stuck bit stayed latent over {} cycles", got.horizon);
                }
            }
            other => panic!("unknown soak arm {other:?}"),
        }
        let detected = svc.episodes.iter().filter(|e| e.detected_at.is_some()).count();
        rows.push(vec![
            tag.clone(),
            stop_label(svc.stopped).into(),
            format!("{}", svc.injected),
            format!("{}", svc.masked),
            format!("{}/{detected}", svc.episodes.len()),
            format!("{}", svc.unrecovered()),
            opt_dash(got.p50_detection),
            opt_dash(got.p99_detection),
            opt_dash(got.p50_recovery),
            opt_dash(got.p99_recovery),
        ]);
        if !cells_json.is_empty() {
            cells_json.push(',');
        }
        let mut windows_json = String::new();
        for w in &svc.windows {
            if !windows_json.is_empty() {
                windows_json.push(',');
            }
            let _ = write!(
                windows_json,
                "{{\"start\":{},\"end\":{},\"retired\":{},\"requests\":{},\"injected\":{},\
                 \"masked\":{},\"episodes\":{},\"retries\":{},\"depth\":{},\"sorter_hwm\":{},\
                 \"informs\":{},\"crc\":{},\"closes\":{},\"qdelay_count\":{},\
                 \"qdelay_p50\":{},\"qdelay_p99\":{}}}",
                w.start,
                w.end,
                w.retired_ops,
                w.requests,
                w.injected,
                w.masked,
                w.episodes_closed,
                w.retries,
                w.rollback_depth_max,
                w.sorter_hwm,
                w.informs,
                w.crc_checks,
                w.epoch_closes,
                w.queue_delay_count,
                w.queue_delay_p50,
                w.queue_delay_p99,
            );
        }
        let _ = write!(
            cells_json,
            "{{\"tag\":{},\"stopped\":{},\"horizon\":{},\"cycles\":{},\"injected\":{},\
             \"masked\":{},\"episodes\":{},\"detected\":{detected},\"unrecovered\":{},\
             \"p50_detection\":{},\"p99_detection\":{},\"p50_recovery\":{},\"p99_recovery\":{},\
             \"executed\":{},\"skipped\":{},\"ckpt_taken\":{},\"ckpt_bytes\":{},\
             \"rollbacks\":{},\"windows\":[{windows_json}]}}",
            json_str(tag),
            json_str(stop_label(svc.stopped)),
            got.horizon,
            svc.report.cycles,
            svc.injected,
            svc.masked,
            svc.episodes.len(),
            svc.unrecovered(),
            opt_cycle(got.p50_detection),
            opt_cycle(got.p99_detection),
            opt_cycle(got.p50_recovery),
            opt_cycle(got.p99_recovery),
            got.executed,
            got.skipped,
            got.checkpoint.snapshots_taken,
            got.checkpoint.bytes_logged,
            got.checkpoint.rollbacks,
        );
    }
    print_table(
        "soak/service (latencies in cycles)",
        &[
            "cell", "stop", "inj", "masked", "ep/det", "unrec", "det p50", "det p99", "rec p50",
            "rec p99",
        ],
        &rows,
    );

    let json = format!(
        "{{\"schema\":\"dvmc-soak/v2\",\"duration\":{duration},\"window\":{window},\
         \"mean_gap\":{mean_gap},\"nodes\":{},\"seed\":{},\"cells\":[{cells_json}]}}\n",
        opts.nodes, opts.seed,
    );
    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(path, json).expect("write soak artifact");
    println!("\nwrote {out}");
    println!(
        "soak holds: zero unrecovered transients, zero false violations, \
         bounded latency percentiles."
    );
}
