//! Ablations over DVMC's design parameters — the engineering trade-offs
//! §4 and §6.3 call out:
//!
//! 1. **Verification-cache size** (32–256 B per the paper): a too-small
//!    VC stalls commit when committed-but-undrained stores exceed it.
//! 2. **Membar-injection period** (§4.2, ~100k cycles): bounds
//!    lost-operation detection latency at the cost of extra barriers.
//! 3. **Epoch-sorter capacity** (Table 6: 256): a tiny queue forces
//!    premature processing of out-of-order informs.
//!
//! Each sweep reports the relevant cost/benefit pair.

use dvmc_bench::{fmt_pm, print_table, ExpOpts};
use dvmc_faults::{Fault, FaultPlan};
use dvmc_sim::{mean_std, SystemBuilder};
use dvmc_types::NodeId;
use dvmc_workloads::spec::WorkloadKind;

fn main() {
    let opts = ExpOpts::from_args();

    // ----- 1. VC size vs commit stalls --------------------------------
    // The VC must hold every committed-but-unperformed store (§4.1); the
    // write buffer is 32 entries, so 32 words suffice by construction.
    // Smaller VCs stall commit; we emulate by shrinking vc_words through
    // the core config (exposed via a custom build below).
    println!("Ablation 1 — verification cache size (oltp, TSO, {} nodes)", opts.nodes);
    let mut rows = Vec::new();
    for vc_words in [4usize, 8, 16, 32] {
        let mut cycles = Vec::new();
        let mut stalls = 0u64;
        for run in 0..opts.runs {
            let p = dvmc_types::rng::perturbation_seed(opts.seed, run);
            let mut sys = SystemBuilder::new()
                .nodes(opts.nodes)
                .workload(WorkloadKind::Oltp, opts.txns)
                .seed(opts.seed)
                .perturbation(p)
                .vc_words(vc_words)
                .build();
            let r = sys.run_to_completion(opts.max_cycles);
            assert!(r.completed && r.violations.is_empty(), "{r:?}");
            cycles.push(r.cycles as f64);
            stalls += r.core_stats.iter().map(|s| s.vc_full_stalls).sum::<u64>();
        }
        let stats = mean_std(&cycles);
        rows.push(vec![
            format!("{vc_words} words ({} B)", vc_words * 8),
            fmt_pm((stats.0 / 1000.0, stats.1 / 1000.0)),
            format!("{}", stalls / opts.runs as u64),
        ]);
    }
    print_table(
        "runtime (kcycles) and commit stalls vs VC size",
        &["VC size", "runtime", "vc-full stalls/run"],
        &rows,
    );

    // ----- 2. Membar injection period vs detection latency -------------
    println!("\nAblation 2 — membar injection period vs lost-store detection latency");
    let mut rows = Vec::new();
    for period in [10_000u64, 50_000, 100_000, 400_000] {
        let mut latencies = Vec::new();
        let mut membars = 0u64;
        for run in 0..opts.runs {
            let mut sys = SystemBuilder::new()
                .nodes(4)
                .workload(WorkloadKind::Jbb, 1_000_000)
                .seed(opts.seed + run as u64)
                .membar_injection_period(period)
                .fault(FaultPlan {
                    at_cycle: 30_000,
                    fault: Fault::WbDropStore { node: NodeId(1) },
                })
                .watchdog(2_000_000)
                .max_cycles(4_000_000)
                .build();
            let r = sys.run_to_completion(4_000_000);
            if let Some(d) = r.detection {
                latencies.push(d.latency() as f64);
            }
            membars += r.core_stats.iter().map(|s| s.injected_membars).sum::<u64>();
        }
        let stats = mean_std(&latencies);
        rows.push(vec![
            format!("{period}"),
            format!("{:.0} ±{:.0}", stats.0, stats.1),
            format!("{:.1}", membars as f64 / opts.runs as f64),
        ]);
    }
    print_table(
        "lost-store detection latency vs injection period",
        &["period (cycles)", "detection latency", "membars injected/run"],
        &rows,
    );
    println!("(§4.2: injections ~1/100k cycles bound detection latency with");
    println!(" negligible overhead; shorter periods buy latency with barriers.)");

    // ----- 3. Epoch-sorter capacity ------------------------------------
    println!("\nAblation 3 — epoch-sorter capacity (oltp, TSO, {} nodes)", opts.nodes);
    let mut rows = Vec::new();
    for capacity in [16usize, 64, 256, 1024] {
        let mut clean = 0;
        for run in 0..opts.runs {
            let p = dvmc_types::rng::perturbation_seed(opts.seed, run);
            let mut sys = SystemBuilder::new()
                .nodes(opts.nodes)
                .workload(WorkloadKind::Oltp, opts.txns)
                .seed(opts.seed)
                .perturbation(p)
                .sorter_capacity(capacity)
                .build();
            let r = sys.run_to_completion(opts.max_cycles);
            if r.completed && r.violations.is_empty() {
                clean += 1;
            }
        }
        rows.push(vec![
            format!("{capacity}"),
            format!("{clean}/{}", opts.runs),
        ]);
    }
    print_table(
        "error-free runs without false positives vs sorter capacity",
        &["capacity", "clean runs"],
        &rows,
    );
    println!("(A sorter far smaller than Table 6's 256 entries forces premature,");
    println!(" out-of-order processing and risks false positives — which cost a");
    println!(" recovery, never correctness, §3.)");
}
