//! Ablations over DVMC's design parameters — the engineering trade-offs
//! §4 and §6.3 call out:
//!
//! 1. **Verification-cache size** (32–256 B per the paper): a too-small
//!    VC stalls commit when committed-but-undrained stores exceed it.
//! 2. **Membar-injection period** (§4.2, ~100k cycles): bounds
//!    lost-operation detection latency at the cost of extra barriers.
//! 3. **Epoch-sorter capacity** (Table 6: 256): a tiny queue forces
//!    premature processing of out-of-order informs.
//!
//! Each sweep reports the relevant cost/benefit pair. All three sweeps
//! expand into one campaign and run together on the worker pool.

use dvmc_bench::{fmt_pm, print_table, Campaign, ExpOpts};
use dvmc_faults::{Fault, FaultPlan};
use dvmc_sim::{mean_std, SystemBuilder};
use dvmc_types::NodeId;
use dvmc_workloads::spec::WorkloadKind;

const VC_WORDS: [usize; 4] = [4, 8, 16, 32];
const MEMBAR_PERIODS: [u64; 4] = [10_000, 50_000, 100_000, 400_000];
const SORTER_CAPACITIES: [usize; 4] = [16, 64, 256, 1024];

fn main() {
    let opts = ExpOpts::from_args();

    // Phase 1: expand all three sweeps into one campaign.
    let mut campaign = Campaign::new();
    for vc_words in VC_WORDS {
        for run in 0..opts.runs {
            let p = dvmc_types::rng::perturbation_seed(opts.seed, run);
            let cfg = SystemBuilder::new()
                .nodes(opts.nodes)
                .workload(WorkloadKind::Oltp, opts.txns)
                .seed(opts.seed)
                .perturbation(p)
                .vc_words(vc_words)
                .into_config()
                .expect("valid ablation config");
            campaign.push(format!("vc/{vc_words}"), run, cfg, opts.max_cycles);
        }
    }
    for period in MEMBAR_PERIODS {
        for run in 0..opts.runs {
            let cfg = SystemBuilder::new()
                .nodes(4)
                .workload(WorkloadKind::Jbb, 1_000_000)
                .seed(opts.seed + run as u64)
                .membar_injection_period(period)
                .fault(FaultPlan {
                    at_cycle: 30_000,
                    fault: Fault::WbDropStore { node: NodeId(1) },
                })
                .watchdog(2_000_000)
                .max_cycles(4_000_000)
                .into_config()
                .expect("valid ablation config");
            campaign.push(format!("membar/{period}"), run, cfg, 4_000_000);
        }
    }
    for capacity in SORTER_CAPACITIES {
        for run in 0..opts.runs {
            let p = dvmc_types::rng::perturbation_seed(opts.seed, run);
            let cfg = SystemBuilder::new()
                .nodes(opts.nodes)
                .workload(WorkloadKind::Oltp, opts.txns)
                .seed(opts.seed)
                .perturbation(p)
                .sorter_capacity(capacity)
                .into_config()
                .expect("valid ablation config");
            campaign.push(format!("sorter/{capacity}"), run, cfg, opts.max_cycles);
        }
    }
    let result = campaign.run(opts.jobs);

    // ----- 1. VC size vs commit stalls --------------------------------
    // The VC must hold every committed-but-unperformed store (§4.1); the
    // write buffer is 32 entries, so 32 words suffice by construction.
    // Smaller VCs stall commit.
    println!("Ablation 1 — verification cache size (oltp, TSO, {} nodes)", opts.nodes);
    let mut rows = Vec::new();
    for vc_words in VC_WORDS {
        let reports = result.expect_clean(&format!("vc/{vc_words}"));
        let cycles: Vec<f64> = reports.iter().map(|r| r.cycles as f64).collect();
        let stalls: u64 = reports
            .iter()
            .map(|r| r.core_stats.iter().map(|s| s.vc_full_stalls).sum::<u64>())
            .sum();
        let stats = mean_std(&cycles);
        rows.push(vec![
            format!("{vc_words} words ({} B)", vc_words * 8),
            fmt_pm((stats.0 / 1000.0, stats.1 / 1000.0)),
            format!("{}", stalls / opts.runs as u64),
        ]);
    }
    print_table(
        "runtime (kcycles) and commit stalls vs VC size",
        &["VC size", "runtime", "vc-full stalls/run"],
        &rows,
    );

    // ----- 2. Membar injection period vs detection latency -------------
    println!("\nAblation 2 — membar injection period vs lost-store detection latency");
    let mut rows = Vec::new();
    for period in MEMBAR_PERIODS {
        let reports = result.reports(&format!("membar/{period}"));
        let latencies: Vec<f64> = reports
            .iter()
            .filter_map(|r| r.detection.as_ref())
            .map(|d| d.latency() as f64)
            .collect();
        let membars: u64 = reports
            .iter()
            .map(|r| r.core_stats.iter().map(|s| s.injected_membars).sum::<u64>())
            .sum();
        let stats = mean_std(&latencies);
        rows.push(vec![
            format!("{period}"),
            format!("{:.0} ±{:.0}", stats.0, stats.1),
            format!("{:.1}", membars as f64 / opts.runs as f64),
        ]);
    }
    print_table(
        "lost-store detection latency vs injection period",
        &["period (cycles)", "detection latency", "membars injected/run"],
        &rows,
    );
    println!("(§4.2: injections ~1/100k cycles bound detection latency with");
    println!(" negligible overhead; shorter periods buy latency with barriers.)");

    // ----- 3. Epoch-sorter capacity ------------------------------------
    println!("\nAblation 3 — epoch-sorter capacity (oltp, TSO, {} nodes)", opts.nodes);
    let mut rows = Vec::new();
    for capacity in SORTER_CAPACITIES {
        let clean = result
            .reports(&format!("sorter/{capacity}"))
            .iter()
            .filter(|r| r.completed && r.violations.is_empty())
            .count();
        rows.push(vec![
            format!("{capacity}"),
            format!("{clean}/{}", opts.runs),
        ]);
    }
    print_table(
        "error-free runs without false positives vs sorter capacity",
        &["capacity", "clean runs"],
        &rows,
    );
    println!("(A sorter far smaller than Table 6's 256 entries forces premature,");
    println!(" out-of-order processing and risks false positives — which cost a");
    println!(" recovery, never correctness, §3.)");
}
