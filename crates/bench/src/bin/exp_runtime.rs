//! **Figures 3 and 4**: runtime of the unprotected baseline ("Base") and
//! the fully protected system ("DVMC", i.e. DVMC + SafetyNet) for each
//! consistency model and workload, normalized to the unprotected SC
//! system. Figure 3 is the directory protocol (`--protocol=directory`,
//! the default); Figure 4 is snooping (`--protocol=snooping`).
//!
//! Paper shape to reproduce: TSO's write buffer beats SC on almost every
//! benchmark; PSO/RMO add little over TSO; DVMC slowdown is bounded
//! (≤11% worst case, ≤6% in most configurations) and is largest for SC.

use dvmc_bench::{fmt_pm, normalize, print_table, run_spec, runtime_stats, ExpOpts, RunSpec};
use dvmc_consistency::Model;
use dvmc_sim::Protection;

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure {} — runtime normalized to unprotected SC ({:?} protocol, {} nodes, {} txns/thread, {} runs)",
        if opts.protocol == dvmc_sim::Protocol::Directory { 3 } else { 4 },
        opts.protocol,
        opts.nodes,
        opts.txns,
        opts.runs
    );

    let header = vec![
        "workload", "SC base", "SC dvmc", "TSO base", "TSO dvmc", "PSO base", "PSO dvmc",
        "RMO base", "RMO dvmc",
    ];
    let mut rows = Vec::new();
    for kind in dvmc_bench::workloads() {
        let mut spec = RunSpec::new(&opts, kind);
        // Baseline: unprotected SC.
        spec.model = Model::Sc;
        spec.protection = Protection::BASE;
        let sc_base = runtime_stats(&run_spec(&opts, spec));
        let mut row = vec![kind.to_string()];
        for model in [Model::Sc, Model::Tso, Model::Pso, Model::Rmo] {
            for protection in [Protection::BASE, Protection::FULL] {
                let (mean, std) = if model == Model::Sc && protection == Protection::BASE {
                    sc_base
                } else {
                    spec.model = model;
                    spec.protection = protection;
                    runtime_stats(&run_spec(&opts, spec))
                };
                row.push(fmt_pm(normalize((mean, std), sc_base.0)));
            }
        }
        rows.push(row);
    }
    print_table("runtime normalized to unprotected SC", &header, &rows);

    // Summary: the paper's headline claims.
    println!("\nslowdown of DVMC vs its own base, per model (geomean over workloads):");
    for model in [Model::Sc, Model::Tso, Model::Pso, Model::Rmo] {
        let mut ratios = Vec::new();
        for kind in dvmc_bench::workloads() {
            let mut spec = RunSpec::new(&opts, kind);
            spec.model = model;
            spec.protection = Protection::BASE;
            let base = runtime_stats(&run_spec(&opts, spec)).0;
            spec.protection = Protection::FULL;
            let full = runtime_stats(&run_spec(&opts, spec)).0;
            ratios.push(full / base);
        }
        let geomean = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
        println!("  {model}: {:.1}% overhead", (geomean.exp() - 1.0) * 100.0);
    }
}
