//! **Figures 3 and 4**: runtime of the unprotected baseline ("Base") and
//! the fully protected system ("DVMC", i.e. DVMC + SafetyNet) for each
//! consistency model and workload, normalized to the unprotected SC
//! system. Figure 3 is the directory protocol (`--protocol=directory`,
//! the default); Figure 4 is snooping (`--protocol=snooping`).
//!
//! Paper shape to reproduce: TSO's write buffer beats SC on almost every
//! benchmark; PSO/RMO add little over TSO; DVMC slowdown is bounded
//! (≤11% worst case, ≤6% in most configurations) and is largest for SC.

use dvmc_bench::{fmt_pm, normalize, print_table, runtime_stats, Campaign, ExpOpts, RunSpec};
use dvmc_consistency::Model;
use dvmc_sim::Protection;

const MODELS: [Model; 4] = [Model::Sc, Model::Tso, Model::Pso, Model::Rmo];

fn tag(kind: dvmc_workloads::spec::WorkloadKind, model: Model, protection: Protection) -> String {
    format!("{kind}/{model}/{}", protection.label())
}

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure {} — runtime normalized to unprotected SC ({:?} protocol, {} nodes, {} txns/thread, {} runs, {} jobs)",
        if opts.protocol == dvmc_sim::Protocol::Directory { 3 } else { 4 },
        opts.protocol,
        opts.nodes,
        opts.txns,
        opts.runs,
        opts.jobs
    );

    // Phase 1: expand the whole (workload × model × protection) grid.
    let mut campaign = Campaign::new();
    for kind in dvmc_bench::workloads() {
        for model in MODELS {
            for protection in [Protection::BASE, Protection::FULL] {
                let mut spec = RunSpec::new(&opts, kind);
                spec.model = model;
                spec.protection = protection;
                campaign.push_spec(&opts, tag(kind, model, protection), spec);
            }
        }
    }
    let result = campaign.run(opts.jobs);

    // Phase 2: aggregate.
    let header = vec![
        "workload", "SC base", "SC dvmc", "TSO base", "TSO dvmc", "PSO base", "PSO dvmc",
        "RMO base", "RMO dvmc",
    ];
    let mut rows = Vec::new();
    for kind in dvmc_bench::workloads() {
        let sc_base = runtime_stats(result.expect_clean(&tag(kind, Model::Sc, Protection::BASE)));
        let mut row = vec![kind.to_string()];
        for model in MODELS {
            for protection in [Protection::BASE, Protection::FULL] {
                let stats = runtime_stats(result.expect_clean(&tag(kind, model, protection)));
                row.push(fmt_pm(normalize(stats, sc_base.0)));
            }
        }
        rows.push(row);
    }
    print_table("runtime normalized to unprotected SC", &header, &rows);

    // Summary: the paper's headline claims, from the same reports.
    println!("\nslowdown of DVMC vs its own base, per model (geomean over workloads):");
    for model in MODELS {
        let mut ratios = Vec::new();
        for kind in dvmc_bench::workloads() {
            let mean_of =
                |protection| runtime_stats(result.expect_clean(&tag(kind, model, protection))).0;
            ratios.push(mean_of(Protection::FULL) / mean_of(Protection::BASE));
        }
        let geomean = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
        println!("  {model}: {:.1}% overhead", (geomean.exp() - 1.0) * 100.0);
    }
}
