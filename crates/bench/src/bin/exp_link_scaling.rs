//! **Figure 8**: DVMC runtime overhead (DVTSO / unprotected) as a
//! function of interconnect link bandwidth, for both protocols.
//!
//! Paper shape to reproduce: no significant correlation between link
//! bandwidth and DVMC overhead — checker traffic rides in the idle gaps
//! between demand-traffic bursts.

use dvmc_bench::{fmt_pm, mean_ratio, print_table, ExpOpts, RunSpec};
use dvmc_sim::Protocol;

fn main() {
    let opts = ExpOpts::from_args();
    // The paper sweeps 1–3 GB/s; at our cycle scale that is 1–3 B/cycle.
    let bandwidths = [1u32, 2, 3];
    println!(
        "Figure 8 — DVMC overhead vs link bandwidth ({} nodes, {} runs, mean over workloads)",
        opts.nodes, opts.runs
    );

    let header = vec!["protocol", "1 B/cyc", "2 B/cyc", "3 B/cyc"];
    let mut rows = Vec::new();
    for protocol in [Protocol::Directory, Protocol::Snooping] {
        let mut row = vec![format!("{protocol:?}")];
        for bw in bandwidths {
            let stats = mean_ratio(&opts, |kind| {
                let mut spec = RunSpec::new(&opts, kind);
                spec.protocol = protocol;
                spec.link_bandwidth = bw;
                spec
            });
            row.push(fmt_pm(stats));
        }
        rows.push(row);
    }
    print_table(
        "runtime of DVMC system normalized to unprotected system",
        &header,
        &rows,
    );
    println!("\n(The paper finds the variations statistically insignificant: DVMC");
    println!(" traffic is absorbed by idle periods between traffic bursts.)");
}
