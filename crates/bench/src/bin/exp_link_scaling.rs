//! **Figure 8**: DVMC runtime overhead (DVTSO / unprotected) as a
//! function of interconnect link bandwidth, for both protocols.
//!
//! Paper shape to reproduce: no significant correlation between link
//! bandwidth and DVMC overhead — checker traffic rides in the idle gaps
//! between demand-traffic bursts.

use dvmc_bench::{fmt_pm, mean_ratio_of, print_table, push_ratio_cells, Campaign, ExpOpts, RunSpec};
use dvmc_sim::Protocol;

fn main() {
    let opts = ExpOpts::from_args();
    // The paper sweeps 1–3 GB/s; at our cycle scale that is 1–3 B/cycle.
    let bandwidths = [1u32, 2, 3];
    println!(
        "Figure 8 — DVMC overhead vs link bandwidth ({} nodes, {} runs, {} jobs, mean over workloads)",
        opts.nodes, opts.runs, opts.jobs
    );

    let mut campaign = Campaign::new();
    for protocol in [Protocol::Directory, Protocol::Snooping] {
        for bw in bandwidths {
            push_ratio_cells(&mut campaign, &opts, &format!("{protocol:?}/{bw}"), |kind| {
                let mut spec = RunSpec::new(&opts, kind);
                spec.protocol = protocol;
                spec.link_bandwidth = bw;
                spec
            });
        }
    }
    let result = campaign.run(opts.jobs);

    let header = vec!["protocol", "1 B/cyc", "2 B/cyc", "3 B/cyc"];
    let mut rows = Vec::new();
    for protocol in [Protocol::Directory, Protocol::Snooping] {
        let mut row = vec![format!("{protocol:?}")];
        for bw in bandwidths {
            row.push(fmt_pm(mean_ratio_of(&result, &format!("{protocol:?}/{bw}"))));
        }
        rows.push(row);
    }
    print_table(
        "runtime of DVMC system normalized to unprotected system",
        &header,
        &rows,
    );
    println!("\n(The paper finds the variations statistically insignificant: DVMC");
    println!(" traffic is absorbed by idle periods between traffic bursts.)");
}
