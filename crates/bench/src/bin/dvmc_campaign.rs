//! `dvmc-campaign` — the standalone front end of the parallel campaign
//! runner: expands a named sweep into cells, fans them across `--jobs`
//! workers, prints a per-tag summary, and writes the machine-readable
//! `BENCH_campaign.json`.
//!
//! ```text
//! dvmc-campaign --sweep=smoke --jobs=4 --out=results/BENCH_campaign.json
//! ```
//!
//! Flags beyond the common `exp_*` set:
//!
//! * `--sweep=smoke|runtime|error-detection` — which grid to run
//!   (default `smoke`)
//! * `--out=PATH` — full JSON, cells + timing (default
//!   `results/BENCH_campaign.json`)
//! * `--canonical-out=PATH` — cells-only canonical JSON, byte-identical
//!   across `--jobs` values (the CI smoke job diffs two of these)
//! * `--metrics` — attach checker observability rings to every cell and
//!   write the per-node metrics + forensics JSON (also byte-identical
//!   across `--jobs`)
//! * `--obs-out=PATH` — where `--metrics` writes its JSON (default
//!   `results/BENCH_obs.json`)
//!
//! Per-cell seeds come from `dvmc_types::rng::campaign_cell_seed`, a
//! SplitMix64 derivation of (base seed, cell index, trial) computed
//! during serial expansion — worker count and completion order never
//! influence them.

use dvmc_bench::{print_table, Campaign, ExpOpts, RunSpec};
use dvmc_consistency::Model;
use dvmc_faults::random_plan;
use dvmc_sim::{Protection, Protocol, SystemBuilder};
use dvmc_types::rng::{campaign_cell_seed, det_rng};
use dvmc_workloads::spec::WorkloadKind;
use std::path::PathBuf;

fn sweep_usage() -> ! {
    eprintln!(
        "usage: dvmc-campaign [--sweep=smoke|runtime|error-detection] [--out=PATH] \
         [--canonical-out=PATH] [--metrics] [--obs-out=PATH] [common exp_* flags]"
    );
    std::process::exit(2)
}

/// Queues `opts.runs` trials of `spec`, with per-trial perturbations
/// derived from the cell index (decorrelated across the whole sweep).
fn push_cells(campaign: &mut Campaign, opts: &ExpOpts, tag: String, spec: RunSpec) {
    let cell = campaign.len() as u64;
    for trial in 0..opts.runs {
        let perturbation = campaign_cell_seed(opts.seed, cell, trial);
        campaign.push(tag.clone(), trial, spec.config(opts.seed, perturbation), opts.max_cycles);
    }
}

/// A fast sanity grid: two contrasting workloads, protected vs. not.
fn smoke(opts: &ExpOpts) -> Campaign {
    let mut campaign = Campaign::new();
    for kind in [WorkloadKind::Jbb, WorkloadKind::Slash] {
        for protection in [Protection::BASE, Protection::FULL] {
            let mut spec = RunSpec::new(opts, kind);
            spec.protection = protection;
            push_cells(&mut campaign, opts, format!("{kind}/{}", protection.label()), spec);
        }
    }
    campaign
}

/// The Figure 3/4 grid: workload × model × {Base, DVMC}.
fn runtime(opts: &ExpOpts) -> Campaign {
    let mut campaign = Campaign::new();
    for kind in dvmc_bench::workloads() {
        for model in [Model::Sc, Model::Tso, Model::Pso, Model::Rmo] {
            for protection in [Protection::BASE, Protection::FULL] {
                let mut spec = RunSpec::new(opts, kind);
                spec.model = model;
                spec.protection = protection;
                push_cells(
                    &mut campaign,
                    opts,
                    format!("{kind}/{model}/{}", protection.label()),
                    spec,
                );
            }
        }
    }
    campaign
}

/// The §6.1 random fault-injection grid: model × protocol × random plans.
fn error_detection(opts: &ExpOpts) -> Campaign {
    let mut campaign = Campaign::new();
    for model in [Model::Sc, Model::Tso, Model::Pso, Model::Rmo] {
        for protocol in [Protocol::Directory, Protocol::Snooping] {
            let mut rng = det_rng(opts.seed ^ model as u64 ^ ((protocol as u64) << 8));
            for t in 0..opts.runs.max(2) {
                let plan = random_plan(&mut rng, opts.nodes, 10_000, 60_000);
                let cfg = SystemBuilder::new()
                    .nodes(opts.nodes)
                    .model(model)
                    .protocol(protocol)
                    .workload(WorkloadKind::Oltp, u64::MAX / 2)
                    .seed(opts.seed + t as u64)
                    .fault(plan)
                    .watchdog(100_000)
                    .max_cycles(3_000_000)
                    .into_config()
                    .expect("valid trial config");
                campaign.push(format!("{model}/{protocol:?}"), t, cfg, 3_000_000);
            }
        }
    }
    campaign
}

fn main() {
    let mut sweep = String::from("smoke");
    let mut out = PathBuf::from("results/BENCH_campaign.json");
    let mut canonical_out: Option<PathBuf> = None;
    let mut metrics = false;
    let mut obs_out = PathBuf::from("results/BENCH_obs.json");
    let opts = ExpOpts::from_args_with(|key, value| match key {
        "--sweep" => {
            sweep = value.to_string();
            true
        }
        "--out" => {
            out = PathBuf::from(value);
            true
        }
        "--canonical-out" => {
            canonical_out = Some(PathBuf::from(value));
            true
        }
        "--metrics" => {
            metrics = true;
            true
        }
        "--obs-out" => {
            obs_out = PathBuf::from(value);
            true
        }
        _ => false,
    });

    let mut campaign = match sweep.as_str() {
        "smoke" => smoke(&opts),
        "runtime" => runtime(&opts),
        "error-detection" => error_detection(&opts),
        _ => sweep_usage(),
    };
    if metrics {
        campaign.enable_obs(dvmc_core::obs::DEFAULT_RING_CAPACITY);
    }
    println!(
        "campaign: sweep={sweep}, {} cells, {} jobs, {} nodes, {} txns/thread, seed {}",
        campaign.len(),
        opts.jobs,
        opts.nodes,
        opts.txns,
        opts.seed
    );
    let result = campaign.run(opts.jobs);

    // Per-tag summary (submission order, deduplicated).
    let mut tags: Vec<&str> = Vec::new();
    for outcome in result.outcomes() {
        if tags.last() != Some(&outcome.tag.as_str()) {
            tags.push(&outcome.tag);
        }
    }
    let rows: Vec<Vec<String>> = tags
        .iter()
        .map(|tag| {
            let reports = result.reports(tag);
            let mean_cycles =
                reports.iter().map(|r| r.cycles as f64).sum::<f64>() / reports.len() as f64;
            let detections = reports.iter().filter(|r| r.detection.is_some()).count();
            vec![
                (*tag).to_string(),
                format!("{}", reports.len()),
                format!("{mean_cycles:.0}"),
                format!("{detections}"),
            ]
        })
        .collect();
    print_table("campaign summary", &["tag", "cells", "mean cycles", "detections"], &rows);
    println!(
        "\nwall {:.2}s, serial-equivalent {:.2}s, speedup {:.2}x on {} workers",
        result.wall().as_secs_f64(),
        result.serial_wall().as_secs_f64(),
        result.speedup(),
        result.jobs()
    );

    result.write_json(&out);
    if let Some(path) = canonical_out {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(&path, result.canonical_json())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("[campaign] wrote {} (canonical)", path.display());
    }
    if metrics {
        if let Some(dir) = obs_out.parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(&obs_out, result.obs_json())
            .unwrap_or_else(|e| panic!("write {}: {e}", obs_out.display()));
        eprintln!("[campaign] wrote {} (observability)", obs_out.display());
    }
}
