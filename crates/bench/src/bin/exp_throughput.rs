//! **Kernel-throughput campaign** (DESIGN.md §14): measures what the
//! event-scheduled kernel and the incremental checkpoint log buy over
//! the legacy every-cycle kernel and whole-machine snapshots, on the
//! same open-loop service traffic `exp_soak` uses.
//!
//! Three traffic arms × three kernel/checkpoint modes:
//!
//! * `quiet` — sparse arrivals (most cycles are quiescent; the
//!   event kernel's best case). **Gate:** the event kernel covers at
//!   least 5× the cycles per executed tick that the legacy kernel does
//!   (`skip ratio ≥ 5`), while behaving bit-identically.
//! * `busy` — saturating arrivals (the event kernel's worst case; the
//!   gate is only that it never *loses* ground: ratio ≥ 1).
//! * `storm` — busy traffic plus a transient fault storm with in-line
//!   rollback/recovery, proving the skip machinery and the delta log
//!   hold up under the full recovery path.
//!
//! Within each traffic arm, all three modes must report identical
//! machine behaviour — same final cycle, same memory digest, same
//! window stream — or the campaign aborts: the optimizations are only
//! admissible while they are invisible.
//!
//! The canonical JSON written to `--out` contains only integers reduced
//! in submission order from pure-function cells, so it is byte-identical
//! at any `--jobs` (CI compares `--jobs=1` against `--jobs=2`).
//! Wall-clock timings are printed to the table for human eyes but kept
//! **out** of the artifact.

use dvmc_bench::campaign::json_str;
use dvmc_bench::soak::{run_soak, SoakOutcome, SoakSpec};
use dvmc_bench::{parallel_map_indexed, print_table, ExpOpts};
use dvmc_consistency::Model;
use dvmc_faults::{storm_plan, StormConfig};
use dvmc_sim::{CheckpointMode, KernelMode, ServiceStop};
use dvmc_types::rng::{det_rng, derive_seed};
use dvmc_types::Cycle;
use std::fmt::Write as _;
use std::time::Instant;

const WATCHDOG: Cycle = 100_000;

/// The three kernel/checkpoint modes under comparison.
const MODES: [(&str, KernelMode, CheckpointMode); 3] = [
    ("legacy-snapshot", KernelMode::Legacy, CheckpointMode::Snapshot),
    ("event-snapshot", KernelMode::Event, CheckpointMode::Snapshot),
    ("event-delta", KernelMode::Event, CheckpointMode::DeltaLog),
];

struct Cell {
    spec: SoakSpec,
    arm: &'static str,
    mode: &'static str,
}

fn main() {
    let mut duration: Cycle = 600_000;
    let mut window: Cycle = 50_000;
    let mut quiet_gap: u32 = 16_000;
    let mut busy_gap: u32 = 400;
    let mut out = String::from("results/BENCH_throughput.json");
    let opts = ExpOpts::from_args_with(|key, value| match key {
        "--duration" => {
            duration = value.parse().expect("--duration=CYCLES");
            true
        }
        "--window" => {
            window = value.parse().expect("--window=CYCLES");
            true
        }
        "--quiet-gap" => {
            quiet_gap = value.parse().expect("--quiet-gap=CYCLES");
            true
        }
        "--busy-gap" => {
            busy_gap = value.parse().expect("--busy-gap=CYCLES");
            true
        }
        "--out" => {
            out = value.to_string();
            true
        }
        _ => false,
    });
    assert!(window > 0 && duration >= window, "need --duration >= --window > 0");

    // One storm, expanded once and shared verbatim by every storm-arm
    // mode: cross-mode equivalence requires identical inputs.
    let storm_cfg = StormConfig {
        mean_gap: (duration / 8).max(1),
        burst: (1, 3),
        burst_spread: 2_000,
        persistent_every: 0,
    };
    let mut rng = det_rng(derive_seed(opts.seed, 0x7490));
    let storm = storm_plan(&mut rng, opts.nodes, duration / 20, duration, &storm_cfg);

    let arms: [(&str, u32, Vec<dvmc_faults::FaultPlan>); 3] = [
        ("quiet", quiet_gap, Vec::new()),
        ("busy", busy_gap, Vec::new()),
        ("storm", busy_gap, storm),
    ];
    let mut cells: Vec<Cell> = Vec::new();
    for (ai, (arm, mean_gap, plans)) in arms.into_iter().enumerate() {
        for (mode, kernel, checkpoint) in MODES {
            cells.push(Cell {
                spec: SoakSpec {
                    tag: format!("throughput/{arm}/{mode}"),
                    protocol: opts.protocol,
                    schedule: vec![(Model::Tso, duration)],
                    nodes: opts.nodes,
                    mean_gap,
                    // Seed varies by arm only: the three modes of one arm
                    // must simulate the *same* machine history.
                    seed: derive_seed(opts.seed, 0x7E00 + ai as u64),
                    plans: plans.clone(),
                    window,
                    max_retries: 4,
                    watchdog: WATCHDOG,
                    kernel,
                    checkpoint,
                },
                arm,
                mode,
            });
        }
    }

    println!(
        "throughput: {} cells, horizon {duration} cycles, window {window}, {} nodes, {} jobs",
        cells.len(),
        opts.nodes,
        opts.jobs
    );

    // Wall-clock timings ride alongside each outcome for display only —
    // they never reach the canonical artifact.
    let outcomes: Vec<(SoakOutcome, f64)> = parallel_map_indexed(
        &cells,
        opts.jobs,
        |_, cell| {
            let t0 = Instant::now();
            let got = run_soak(&cell.spec, &mut |_| {});
            (got, t0.elapsed().as_secs_f64())
        },
        |_| {},
    );

    // Cross-mode equivalence: within an arm, every mode must have
    // simulated the identical machine.
    for arm_cells in cells.chunks(MODES.len()).zip(outcomes.chunks(MODES.len())) {
        let (specs, got) = arm_cells;
        let base = &got[0].0.service;
        for (cell, (other, _)) in specs.iter().zip(got).skip(1) {
            let svc = &other.service;
            assert_eq!(
                base.report.cycles, svc.report.cycles,
                "{}: cycle count diverged from {}",
                cell.spec.tag, specs[0].spec.tag
            );
            assert_eq!(
                base.report.memory_digest, svc.report.memory_digest,
                "{}: memory digest diverged from {}",
                cell.spec.tag, specs[0].spec.tag
            );
            assert_eq!(
                format!("{:?}", base.windows),
                format!("{:?}", svc.windows),
                "{}: window stream diverged from {}",
                cell.spec.tag, specs[0].spec.tag
            );
        }
    }

    // Serial aggregation in submission order.
    let mut rows = Vec::new();
    let mut cells_json = String::new();
    for (cell, (got, wall)) in cells.iter().zip(&outcomes) {
        let svc = &got.service;
        assert_eq!(
            svc.stopped,
            ServiceStop::Horizon,
            "{}: stopped {:?} at cycle {} (violations: {:?})",
            cell.spec.tag,
            svc.stopped,
            svc.report.cycles,
            svc.report.violations
        );
        let covered = got.executed + got.skipped;
        // Integer skip ratio in thousandths: deterministic, so it can
        // live in the byte-compared artifact (wall-clock cannot).
        let ratio_milli = covered * 1_000 / got.executed.max(1);
        match (cell.arm, cell.spec.kernel) {
            ("quiet", KernelMode::Event) => assert!(
                ratio_milli >= 5_000,
                "{}: quiet-arm skip ratio {}.{:03}x under the 5x gate",
                cell.spec.tag,
                ratio_milli / 1_000,
                ratio_milli % 1_000
            ),
            (_, KernelMode::Event) => assert!(
                ratio_milli >= 1_000,
                "{}: the event kernel lost ground",
                cell.spec.tag
            ),
            (_, KernelMode::Legacy) => assert_eq!(
                got.skipped, 0,
                "{}: the legacy kernel must never skip",
                cell.spec.tag
            ),
        }
        rows.push(vec![
            cell.spec.tag.clone(),
            format!("{}", svc.report.cycles),
            format!("{}", got.executed),
            format!("{}", got.skipped),
            format!("{}.{:03}x", ratio_milli / 1_000, ratio_milli % 1_000),
            format!("{}", got.checkpoint.snapshots_taken),
            format!("{}", got.checkpoint.bytes_logged),
            format!("{}", got.checkpoint.rollbacks),
            format!("{wall:.2}s"),
        ]);
        if !cells_json.is_empty() {
            cells_json.push(',');
        }
        let _ = write!(
            cells_json,
            "{{\"tag\":{},\"arm\":{},\"mode\":{},\"cycles\":{},\"executed\":{},\
             \"skipped\":{},\"ratio_milli\":{ratio_milli},\"retired\":{},\"injected\":{},\
             \"episodes\":{},\"ckpt_taken\":{},\"ckpt_bytes\":{},\"ckpt_parts\":{},\
             \"rollbacks\":{},\"parts_restored\":{},\"undo_replay\":{}}}",
            json_str(&cell.spec.tag),
            json_str(cell.arm),
            json_str(cell.mode),
            svc.report.cycles,
            got.executed,
            got.skipped,
            svc.report.retired_ops(),
            svc.injected,
            svc.episodes.len(),
            got.checkpoint.snapshots_taken,
            got.checkpoint.bytes_logged,
            got.checkpoint.parts_captured,
            got.checkpoint.rollbacks,
            got.checkpoint.parts_restored,
            got.checkpoint.undo_replay_cycles,
        );
    }
    print_table(
        "kernel throughput (wall-clock is display-only)",
        &["cell", "cycles", "executed", "skipped", "ratio", "ckpts", "ckpt bytes", "rollbacks",
          "wall"],
        &rows,
    );

    // Human-facing wall-clock summary: quiet-arm speedup of the event
    // kernel over legacy (soft observation; machine load makes it
    // unsuitable as a gate or artifact field).
    let wall_of = |tag_mode: &str| {
        cells
            .iter()
            .zip(&outcomes)
            .find(|(c, _)| c.arm == "quiet" && c.mode == tag_mode)
            .map(|(_, (_, w))| *w)
    };
    if let (Some(legacy), Some(event)) = (wall_of("legacy-snapshot"), wall_of("event-delta")) {
        if event > 0.0 {
            println!("\nquiet-arm wall-clock: legacy {legacy:.2}s vs event {event:.2}s \
                      ({:.1}x)", legacy / event);
        }
    }

    let json = format!(
        "{{\"schema\":\"dvmc-throughput/v1\",\"duration\":{duration},\"window\":{window},\
         \"quiet_gap\":{quiet_gap},\"busy_gap\":{busy_gap},\"nodes\":{},\"seed\":{},\
         \"cells\":[{cells_json}]}}\n",
        opts.nodes, opts.seed,
    );
    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(path, json).expect("write throughput artifact");
    println!("wrote {out}");
    println!(
        "throughput holds: the event kernel skips >=5x on quiet traffic, never loses ground, \
         and every mode is behaviourally identical."
    );
}
