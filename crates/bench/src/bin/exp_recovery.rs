//! **§6.1 end-to-end recovery**: injects one fault of every category into
//! a finite benchmark run with full checkpoint/rollback/replay armed, and
//! proves the paper's premise that detection within the BER window makes
//! the error *recoverable* — by actually recovering it.
//!
//! For every transient fault the run must (a) detect the error, (b) roll
//! back to a validated pre-error checkpoint and replay to completion, and
//! (c) finish with memory byte-identical to a fault-free golden run of
//! the same configuration (same cycle count, too: replay retraces the
//! golden timeline). The one persistent fault (`cache-stuck`) must
//! re-manifest on every replay, exhaust its retries with escalating
//! checkpoint back-off, and end `Unrecoverable` with non-empty detection
//! forensics.
//!
//! Every cell is a pure function of its config and all seeds are fixed at
//! expansion time, so the canonical JSON written to `--out` is
//! byte-identical at any `--jobs` (the CI gate compares `--jobs=1`
//! against `--jobs=2`).

use dvmc_bench::{print_table, Campaign, ExpOpts};
use dvmc_faults::{all_faults, Fault, FaultPlan};
use dvmc_sim::{
    RecoveryOutcome, RecoveryPolicy, RunReport, SafetyNetConfig, SystemBuilder, SystemConfig,
};
use dvmc_types::NodeId;
use dvmc_workloads::spec::WorkloadKind;

const MAX_CYCLES: u64 = 30_000_000;
/// Injection time; chosen to coincide with a checkpoint boundary so the
/// rollback exercises the subtlest case — a checkpoint taken the same
/// cycle the fault lands, which the snapshot-before-inject tick ordering
/// keeps clean.
const INJECT_AT: u64 = 20_000;
const MAX_RETRIES: u32 = 3;

/// A long-latency SafetyNet: latent cache corruption surfaces only when
/// the line's epoch ends (eviction/CRC), which takes ~2M cycles — the
/// recovery window must still hold a pre-error checkpoint then. The
/// paper's default (100k-cycle window) targets its much faster common
/// case; this config trades log depth for window length.
fn ber_config() -> SafetyNetConfig {
    SafetyNetConfig {
        checkpoint_interval: 20_000,
        validation_latency: 10_000,
        max_checkpoints: 150, // 3M-cycle window
        coordination_bytes: 16,
    }
}

fn cell(opts: &ExpOpts, txns: u64, fault: Option<Fault>) -> SystemConfig {
    let mut b = SystemBuilder::new()
        .nodes(opts.nodes)
        .protocol(opts.protocol)
        .workload(WorkloadKind::Oltp, txns)
        .seed(opts.seed)
        .ber_config(ber_config())
        .recovery(RecoveryPolicy {
            max_retries: MAX_RETRIES,
            backoff_factor: 2,
        })
        .watchdog(100_000)
        .max_cycles(MAX_CYCLES);
    if let Some(fault) = fault {
        b = b.fault(FaultPlan {
            at_cycle: INJECT_AT,
            fault,
        });
    }
    b.into_config().expect("valid recovery cell")
}

fn outcome_label(report: &RunReport) -> &'static str {
    match (&report.detection, &report.recovery) {
        (None, _) => "masked",
        (Some(_), Some(rec)) if rec.outcome == RecoveryOutcome::Recovered => "recovered",
        (Some(_), Some(_)) => "unrecoverable",
        (Some(_), None) => "detected",
    }
}

fn main() {
    let mut out = String::from("results/BENCH_recovery.json");
    let opts = ExpOpts::from_args_with(|key, value| match key {
        "--out" => {
            out = value.to_string();
            true
        }
        _ => false,
    });
    // The golden run must outlast the slowest organic detection (latent
    // cache corruption at ~2M cycles), so the common `--txns` knob is
    // scaled up: the default 24 becomes 1800 transactions per thread.
    let txns = opts.txns.max(1) * 75;
    println!(
        "§6.1 — end-to-end recovery: golden + {} fault categories, {} nodes, {} txns/thread, {} jobs",
        all_faults(NodeId(1), NodeId(2)).len(),
        opts.nodes,
        txns,
        opts.jobs
    );

    let mut campaign = Campaign::new();
    campaign.push("golden", 0, cell(&opts, txns, None), MAX_CYCLES);
    let faults = all_faults(NodeId(1), NodeId(2));
    for fault in &faults {
        campaign.push(
            format!("recover/{fault}"),
            0,
            cell(&opts, txns, Some(*fault)),
            MAX_CYCLES,
        );
    }
    // Rings on every cell: recovery events (started/escalated/completed)
    // land in node 0's metrics, and unrecoverable verdicts must carry a
    // forensic chain.
    campaign.enable_obs(16);
    let result = campaign.run(opts.jobs);

    let golden = &result.reports("golden")[0];
    assert!(golden.completed, "golden run must complete");
    assert!(golden.violations.is_empty(), "golden run must be clean");
    assert!(golden.recovery.is_none(), "golden run has nothing to recover");

    let mut rows = Vec::new();
    let mut recovered = 0usize;
    let mut masked = 0usize;
    let mut unrecoverable = 0usize;
    for fault in &faults {
        let tag = format!("recover/{fault}");
        let report = &result.reports(&tag)[0];
        let label = outcome_label(report);
        let (attempts, escalations) = report
            .recovery
            .map_or((0, 0), |r| (r.attempts, r.escalations));
        rows.push(vec![
            fault.to_string(),
            if fault.is_transient() { "transient" } else { "persistent" }.into(),
            label.into(),
            report
                .detection
                .as_ref()
                .map_or("-".into(), |d| format!("{}", d.latency())),
            format!("{attempts}"),
            format!("{escalations}"),
            if report.memory_digest == golden.memory_digest { "yes" } else { "NO" }.into(),
        ]);
        if fault.is_transient() {
            match label {
                "recovered" => {
                    recovered += 1;
                    let rec = report.recovery.expect("labelled recovered");
                    assert!(rec.attempts >= 1, "{tag}: recovered without a rollback?");
                    assert!(
                        report.completed && report.violations.is_empty(),
                        "{tag}: no false violations may survive rollback/replay ({:?})",
                        report.violations
                    );
                    assert_eq!(
                        report.memory_digest, golden.memory_digest,
                        "{tag}: post-recovery memory must match the fault-free run"
                    );
                    assert_eq!(
                        report.cycles, golden.cycles,
                        "{tag}: replay must retrace the golden timeline"
                    );
                    let det = report.detection.as_ref().expect("labelled recovered");
                    assert!(det.recoverable, "{tag}: detected within the BER window");
                }
                "masked" => {
                    // The fault never manifested an error (e.g. a duplicate
                    // or drop absorbed by the protocol): nothing to recover,
                    // and the run must complete with a clean end-of-run
                    // audit. The final memory image need *not* match golden:
                    // a tolerated fault can shift message timing into a
                    // different-but-correct interleaving, and Oltp's final
                    // memory depends on the interleaving. Correctness here
                    // is vouched for by the checkers, not by a golden diff.
                    masked += 1;
                    assert!(
                        report.completed && report.violations.is_empty(),
                        "{tag}: masked fault left the run unclean"
                    );
                }
                other => panic!("{tag}: transient fault ended '{other}'"),
            }
        } else {
            unrecoverable += 1;
            let rec = report
                .recovery
                .unwrap_or_else(|| panic!("{tag}: persistent fault never entered recovery"));
            assert_eq!(
                rec.outcome,
                RecoveryOutcome::Unrecoverable,
                "{tag}: a persistent fault cannot be replayed away"
            );
            assert_eq!(
                rec.attempts, MAX_RETRIES,
                "{tag}: every allowed retry must be spent first"
            );
            assert_eq!(
                rec.escalations,
                MAX_RETRIES - 1,
                "{tag}: each retry after the first escalates"
            );
            let forensics = report
                .forensics
                .as_ref()
                .unwrap_or_else(|| panic!("{tag}: unrecoverable verdict without forensics"));
            assert!(
                !forensics.trace.is_empty(),
                "{tag}: forensic trace must not be empty"
            );
        }
    }
    print_table(
        "end-to-end recovery (golden-diff digest)",
        &["fault", "class", "outcome", "latency", "attempts", "escalations", "memory=golden"],
        &rows,
    );
    let transients = faults.iter().filter(|f| f.is_transient()).count();
    assert_eq!(
        recovered + masked,
        transients,
        "every transient fault must end recovered (or provably masked)"
    );
    println!(
        "\n{recovered}/{transients} transient faults detected+recovered, {masked} masked \
         (never manifested), {unrecoverable} persistent fault(s) correctly unrecoverable."
    );
    println!(
        "golden: {} cycles, {} transactions, memory digest {:#018x}",
        golden.cycles, golden.transactions, golden.memory_digest
    );

    // Recovery forensics: what was detected and rolled back, per cell.
    println!("\n=== recovery forensics (first-detection chains) ===");
    for outcome in result.outcomes() {
        let report = &outcome.report;
        let (Some(rec), Some(forensics)) = (&report.recovery, &report.forensics) else {
            continue;
        };
        println!(
            "{}: {:?} after {} attempt(s): node{} @{}: {}",
            outcome.tag,
            rec.outcome,
            rec.attempts,
            forensics.node.index(),
            forensics.cycle,
            forensics.chain()
        );
    }

    // Canonical (timing-free) form: the artifact itself is the CI
    // determinism gate, byte-compared across `--jobs` values.
    result.write_canonical_json(std::path::Path::new(&out));
    println!("\nwrote {out}");
}
