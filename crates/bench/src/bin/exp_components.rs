//! **Figure 5**: the component breakdown of DVMC overhead on the
//! directory TSO system — Base, SN (SafetyNet only), SN+DVCC (coherence
//! verification), SN+DVUO (uniprocessor-ordering verification), and full
//! DVMC, normalized to Base.
//!
//! Paper shape to reproduce: Uniprocessor Ordering verification is the
//! dominant cause of slowdown; each mechanism alone adds little; full
//! DVMC is no slower than SN+DVUO.

use dvmc_bench::{fmt_pm, normalize, print_table, runtime_stats, Campaign, ExpOpts, RunSpec};
use dvmc_sim::Protection;

const CONFIGS: [Protection; 5] = [
    Protection::BASE,
    Protection::SN,
    Protection::SN_DVCC,
    Protection::SN_DVUO,
    Protection::FULL,
];

fn main() {
    let opts = ExpOpts::from_args();
    println!(
        "Figure 5 — protection-component breakdown (TSO, {:?} protocol, {} nodes, {} runs, {} jobs)",
        opts.protocol, opts.nodes, opts.runs, opts.jobs
    );

    let mut campaign = Campaign::new();
    for kind in dvmc_bench::workloads() {
        for protection in CONFIGS {
            let mut spec = RunSpec::new(&opts, kind);
            spec.protection = protection;
            campaign.push_spec(&opts, format!("{kind}/{}", protection.label()), spec);
        }
    }
    let result = campaign.run(opts.jobs);

    let header: Vec<&str> = std::iter::once("workload")
        .chain(CONFIGS.iter().map(dvmc_sim::Protection::label))
        .collect();
    let mut rows = Vec::new();
    let mut dominant_holds = true;
    for kind in dvmc_bench::workloads() {
        let stats_of = |protection: Protection| {
            runtime_stats(result.expect_clean(&format!("{kind}/{}", protection.label())))
        };
        let base = stats_of(Protection::BASE);
        let mut row = vec![kind.to_string()];
        let mut means = Vec::new();
        for protection in CONFIGS {
            let stats = stats_of(protection);
            means.push(stats.0 / base.0);
            row.push(fmt_pm(normalize(stats, base.0)));
        }
        // DVUO (index 3) should carry more of the overhead than DVCC (2).
        if means[3] < means[2] {
            dominant_holds = false;
        }
        rows.push(row);
    }
    print_table("runtime normalized to Base", &header, &rows);
    println!(
        "\nDVUO dominates DVCC overhead on every workload: {}",
        if dominant_holds { "yes (matches paper)" } else { "no (see EXPERIMENTS.md discussion)" }
    );
}
