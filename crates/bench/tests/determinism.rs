//! Campaign determinism regression: the same sweep run serially and on a
//! saturated worker pool must produce byte-identical canonical JSON.
//! This is the contract every `exp_*` number rests on — `--jobs` may only
//! change the wall clock, never a result.

use dvmc_bench::{Campaign, ExpOpts, RunSpec};
use dvmc_consistency::Model;
use dvmc_sim::Protection;
use dvmc_workloads::spec::WorkloadKind;

fn small_sweep(opts: &ExpOpts) -> Campaign {
    let mut campaign = Campaign::new();
    for kind in [WorkloadKind::Jbb, WorkloadKind::Oltp, WorkloadKind::Slash] {
        for model in [Model::Tso, Model::Rmo] {
            for protection in [Protection::BASE, Protection::FULL] {
                let mut spec = RunSpec::new(opts, kind);
                spec.model = model;
                spec.protection = protection;
                campaign.push_spec(opts, format!("{kind}/{model}/{}", protection.label()), spec);
            }
        }
    }
    campaign
}

#[test]
fn jobs_1_and_jobs_8_are_byte_identical() {
    let opts = ExpOpts {
        runs: 2,
        txns: 2,
        nodes: 2,
        ..ExpOpts::default()
    };
    let serial = small_sweep(&opts).run(1);
    let parallel = small_sweep(&opts).run(8);
    assert_eq!(serial.jobs(), 1);
    assert!(parallel.jobs() > 1, "pool should actually be parallel");
    assert_eq!(
        serial.canonical_json(),
        parallel.canonical_json(),
        "worker count leaked into campaign results"
    );
}

#[test]
fn repeated_runs_are_byte_identical() {
    // Same spec, same jobs: canonical output is a pure function of the
    // sweep (no timestamps, pointers, or scheduling artifacts).
    let opts = ExpOpts {
        runs: 1,
        txns: 2,
        nodes: 2,
        ..ExpOpts::default()
    };
    let a = small_sweep(&opts).run(4);
    let b = small_sweep(&opts).run(4);
    assert_eq!(a.canonical_json(), b.canonical_json());
}
