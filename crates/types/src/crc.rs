//! CRC-16 block hashing (§4.3 "Data Block Hashing").
//!
//! The paper hashes 64-byte data blocks down to 16 bits with CRC-16 before
//! storing them in CETs and METs or shipping them in Inform-Epoch messages.
//! CRC-16 detects every error pattern of fewer than 16 erroneous bits within
//! a single block, and aliases with probability 1/65535 for wider patterns.
//!
//! We use the CRC-16/CCITT-FALSE parameterization (polynomial `0x1021`,
//! initial value `0xFFFF`), computed bitwise from a compile-time table.

const POLY: u16 = 0x1021;
const INIT: u16 = 0xFFFF;

const fn build_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u16; 256] = build_table();

/// Computes the CRC-16/CCITT-FALSE checksum of `data`.
///
/// ```rust
/// assert_eq!(dvmc_types::crc16(b"123456789"), 0x29B1);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc = INIT;
    for &b in data {
        crc = (crc << 8) ^ TABLE[((crc >> 8) ^ b as u16) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Bit-at-a-time reference implementation (no table), for
    /// cross-checking the table-driven one.
    fn crc16_bitwise(data: &[u8]) -> u16 {
        let mut crc = INIT;
        for &b in data {
            crc ^= u16::from(b) << 8;
            for _ in 0..8 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ POLY
                } else {
                    crc << 1
                };
            }
        }
        crc
    }

    #[test]
    fn known_check_value() {
        // The standard check value for CRC-16/CCITT-FALSE.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn known_answer_vectors() {
        // Fixed vectors, each confirmed by the independent bitwise
        // implementation so the table and the parameterization are both
        // pinned.
        let vectors: [&[u8]; 5] = [b"", b"A", b"abc", &[0x00; 64], &[0xFF; 64]];
        for v in vectors {
            assert_eq!(crc16(v), crc16_bitwise(v), "vector {v:?}");
        }
        assert_eq!(crc16(b"A"), crc16_bitwise(b"A"));
        assert_eq!(crc16(&[0u8; 64]), crc16_bitwise(&[0u8; 64]));
    }

    #[test]
    fn empty_is_init() {
        assert_eq!(crc16(&[]), 0xFFFF);
    }

    #[test]
    fn detects_single_bit_flips_in_block() {
        // The paper's guarantee: no false negatives for blocks with fewer
        // than 16 erroneous bits. Exhaustively confirm for 1-bit flips over
        // a 64-byte block.
        let base = [0xA5u8; 64];
        let h = crc16(&base);
        for bit in 0..(64 * 8) {
            let mut corrupted = base;
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc16(&corrupted), h, "missed flip at bit {bit}");
        }
    }

    proptest! {
        #[test]
        fn detects_single_bit_flips_on_random_blocks(
            data in proptest::collection::vec(any::<u8>(), 64),
            bit in 0usize..512,
        ) {
            // The paper's no-false-negative guarantee for < 16 erroneous
            // bits, on arbitrary block contents rather than a fixed base.
            let mut corrupted = data.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            prop_assert_ne!(crc16(&corrupted), crc16(&data));
        }

        #[test]
        fn detects_double_bit_flips(data in proptest::collection::vec(any::<u8>(), 64),
                                    a in 0usize..512, b in 0usize..512) {
            prop_assume!(a != b);
            let mut corrupted = data.clone();
            corrupted[a / 8] ^= 1 << (a % 8);
            corrupted[b / 8] ^= 1 << (b % 8);
            prop_assert_ne!(crc16(&corrupted), crc16(&data));
        }

        #[test]
        fn deterministic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assert_eq!(crc16(&data), crc16(&data));
        }
    }
}
