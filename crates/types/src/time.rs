//! Physical cycles and the 16-bit logical time of the coherence checker.

use std::fmt;

/// A physical simulation cycle count.
pub type Cycle = u64;

/// A 16-bit logical timestamp (§4.3 "Logical Time").
///
/// The paper deliberately keeps logical times small (16 bits) to bound
/// storage and error-detection latency, and scrubs old timestamps out of the
/// CETs and METs before wraparound can make comparisons ambiguous.
///
/// `Ts16` therefore provides **windowed** comparison: `a` is considered
/// earlier than `b` when the wrapping distance from `a` to `b` is less than
/// half the timestamp space (2^15). The scrubbing machinery in
/// `dvmc-core::coherence` guarantees that all live timestamps stay within
/// one window of each other, which makes windowed comparison exact.
///
/// At *exactly* half-window distance the signed delta is `i16::MIN` in both
/// directions (`i16::MIN.wrapping_neg()` is itself), so a raw sign test
/// would deem neither timestamp earlier — and `max_windowed` would not
/// commute. Scrubbing makes this distance unreachable for live timestamps,
/// but stale entries on the scrub horizon can land on it, so the comparison
/// breaks the tie deterministically: at exactly half-window distance the
/// timestamp with the smaller raw `u16` value is the earlier one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Ts16(pub u16);

impl Ts16 {
    /// Half the timestamp space; the largest distance at which windowed
    /// comparison is unambiguous.
    pub const WINDOW: u16 = 1 << 15;

    /// Truncates a full-width logical time to its 16-bit wire form.
    #[inline]
    pub fn from_full(t: u64) -> Ts16 {
        Ts16(t as u16)
    }

    /// Signed wrapping distance from `self` to `other`.
    ///
    /// Positive means `other` is later than `self` within the window.
    #[inline]
    pub fn delta(self, other: Ts16) -> i16 {
        other.0.wrapping_sub(self.0) as i16
    }

    /// Windowed "earlier than".
    ///
    /// Antisymmetric for *all* pairs: at exactly half-window distance
    /// (`delta == i16::MIN`, its own `wrapping_neg`) the sign of the delta
    /// is the same in both directions, so the smaller raw `u16` value is
    /// deemed earlier as a deterministic tie-break.
    #[inline]
    pub fn earlier_than(self, other: Ts16) -> bool {
        let d = self.delta(other);
        d > 0 || (d == i16::MIN && self.0 < other.0)
    }

    /// Windowed "earlier than or equal". Consistent with
    /// [`earlier_than`](Self::earlier_than), including its half-window
    /// tie-break: `a.earlier_or_eq(b) == !b.earlier_than(a)`.
    #[inline]
    pub fn earlier_or_eq(self, other: Ts16) -> bool {
        !other.earlier_than(self)
    }

    /// The later of two timestamps under windowed comparison.
    #[inline]
    pub fn max_windowed(self, other: Ts16) -> Ts16 {
        if self.earlier_than(other) {
            other
        } else {
            self
        }
    }

    /// The deadline by which an epoch starting now must be reported open
    /// (an eighth of the window). Keeping open-epoch starts this fresh
    /// lets the MET scrub stale end-times up to a quarter-window horizon
    /// without ever clamping past a live start (see
    /// `dvmc-core::coherence` for the margin arithmetic).
    #[inline]
    pub fn scrub_deadline(self) -> Ts16 {
        Ts16(self.0.wrapping_add(Self::WINDOW / 8))
    }
}

impl fmt::Debug for Ts16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Ts16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u16> for Ts16 {
    fn from(v: u16) -> Self {
        Ts16(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_ordering() {
        assert!(Ts16(1).earlier_than(Ts16(2)));
        assert!(!Ts16(2).earlier_than(Ts16(1)));
        assert!(!Ts16(5).earlier_than(Ts16(5)));
        assert!(Ts16(5).earlier_or_eq(Ts16(5)));
    }

    #[test]
    fn wraparound_ordering() {
        // 0xFFFF is "just before" 0x0001 in windowed time.
        assert!(Ts16(0xFFFF).earlier_than(Ts16(0x0001)));
        assert!(!Ts16(0x0001).earlier_than(Ts16(0xFFFF)));
    }

    #[test]
    fn max_windowed_across_wrap() {
        assert_eq!(Ts16(0xFFFE).max_windowed(Ts16(0x0003)), Ts16(0x0003));
        assert_eq!(Ts16(0x0003).max_windowed(Ts16(0xFFFE)), Ts16(0x0003));
    }

    #[test]
    fn truncation_from_full_time() {
        assert_eq!(Ts16::from_full(0x1_0000 + 5), Ts16(5));
    }

    #[test]
    fn half_window_distance_breaks_tie_deterministically() {
        // delta is i16::MIN in both directions here; the smaller raw value
        // wins the tie, keeping earlier_than antisymmetric.
        let (a, b) = (Ts16(0), Ts16(Ts16::WINDOW));
        assert_eq!(a.delta(b), i16::MIN);
        assert_eq!(b.delta(a), i16::MIN);
        assert!(a.earlier_than(b));
        assert!(!b.earlier_than(a));
        assert!(a.earlier_or_eq(b));
        assert!(!b.earlier_or_eq(a));
        assert_eq!(a.max_windowed(b), b);
        assert_eq!(b.max_windowed(a), b);
    }

    proptest! {
        #[test]
        fn windowed_comparison_matches_full_within_window(base in any::<u64>(), d in 1u64..(1 << 15)) {
            let a = Ts16::from_full(base);
            let b = Ts16::from_full(base + d);
            prop_assert!(a.earlier_than(b));
            prop_assert!(!b.earlier_than(a));
        }

        #[test]
        fn delta_is_antisymmetric(a in any::<u16>(), b in any::<u16>()) {
            let (a, b) = (Ts16(a), Ts16(b));
            prop_assert_eq!(a.delta(b), b.delta(a).wrapping_neg());
        }

        /// Pins the half-window boundary: exactly one direction of
        /// `earlier_than` holds for any pair at distance 2^15, and
        /// `max_windowed` commutes there.
        #[test]
        fn exactly_one_direction_at_half_window(base in any::<u16>()) {
            let a = Ts16(base);
            let b = Ts16(base.wrapping_add(Ts16::WINDOW));
            prop_assert!(a.earlier_than(b) ^ b.earlier_than(a));
            prop_assert!(a.earlier_or_eq(b) ^ b.earlier_or_eq(a));
            prop_assert_eq!(a.max_windowed(b), b.max_windowed(a));
        }

        /// The comparison stays a strict total order on every pair within
        /// (or at) one window: irreflexive, antisymmetric, and consistent
        /// with `earlier_or_eq`.
        #[test]
        fn earlier_than_is_antisymmetric_everywhere(a in any::<u16>(), b in any::<u16>()) {
            let (a, b) = (Ts16(a), Ts16(b));
            if a == b {
                prop_assert!(!a.earlier_than(b));
                prop_assert!(a.earlier_or_eq(b));
            } else {
                prop_assert!(a.earlier_than(b) ^ b.earlier_than(a));
                prop_assert_eq!(a.earlier_or_eq(b), !b.earlier_than(a));
            }
        }
    }
}
