//! Identifiers for nodes and program-order positions.

use std::fmt;

/// Identifies a node: one processor, its private cache hierarchy, and its
/// slice of distributed memory (directory / memory controller).
///
/// The paper uses "processor" for both physical processors and thread
/// contexts; our simulator runs one hardware thread per node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u8);

impl NodeId {
    /// The largest representable system size: node identifiers are 8-bit
    /// and `SystemConfig::validate` admits `1..=MAX_NODES` nodes.
    pub const MAX_NODES: usize = u8::MAX as usize;

    /// The node's index as a `usize`, for indexing per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u8> for NodeId {
    fn from(v: u8) -> Self {
        NodeId(v)
    }
}

/// A per-processor program-order sequence number (§4.2).
///
/// Every instruction X is labelled with `seqX` during decode; since
/// operations decode in program order, `seqX` equals X's rank in program
/// order. The Allowable Reordering checker compares these against its
/// `max{OP}` counter registers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The next sequence number in program order.
    #[inline]
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_next_is_monotonic() {
        let s = SeqNum(41);
        assert!(s < s.next());
        assert_eq!(s.next(), SeqNum(42));
    }

    #[test]
    fn node_id_index() {
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", SeqNum(9)), "#9");
    }
}
