//! Deterministic random number generation for reproducible experiments.
//!
//! Every stochastic decision in the workloads, fault injectors, and
//! perturbation machinery draws from a [`DetRng`] derived from the
//! experiment seed, so a run is a pure function of its configuration.
//! §5 of the paper runs each simulation ten times with small pseudo-random
//! perturbations; [`perturbation_seed`] derives the per-run seeds.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The deterministic RNG used throughout the workspace.
pub type DetRng = SmallRng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn det_rng(seed: u64) -> DetRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a stream-specific seed from a base seed, so independent
/// components (one per node, per workload thread, ...) get decorrelated
/// streams. Uses the SplitMix64 finalizer.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed for perturbed run `run` of an experiment with base seed `seed`
/// (§5: "we run each simulation ten times with small pseudo-random
/// perturbations").
pub fn perturbation_seed(seed: u64, run: u32) -> u64 {
    derive_seed(seed, 0xF00D_0000 + run as u64)
}

/// The seed for one cell of a campaign sweep: `cell` is the cell's index
/// in the campaign's canonical (submission) order and `trial` its
/// repetition index. Built by chaining [`derive_seed`], so every cell of
/// every trial gets a decorrelated stream that depends only on the
/// campaign's base seed and the cell's position — never on which worker
/// thread runs it or in what order. This is the determinism contract of
/// the parallel campaign runner (see `dvmc-bench`): `--jobs N` cannot
/// change any cell's seed.
pub fn campaign_cell_seed(base: u64, cell: u64, trial: u32) -> u64 {
    derive_seed(derive_seed(base, 0xCA_4B ^ cell), trial as u64)
}

/// Draws a small perturbation delay (0..=max) used to jitter workload timing
/// between runs of the same configuration.
pub fn perturbation_delay(rng: &mut DetRng, max: u32) -> u32 {
    if max == 0 {
        0
    } else {
        rng.gen_range(0..=max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = det_rng(7);
        let mut b = det_rng(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_seeds_are_decorrelated() {
        let s0 = derive_seed(1, 0);
        let s1 = derive_seed(1, 1);
        assert_ne!(s0, s1);
        assert_ne!(derive_seed(2, 0), s0);
    }

    #[test]
    fn perturbation_seeds_differ_per_run() {
        let mut seen = std::collections::HashSet::new();
        for run in 0..10 {
            assert!(seen.insert(perturbation_seed(42, run)));
        }
    }

    #[test]
    fn campaign_cell_seeds_are_decorrelated() {
        let mut seen = std::collections::HashSet::new();
        for cell in 0..32 {
            for trial in 0..4 {
                assert!(
                    seen.insert(campaign_cell_seed(42, cell, trial)),
                    "cell {cell} trial {trial} collided"
                );
            }
        }
        // Pure function of (base, cell, trial).
        assert_eq!(
            campaign_cell_seed(7, 3, 1),
            campaign_cell_seed(7, 3, 1)
        );
        assert_ne!(campaign_cell_seed(7, 3, 1), campaign_cell_seed(8, 3, 1));
    }

    #[test]
    fn perturbation_delay_bounds() {
        let mut rng = det_rng(3);
        assert_eq!(perturbation_delay(&mut rng, 0), 0);
        for _ in 0..100 {
            assert!(perturbation_delay(&mut rng, 5) <= 5);
        }
    }
}
