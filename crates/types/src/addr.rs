//! Word- and block-granularity addresses plus the 64-byte data block.

use std::fmt;

/// Bytes per machine word (SPARC v9 is a 64-bit architecture).
pub const WORD_BYTES: usize = 8;
/// Bytes per coherence block (Table 6: 64-byte blocks).
pub const BLOCK_BYTES: usize = 64;
/// Words per coherence block.
pub const WORDS_PER_BLOCK: usize = BLOCK_BYTES / WORD_BYTES;

/// A word-granularity memory address (an index into the word-addressed
/// memory space, *not* a byte address).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordAddr(pub u64);

impl WordAddr {
    /// The coherence block containing this word.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 / WORDS_PER_BLOCK as u64)
    }

    /// The word's offset within its block (0..[`WORDS_PER_BLOCK`]).
    #[inline]
    pub fn offset(self) -> usize {
        (self.0 % WORDS_PER_BLOCK as u64) as usize
    }
}

impl fmt::Debug for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{:#x}", self.0)
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{:#x}", self.0)
    }
}

impl From<u64> for WordAddr {
    fn from(v: u64) -> Self {
        WordAddr(v)
    }
}

/// A block-granularity memory address (an index into the block-addressed
/// memory space).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The first word of this block.
    #[inline]
    pub fn first_word(self) -> WordAddr {
        WordAddr(self.0 * WORDS_PER_BLOCK as u64)
    }

    /// The `offset`-th word of this block.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= WORDS_PER_BLOCK`.
    #[inline]
    pub fn word(self, offset: usize) -> WordAddr {
        assert!(offset < WORDS_PER_BLOCK, "word offset out of range");
        WordAddr(self.0 * WORDS_PER_BLOCK as u64 + offset as u64)
    }

    /// The home node of this block in an `n_nodes`-node system.
    ///
    /// Blocks are interleaved across memory controllers by block index,
    /// matching the distributed-memory configuration of Table 6. Node
    /// identifiers are 8-bit and `SystemConfig::validate` admits
    /// `1..=`[`NodeId::MAX_NODES`](crate::ids::NodeId::MAX_NODES) nodes;
    /// for counts beyond that contract the interleave factor is clamped to
    /// `MAX_NODES`, so the result is always a valid `NodeId` and never a
    /// silently truncated modulo (the former bare `as u8` cast would map
    /// block 256 of a 300-node system to node 0 while block 0 also lands
    /// on node 0 of a *different* slice).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes == 0`.
    #[inline]
    pub fn home(self, n_nodes: usize) -> crate::ids::NodeId {
        assert!(n_nodes > 0, "system must have at least one node");
        let n = n_nodes.min(crate::ids::NodeId::MAX_NODES) as u64;
        crate::ids::NodeId((self.0 % n) as u8)
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:#x}", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:#x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(v: u64) -> Self {
        BlockAddr(v)
    }
}

/// A 64-byte coherence block, stored as eight 64-bit words.
///
/// Blocks carry *real* data throughout the simulator so that the CRC-16
/// hash checks performed by the coherence checker, the ECC model, and the
/// replay comparisons of the Uniprocessor Ordering checker are all
/// end-to-end meaningful.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Block {
    words: [u64; WORDS_PER_BLOCK],
}

impl Block {
    /// An all-zero block (the initial contents of memory).
    pub const ZERO: Block = Block {
        words: [0; WORDS_PER_BLOCK],
    };

    /// Creates a block from its eight words.
    pub fn from_words(words: [u64; WORDS_PER_BLOCK]) -> Self {
        Block { words }
    }

    /// Reads the word at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= WORDS_PER_BLOCK`.
    #[inline]
    pub fn word(&self, offset: usize) -> u64 {
        self.words[offset]
    }

    /// Writes the word at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= WORDS_PER_BLOCK`.
    #[inline]
    pub fn set_word(&mut self, offset: usize, value: u64) {
        self.words[offset] = value;
    }

    /// All eight words, in order.
    pub fn words(&self) -> &[u64; WORDS_PER_BLOCK] {
        &self.words
    }

    /// The block serialized to its 64 little-endian bytes, as hashed by the
    /// coherence checker.
    pub fn to_bytes(&self) -> [u8; BLOCK_BYTES] {
        let mut out = [0u8; BLOCK_BYTES];
        for (i, w) in self.words.iter().enumerate() {
            out[i * WORD_BYTES..(i + 1) * WORD_BYTES].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// CRC-16 hash of the block contents (§4.3 "Data Block Hashing").
    pub fn hash(&self) -> u16 {
        crate::crc::crc16(&self.to_bytes())
    }

    /// Flips bit `bit` (0..512) of the block, for fault injection.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 512`.
    pub fn flip_bit(&mut self, bit: usize) {
        assert!(bit < BLOCK_BYTES * 8, "bit index out of range");
        self.words[bit / 64] ^= 1u64 << (bit % 64);
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block[{:#x}", self.words[0])?;
        for w in &self.words[1..] {
            write!(f, ", {w:#x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_block_roundtrip() {
        let w = WordAddr(8 * 5 + 3);
        assert_eq!(w.block(), BlockAddr(5));
        assert_eq!(w.offset(), 3);
        assert_eq!(w.block().word(w.offset()), w);
    }

    #[test]
    fn first_word_is_offset_zero() {
        let b = BlockAddr(17);
        assert_eq!(b.first_word().block(), b);
        assert_eq!(b.first_word().offset(), 0);
    }

    #[test]
    fn home_interleaves_blocks() {
        assert_eq!(BlockAddr(0).home(8).0, 0);
        assert_eq!(BlockAddr(9).home(8).0, 1);
        assert_eq!(BlockAddr(15).home(8).0, 7);
        assert_eq!(BlockAddr(123).home(1).0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn home_rejects_zero_nodes() {
        let _ = BlockAddr(0).home(0);
    }

    #[test]
    fn home_at_the_255_node_edge() {
        use crate::ids::NodeId;
        // The largest system the SystemConfig contract admits.
        assert_eq!(BlockAddr(254).home(NodeId::MAX_NODES), NodeId(254));
        assert_eq!(BlockAddr(255).home(NodeId::MAX_NODES), NodeId(0));
        assert_eq!(BlockAddr(u64::MAX).home(NodeId::MAX_NODES), NodeId((u64::MAX % 255) as u8));
        // Out-of-contract counts clamp to MAX_NODES instead of letting the
        // `as u8` cast truncate the modulo result.
        assert_eq!(BlockAddr(300).home(1000), NodeId((300 % 255) as u8));
        assert_eq!(BlockAddr(511).home(512), NodeId((511 % 255) as u8));
    }

    #[test]
    fn block_word_accessors() {
        let mut b = Block::ZERO;
        b.set_word(7, 0xdead_beef);
        assert_eq!(b.word(7), 0xdead_beef);
        assert_eq!(b.word(0), 0);
    }

    #[test]
    fn block_bytes_little_endian() {
        let mut b = Block::ZERO;
        b.set_word(0, 0x0102_0304_0506_0708);
        let bytes = b.to_bytes();
        assert_eq!(bytes[0], 0x08);
        assert_eq!(bytes[7], 0x01);
        assert_eq!(bytes[8], 0);
    }

    #[test]
    fn flip_bit_changes_hash() {
        let mut b = Block::ZERO;
        let h0 = b.hash();
        b.flip_bit(100);
        assert_ne!(b.hash(), h0, "single-bit flip must change the CRC-16");
        assert_eq!(b.word(1), 1u64 << 36);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_rejects_out_of_range() {
        let mut b = Block::ZERO;
        b.flip_bit(512);
    }
}
