//! Foundation types shared by every crate in the DVMC workspace.
//!
//! The memory system is modelled at *word* (8-byte) and *block* (64-byte)
//! granularity, matching the paper's word-granularity proofs (Appendix A) and
//! its 64-byte coherence blocks (Table 6). Addresses are **word indices**,
//! not byte addresses; [`addr::WordAddr`] and [`addr::BlockAddr`] convert
//! between the two granularities.
//!
//! Also here:
//!
//! * [`crc::crc16`] — the CRC-16 hash the paper uses to compress data blocks
//!   in CETs, METs, and Inform-Epoch messages (§4.3 "Data Block Hashing").
//! * [`time::Ts16`] — the 16-bit logical timestamps with windowed
//!   (wraparound-tolerant) comparison used by the coherence checker.
//! * [`rng`] — deterministic seeded RNG helpers so every experiment is
//!   reproducible and perturbable (§5 runs each simulation ten times with
//!   small pseudo-random perturbations).

pub mod addr;
pub mod crc;
pub mod ids;
pub mod rng;
pub mod time;

pub use addr::{Block, BlockAddr, WordAddr, BLOCK_BYTES, WORDS_PER_BLOCK, WORD_BYTES};
pub use crc::crc16;
pub use ids::{NodeId, SeqNum};
pub use time::{Cycle, Ts16};
