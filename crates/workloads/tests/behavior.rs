//! Behavioural tests of the workload generators: barrier protocol
//! correctness, perturbation semantics, and stream/driver integration.

use dvmc_consistency::Model;
use dvmc_pipeline::{Fetch, Instr, InstrStream};
use dvmc_types::SeqNum;
use dvmc_workloads::spec::{build_streams, WorkloadKind, WorkloadParams};
use std::collections::HashMap;

fn params(kind: WorkloadKind, threads: usize, txns: u64) -> WorkloadParams {
    WorkloadParams {
        kind,
        threads,
        transactions_per_thread: txns,
        seed: 7,
        perturbation: 7,
        model: Model::Tso,
    }
}

/// A sequential interpreter for a set of streams over a flat memory,
/// processing threads round-robin one instruction at a time, with atomic
/// swap and lock semantics evaluated directly. This validates the
/// generators' control flow (locks, barriers) without the full machine.
fn interpret(mut streams: Vec<Box<dyn InstrStream + Send>>, max_steps: u64) -> (Vec<u64>, HashMap<u64, u64>) {
    let mut memory: HashMap<u64, u64> = HashMap::new();
    let n = streams.len();
    let mut awaiting: Vec<Option<u64>> = vec![None; n]; // value to deliver
    let mut done = vec![false; n];
    for _ in 0..max_steps {
        if done.iter().all(|&d| d) {
            break;
        }
        for t in 0..n {
            if done[t] {
                continue;
            }
            if let Some(v) = awaiting[t].take() {
                streams[t].deliver(SeqNum(0), v);
            }
            match streams[t].next() {
                Fetch::Done => done[t] = true,
                Fetch::AwaitLast => {
                    // The awaited value was produced by the last memory op
                    // this thread executed; the interpreter stored it.
                    awaiting[t] = Some(awaiting[t].unwrap_or(0));
                }
                Fetch::Instr(Instr::Delay(_)) => {}
                Fetch::Instr(Instr::Mem {
                    class,
                    addr,
                    store_value,
                }) => {
                    use dvmc_consistency::OpClass;
                    match class {
                        OpClass::Load => {
                            awaiting[t] = Some(*memory.get(&addr.0).unwrap_or(&0));
                        }
                        OpClass::Store => {
                            memory.insert(addr.0, store_value);
                            awaiting[t] = Some(store_value);
                        }
                        OpClass::Atomic => {
                            let old = *memory.get(&addr.0).unwrap_or(&0);
                            memory.insert(addr.0, store_value);
                            awaiting[t] = Some(old);
                        }
                        OpClass::Membar(_) | OpClass::Stbar => {}
                    }
                }
            }
        }
    }
    let txns = streams.iter().map(|s| s.transactions()).collect();
    (txns, memory)
}

#[test]
fn barnes_barriers_complete_under_sequential_semantics() {
    let p = params(WorkloadKind::Barnes, 4, 5);
    let (txns, _) = interpret(build_streams(&p), 3_000_000);
    assert_eq!(txns, vec![5, 5, 5, 5], "all threads pass all barriers");
}

#[test]
fn every_workload_completes_and_releases_its_locks() {
    for kind in WorkloadKind::ALL {
        let p = params(kind, 4, 4);
        let (txns, memory) = interpret(build_streams(&p), 3_000_000);
        assert_eq!(txns, vec![4; 4], "{kind}");
        // All lock words (block-aligned in the lock region) are free.
        for (addr, value) in &memory {
            if (0x10_0000..0x20_0000).contains(addr) && addr % 8 == 0 {
                assert_eq!(*value, 0, "{kind}: lock at {addr:#x} left held");
            }
        }
    }
}

#[test]
fn perturbation_changes_timing_but_not_the_program() {
    let base = params(WorkloadKind::Oltp, 2, 3);
    let mut perturbed = base;
    perturbed.perturbation = 999;
    let collect = |p: &WorkloadParams| {
        let mut s = build_streams(p);
        let mut mems = Vec::new();
        let mut delays = Vec::new();
        for _ in 0..4000 {
            match s[0].next() {
                Fetch::Instr(Instr::Mem { class, addr, .. }) => {
                    mems.push((format!("{class}"), addr.0));
                }
                Fetch::Instr(Instr::Delay(d)) => delays.push(d),
                Fetch::AwaitLast => s[0].deliver(SeqNum(0), 0),
                Fetch::Done => break,
            }
        }
        (mems, delays)
    };
    let (mems_a, delays_a) = collect(&base);
    let (mems_b, delays_b) = collect(&perturbed);
    assert_eq!(mems_a, mems_b, "program structure is seed-determined");
    assert_ne!(delays_a, delays_b, "timing is perturbation-determined");
}
