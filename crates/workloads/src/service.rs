//! Open-loop service traffic for soak runs (DESIGN.md §13).
//!
//! The five Table-8 workloads are *closed-loop*: each thread issues its
//! next transaction only after the previous one finishes, so a slow
//! machine simply runs a slow workload. A soak test needs the opposite —
//! an *open-loop* arrival process where requests keep arriving at their
//! own rate regardless of how fast the machine drains them, so that
//! fault storms and recovery stalls build real backlog.
//!
//! [`ServiceStream`] models one worker thread of a request-serving
//! process:
//!
//! - **Arrivals** follow a Poisson process: inter-arrival gaps are drawn
//!   from an exponential distribution with the configured mean, against
//!   the global cycle clock (via [`InstrStream::next_at`]), not the
//!   thread's own progress.
//! - **Sharing** is Zipf-skewed: each request touches a hot shared block
//!   chosen with probability ∝ 1/rank, so a few blocks carry most of the
//!   coherence traffic — the skew commercial workloads exhibit.
//! - **Requests** are short read-mostly bodies over the hot block plus
//!   private scratch work, ending with a store to the hot block behind
//!   the release fence the current consistency model requires.
//! - **Model switches** ([`InstrStream::switch_model`]) retarget the
//!   fence vocabulary of *subsequently generated* requests; already
//!   queued instructions keep the fences of the model they were compiled
//!   for (the core only applies a switch at a quiescent point, so this
//!   never mixes vocabularies inside the pipeline).
//!
//! The stream never returns [`Fetch::Done`]: a service has no natural
//! end, the harness decides when to stop ([`dvmc_sim`]'s service mode).

use crate::layout::Layout;
use dvmc_consistency::{MembarMask, Model, OpClass};
use dvmc_pipeline::{Fetch, Instr, InstrStream};
use dvmc_types::rng::{det_rng, DetRng};
use dvmc_types::{Cycle, SeqNum, WordAddr};
use rand::Rng;
use std::collections::VecDeque;

/// Maps 64 random bits to a uniform f64 in `[0, 1)` using the top 53 bits
/// (the vendored `rand` only samples integer ranges).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Shared region size used by service traffic (blocks).
const SHARED_BLOCKS: u64 = 4096;
/// Private scratch region per thread (blocks).
const PRIVATE_BLOCKS: u64 = 256;
/// Number of distinct hot blocks the Zipf law ranks over.
const HOT_BLOCKS: u64 = 64;

/// One worker thread of an open-loop, Zipf-skewed request server.
#[derive(Clone)]
pub struct ServiceStream {
    layout: Layout,
    model: Model,
    tid: u64,
    /// Request structure: addresses, values, access mixes.
    rng: DetRng,
    /// Arrival timing (perturbation-seeded, §5 methodology).
    jitter: DetRng,
    /// Mean inter-arrival gap in cycles (per thread).
    mean_gap: u32,
    /// Absolute cycle of the next arrival.
    next_arrival: Cycle,
    /// Queued instructions, each with the arrival stamp of the request it
    /// completes (only the final publish store carries one: its commit
    /// closes the arrival→commit queueing-delay measurement).
    queue: VecDeque<(Instr, Option<Cycle>)>,
    /// Arrival stamp of the most recently popped instruction.
    last_arrival: Option<Cycle>,
    /// Requests generated so far (the progress metric: arrivals are
    /// deterministic in simulated time, so this is comparable across
    /// protocols and models).
    generated: u64,
    value_counter: u64,
}

impl ServiceStream {
    /// Creates the stream for worker `tid` with Poisson arrivals of the
    /// given mean gap.
    pub fn new(threads: usize, tid: u64, mean_gap: u32, model: Model, seed: u64, perturbation: u64) -> Self {
        let mut jitter = det_rng(perturbation);
        // Desynchronize thread start-up so arrivals do not phase-lock.
        let first = 1 + jitter.gen_range(0..mean_gap.max(1) as u64);
        ServiceStream {
            layout: Layout {
                locks: 1,
                shared_blocks: SHARED_BLOCKS,
                private_blocks: PRIVATE_BLOCKS,
                threads: threads as u64,
            },
            model,
            tid,
            rng: det_rng(seed),
            jitter,
            mean_gap: mean_gap.max(1),
            next_arrival: first,
            queue: VecDeque::new(),
            last_arrival: None,
            generated: 0,
            value_counter: 0,
        }
    }

    /// Exponential inter-arrival gap with mean `mean_gap`, at least 1.
    fn draw_gap(&mut self) -> u64 {
        let u = unit_f64(self.jitter.gen::<u64>());
        let gap = -(1.0 - u).ln() * self.mean_gap as f64;
        (gap as u64).max(1)
    }

    /// A hot-block rank under an approximate Zipf(1) law: rank k is
    /// chosen with probability ∝ 1/k over `HOT_BLOCKS` ranks.
    fn draw_hot_rank(&mut self) -> u64 {
        let u = unit_f64(self.rng.gen::<u64>());
        // Inverse CDF of the continuous 1/x density on [1, N+1).
        let rank = ((HOT_BLOCKS + 1) as f64).powf(u);
        (rank as u64).clamp(1, HOT_BLOCKS) - 1
    }

    fn unique_value(&mut self) -> u64 {
        self.value_counter += 1;
        // Nonzero and distinct per (thread, request-op).
        (self.tid << 48) | self.value_counter
    }

    /// Appends one request body to the queue. `arrival` is the cycle the
    /// request arrived; it stamps the final publish store so the core can
    /// measure the arrival→commit queueing delay.
    fn generate_request(&mut self, arrival: Cycle) {
        self.generated += 1;
        let hot = self.draw_hot_rank();
        let words = dvmc_types::WORDS_PER_BLOCK as u64;
        let hot_base = hot * words;
        let reads = self.rng.gen_range(2..=6u32);
        let scratch = self.rng.gen_range(1..=3u32);
        // Read the hot block (coherence traffic under Zipf skew).
        for _ in 0..reads {
            let w = self.rng.gen::<u64>() % words;
            self.queue
                .push_back((Instr::load(self.layout.shared_word(hot_base + w).0), None));
            let compute = self.rng.gen_range(1..=3u32);
            self.queue.push_back((Instr::Delay(compute), None));
        }
        // Private scratch work.
        for _ in 0..scratch {
            let idx = self.rng.gen::<u64>();
            let v = self.unique_value();
            self.queue
                .push_back((Instr::store(self.layout.private_word(self.tid, idx).0, v), None));
        }
        // Publish: release fence (per current model), then the hot store.
        match self.model {
            Model::Rmo => self
                .queue
                .push_back((Instr::membar(MembarMask::LS | MembarMask::SS), None)),
            Model::Pso => self.queue.push_back((
                Instr::Mem {
                    class: OpClass::Stbar,
                    addr: WordAddr(0),
                    store_value: 0,
                },
                None,
            )),
            _ => {}
        }
        let w = self.rng.gen::<u64>() % words;
        let v = self.unique_value();
        self.queue.push_back((
            Instr::store(self.layout.shared_word(hot_base + w).0, v),
            Some(arrival),
        ));
    }
}

impl InstrStream for ServiceStream {
    fn next(&mut self) -> Fetch {
        // Clockless fallback (unit tests): treat every call as "an
        // arrival is due".
        let due = self.next_arrival;
        self.next_at(due)
    }

    fn next_at(&mut self, now: Cycle) -> Fetch {
        if let Some((i, a)) = self.queue.pop_front() {
            self.last_arrival = a;
            return Fetch::Instr(i);
        }
        // Open loop: arrivals accrue against wall-clock time. A machine
        // stalled through a fault storm finds the backlog waiting.
        while self.next_arrival <= now {
            let arrival = self.next_arrival;
            let gap = self.draw_gap();
            self.next_arrival += gap;
            self.generate_request(arrival);
            if self.queue.len() > 4096 {
                break; // bound decode-side memory under pathological stalls
            }
        }
        match self.queue.pop_front() {
            Some((i, a)) => {
                self.last_arrival = a;
                Fetch::Instr(i)
            }
            None => {
                self.last_arrival = None;
                let wait = (self.next_arrival - now).min(u32::MAX as u64) as u32;
                Fetch::Instr(Instr::Delay(wait.max(1)))
            }
        }
    }

    fn last_arrival(&self) -> Option<Cycle> {
        self.last_arrival
    }

    fn deliver(&mut self, _seq: SeqNum, _value: u64) {}

    fn switch_model(&mut self, model: Model) {
        self.model = model;
    }

    fn transactions(&self) -> u64 {
        self.generated
    }

    fn clone_box(&self) -> Box<dyn InstrStream + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> ServiceStream {
        ServiceStream::new(4, 0, 200, Model::Tso, 7, 11)
    }

    #[test]
    fn arrivals_track_the_clock_not_progress() {
        let mut s = stream();
        // Before the first arrival: nothing but a delay.
        assert!(matches!(s.next_at(0), Fetch::Instr(Instr::Delay(_))));
        assert_eq!(s.transactions(), 0);
        // Far in the future: a large backlog is waiting.
        let mut mem_ops = 0;
        for _ in 0..2000 {
            if let Fetch::Instr(Instr::Mem { .. }) = s.next_at(100_000) {
                mem_ops += 1;
            }
        }
        assert!(s.transactions() > 100, "open loop must accrue arrivals");
        assert!(mem_ops > 100);
    }

    #[test]
    fn never_done_and_deterministic() {
        let mut a = stream();
        let mut b = stream();
        for now in (0..50_000).step_by(13) {
            let (fa, fb) = (a.next_at(now), b.next_at(now));
            assert_eq!(format!("{fa:?}"), format!("{fb:?}"));
            assert!(!matches!(fa, Fetch::Done));
        }
    }

    #[test]
    fn switch_model_changes_fence_vocabulary() {
        let mut s = stream();
        s.switch_model(Model::Pso);
        let mut saw_stbar = false;
        for _ in 0..500 {
            if let Fetch::Instr(Instr::Mem {
                class: OpClass::Stbar,
                ..
            }) = s.next_at(20_000)
            {
                saw_stbar = true;
            }
        }
        assert!(saw_stbar, "PSO requests must publish behind Stbar");
    }

    #[test]
    fn hot_ranks_are_skewed() {
        let mut s = stream();
        let mut low = 0;
        let mut high = 0;
        for _ in 0..2000 {
            let r = s.draw_hot_rank();
            if r < HOT_BLOCKS / 8 {
                low += 1;
            } else if r >= HOT_BLOCKS / 2 {
                high += 1;
            }
        }
        assert!(low > high, "Zipf skew: low ranks must dominate ({low} vs {high})");
    }
}
