//! Workload profiles and stream construction.

use crate::layout::Layout;
use crate::litmus::LitmusTest;
use crate::txn::TxnStream;
use dvmc_consistency::Model;
use dvmc_pipeline::InstrStream;
use dvmc_types::rng::derive_seed;

/// The five benchmark stand-ins (Table 8), plus the litmus conformance
/// shapes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkloadKind {
    /// Static web serving (read-mostly).
    Apache,
    /// Online transaction processing (TPC-C-like).
    Oltp,
    /// Java server (SPECjbb-like, mostly private).
    Jbb,
    /// Message board (slashcode): a few highly contended locks.
    Slash,
    /// Barnes-Hut n-body (SPLASH-2): barrier-phased.
    Barnes,
    /// A fixed litmus shape (conformance suite; not part of
    /// [`WorkloadKind::ALL`] — litmus runs are correctness probes, not
    /// benchmarks).
    Litmus(LitmusTest),
    /// A generated litmus-like program (`crate::fuzz`), identified by its
    /// generation seed; the program also depends on the run's consistency
    /// model (barrier vocabulary). Like `Litmus`, a correctness probe —
    /// not part of [`WorkloadKind::ALL`].
    Fuzz(u64),
    /// [`WorkloadKind::Fuzz`] with the mixed address pool
    /// ([`crate::fuzz::AddrMix::Mixed`]): distinct words sharing coherence
    /// blocks alongside cross-block conflicts, probing block-granular
    /// invalidation and eviction paths.
    FuzzMixed(u64),
    /// Open-loop Poisson request traffic with Zipf-skewed sharing
    /// (`crate::service`) for soak runs: arrivals accrue against the
    /// global clock at the given mean inter-arrival gap (cycles per
    /// thread) and the stream never completes. Not part of
    /// [`WorkloadKind::ALL`] — a service endures, it does not finish.
    Service {
        /// Mean inter-arrival gap per thread, in cycles.
        mean_gap: u32,
    },
}

impl WorkloadKind {
    /// All five workloads, in the paper's presentation order.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::Apache,
        WorkloadKind::Oltp,
        WorkloadKind::Jbb,
        WorkloadKind::Slash,
        WorkloadKind::Barnes,
    ];

    /// The benchmark's display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Apache => "apache",
            WorkloadKind::Oltp => "oltp",
            WorkloadKind::Jbb => "jbb",
            WorkloadKind::Slash => "slash",
            WorkloadKind::Barnes => "barnes",
            WorkloadKind::Litmus(LitmusTest::Sb) => "litmus-sb",
            WorkloadKind::Litmus(LitmusTest::Mp) => "litmus-mp",
            WorkloadKind::Litmus(LitmusTest::Lb) => "litmus-lb",
            WorkloadKind::Litmus(LitmusTest::Wrc) => "litmus-wrc",
            WorkloadKind::Litmus(LitmusTest::Iriw) => "litmus-iriw",
            WorkloadKind::Litmus(LitmusTest::Corr) => "litmus-corr",
            WorkloadKind::Litmus(LitmusTest::S) => "litmus-s",
            WorkloadKind::Litmus(LitmusTest::R) => "litmus-r",
            WorkloadKind::Litmus(LitmusTest::TwoPlusTwoW) => "litmus-2+2w",
            WorkloadKind::Litmus(LitmusTest::CoWw) => "litmus-coww",
            WorkloadKind::Litmus(LitmusTest::CoRw1) => "litmus-corw1",
            WorkloadKind::Fuzz(_) => "fuzz",
            WorkloadKind::FuzzMixed(_) => "fuzz-mixed",
            WorkloadKind::Service { .. } => "service",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Transaction-shape parameters for one workload.
#[derive(Clone, Copy, Debug)]
pub struct Profile {
    /// Locks per thread (or total for `locks_total`).
    pub locks_per_thread: u64,
    /// Absolute number of locks; overrides `locks_per_thread` when set.
    pub locks_total: Option<u64>,
    /// Shared-region size in blocks.
    pub shared_blocks: u64,
    /// Private-region size in blocks per thread.
    pub private_blocks: u64,
    /// Reads per transaction (inclusive range).
    pub reads_per_txn: (u32, u32),
    /// Writes per transaction (inclusive range).
    pub writes_per_txn: (u32, u32),
    /// Unlocked trailing reads per transaction.
    pub unlocked_reads: (u32, u32),
    /// Probability an access targets shared (vs. private) data.
    pub shared_fraction: f64,
    /// Probability a transaction takes a lock.
    pub locked_fraction: f64,
    /// Compute delay before each access (cycles, inclusive range).
    pub compute_per_op: (u32, u32),
    /// Think time between transactions (cycles, inclusive range).
    pub think_time: (u32, u32),
    /// Sequential log-record words written per transaction (streaming,
    /// always-cold stores — redo logs, access logs).
    pub log_writes: (u32, u32),
    /// Whether transactions are barrier-separated phases (barnes).
    pub barrier_phases: bool,
}

impl Profile {
    /// The profile for `kind`.
    ///
    /// # Panics
    ///
    /// Panics for [`WorkloadKind::Litmus`]: litmus programs are fixed
    /// scripts, not parameterized transaction mixes.
    pub fn of(kind: WorkloadKind) -> Profile {
        match kind {
            WorkloadKind::Litmus(t) => {
                panic!("litmus workload {t} has no transaction profile")
            }
            WorkloadKind::Fuzz(seed) | WorkloadKind::FuzzMixed(seed) => {
                panic!("fuzz workload (seed {seed:#x}) has no transaction profile")
            }
            WorkloadKind::Service { .. } => {
                panic!("service workload has no transaction profile")
            }
            WorkloadKind::Apache => Profile {
                locks_per_thread: 4,
                locks_total: None,
                shared_blocks: 32768,
                private_blocks: 512,
                reads_per_txn: (12, 24),
                writes_per_txn: (1, 3),
                unlocked_reads: (4, 10),
                shared_fraction: 0.70,
                locked_fraction: 0.5,
                compute_per_op: (1, 4),
                think_time: (30, 80),
                log_writes: (8, 16),
                barrier_phases: false,
            },
            WorkloadKind::Oltp => Profile {
                locks_per_thread: 2,
                locks_total: None,
                shared_blocks: 32768,
                private_blocks: 512,
                reads_per_txn: (8, 16),
                writes_per_txn: (4, 8),
                unlocked_reads: (2, 6),
                shared_fraction: 0.60,
                locked_fraction: 0.9,
                compute_per_op: (1, 3),
                think_time: (20, 60),
                log_writes: (16, 32),
                barrier_phases: false,
            },
            WorkloadKind::Jbb => Profile {
                locks_per_thread: 2,
                locks_total: None,
                shared_blocks: 8192,
                private_blocks: 4096,
                reads_per_txn: (6, 12),
                writes_per_txn: (3, 6),
                unlocked_reads: (2, 6),
                shared_fraction: 0.25,
                locked_fraction: 0.4,
                compute_per_op: (1, 4),
                think_time: (10, 40),
                log_writes: (8, 16),
                barrier_phases: false,
            },
            WorkloadKind::Slash => Profile {
                locks_per_thread: 1,
                locks_total: Some(2),
                shared_blocks: 16384,
                private_blocks: 256,
                reads_per_txn: (6, 10),
                writes_per_txn: (3, 6),
                unlocked_reads: (1, 4),
                shared_fraction: 0.80,
                locked_fraction: 0.95,
                compute_per_op: (1, 2),
                think_time: (5, 20),
                log_writes: (4, 8),
                barrier_phases: false,
            },
            WorkloadKind::Barnes => Profile {
                locks_per_thread: 1,
                locks_total: Some(4),
                shared_blocks: 32768,
                private_blocks: 1024,
                reads_per_txn: (20, 40),
                writes_per_txn: (10, 20),
                unlocked_reads: (0, 0),
                shared_fraction: 0.4,
                locked_fraction: 0.0,
                compute_per_op: (2, 6),
                think_time: (0, 4),
                log_writes: (8, 16),
                barrier_phases: true,
            },
        }
    }
}

/// Parameters for a workload instance.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadParams {
    /// Which benchmark.
    pub kind: WorkloadKind,
    /// Hardware threads (= nodes).
    pub threads: usize,
    /// Transactions per thread before the run completes (barnes: barrier
    /// phases per thread).
    pub transactions_per_thread: u64,
    /// Base seed: fixes the program structure (lock choices, addresses).
    pub seed: u64,
    /// Perturbation seed: jitters timing only (§5 runs each simulation
    /// "ten times with small pseudo-random perturbations").
    pub perturbation: u64,
    /// The consistency model the program is compiled for (inserts the
    /// release/acquire fences the model requires).
    pub model: Model,
}

/// The layout implied by a parameter set.
///
/// # Panics
///
/// Panics for litmus workloads (see [`Profile::of`]).
pub fn layout_of(params: &WorkloadParams) -> Layout {
    let profile = Profile::of(params.kind);
    let locks = profile
        .locks_total
        .unwrap_or(profile.locks_per_thread * params.threads as u64)
        .max(1);
    Layout {
        locks,
        shared_blocks: profile.shared_blocks,
        private_blocks: profile.private_blocks,
        threads: params.threads as u64,
    }
}

/// Builds one instruction stream per thread.
pub fn build_streams(params: &WorkloadParams) -> Vec<Box<dyn InstrStream + Send>> {
    if let WorkloadKind::Litmus(test) = params.kind {
        return crate::litmus::build_litmus_streams(test, params.threads, params.perturbation);
    }
    if let WorkloadKind::Fuzz(seed) | WorkloadKind::FuzzMixed(seed) = params.kind {
        let mix = if matches!(params.kind, WorkloadKind::FuzzMixed(_)) {
            crate::fuzz::AddrMix::Mixed
        } else {
            crate::fuzz::AddrMix::Disjoint
        };
        return crate::fuzz::build_fuzz_streams_with(
            seed,
            params.model,
            params.threads,
            params.perturbation,
            mix,
        );
    }
    if let WorkloadKind::Service { mean_gap } = params.kind {
        return (0..params.threads)
            .map(|tid| {
                let seed = derive_seed(params.seed, tid as u64);
                let perturbation = derive_seed(params.perturbation, tid as u64);
                Box::new(crate::service::ServiceStream::new(
                    params.threads,
                    tid as u64,
                    mean_gap,
                    params.model,
                    seed,
                    perturbation,
                )) as Box<dyn InstrStream + Send>
            })
            .collect();
    }
    let profile = Profile::of(params.kind);
    let layout = layout_of(params);
    (0..params.threads)
        .map(|tid| {
            let seed = derive_seed(params.seed, tid as u64);
            let perturbation = derive_seed(params.perturbation, tid as u64);
            Box::new(TxnStream::new(
                profile,
                layout,
                params.model,
                tid as u64,
                params.transactions_per_thread,
                seed,
                perturbation,
            )) as Box<dyn InstrStream + Send>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvmc_pipeline::{Fetch, Instr};

    fn params(kind: WorkloadKind) -> WorkloadParams {
        WorkloadParams {
            kind,
            threads: 4,
            transactions_per_thread: 3,
            seed: 42,
            perturbation: 42,
            model: Model::Tso,
        }
    }

    #[test]
    fn streams_are_deterministic() {
        for kind in WorkloadKind::ALL {
            let mut a = build_streams(&params(kind));
            let mut b = build_streams(&params(kind));
            for _ in 0..50 {
                let fa = a[0].next();
                let fb = b[0].next();
                assert_eq!(
                    format!("{fa:?}"),
                    format!("{fb:?}"),
                    "{kind}: same seed must give the same stream"
                );
                if matches!(fa, Fetch::Done | Fetch::AwaitLast) {
                    break;
                }
            }
        }
    }

    #[test]
    fn different_threads_get_different_streams() {
        // Drive each stream as a trivial machine that grants every lock
        // immediately, so the comparison covers transaction bodies
        // (addresses, values, access mixes). The undriven prefix is just
        // one lock-poll load, whose address carries only log2(locks) bits
        // — two decorrelated threads can legitimately collide on it.
        let mut streams = build_streams(&params(WorkloadKind::Oltp));
        let mut drive = |idx: usize| -> Vec<String> {
            let s = &mut streams[idx];
            let mut seq = Vec::new();
            while seq.len() < 40 {
                match s.next() {
                    Fetch::AwaitLast => s.deliver(dvmc_types::SeqNum(0), 0),
                    Fetch::Done => break,
                    f => seq.push(format!("{f:?}")),
                }
            }
            seq
        };
        let seq_a = drive(0);
        let seq_b = drive(1);
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn profiles_differ_in_contention() {
        let slash = layout_of(&params(WorkloadKind::Slash));
        let apache = layout_of(&params(WorkloadKind::Apache));
        assert!(slash.locks < apache.locks, "slash is highly contended");
    }

    #[test]
    fn every_kind_emits_memory_ops() {
        for kind in WorkloadKind::ALL {
            let mut streams = build_streams(&params(kind));
            let mut mem_ops = 0;
            for _ in 0..200 {
                match streams[0].next() {
                    Fetch::Instr(Instr::Mem { .. }) => mem_ops += 1,
                    Fetch::Instr(Instr::Delay(_)) => {}
                    Fetch::AwaitLast => {
                        // Pretend the lock/barrier read returned "free".
                        streams[0].deliver(dvmc_types::SeqNum(0), 0);
                    }
                    Fetch::Done => break,
                }
            }
            assert!(mem_ops > 5, "{kind}: only {mem_ops} memory ops");
        }
    }

    #[test]
    fn transactions_progress_when_driven() {
        // Drive the apache stream standalone, acting as a trivial machine
        // that acquires every lock immediately.
        let mut streams = build_streams(&params(WorkloadKind::Apache));
        let s = &mut streams[0];
        let mut safety = 100_000;
        loop {
            safety -= 1;
            assert!(safety > 0, "stream made no progress");
            match s.next() {
                Fetch::Instr(_) => {}
                Fetch::AwaitLast => s.deliver(dvmc_types::SeqNum(0), 0),
                Fetch::Done => break,
            }
        }
        assert_eq!(s.transactions(), 3);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["apache", "oltp", "jbb", "slash", "barnes"]);
    }
}
