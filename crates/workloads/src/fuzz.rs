//! Adversarial litmus fuzzing: diy-style random multi-threaded programs.
//!
//! The hand-written [`LitmusTest`](crate::litmus::LitmusTest) suite covers
//! eleven classic shapes; the space of interesting interleavings is vastly
//! larger. This module synthesizes random litmus-like programs the way diy
//! (Alglave et al.) does: pick a *critical cycle* of communication edges
//! (reads-from, coherence, from-read) over a small address pool, realize
//! each edge's endpoints as load/store events on consecutive threads, and
//! pad the result with random extra accesses, per-model memory barriers,
//! and timing jitter. Run on the simulated machine with `record_commits`,
//! every generated program becomes a cross-check between the online DVMC
//! checkers and the offline oracle (`dvmc_consistency::oracle`): the two
//! must agree on every execution, and any disagreement is automatically a
//! bug in one of them (the `exp_fuzz` campaign, DESIGN.md §12).
//!
//! Programs are pure functions of `(seed, model)`; the perturbation seed
//! only inserts [`Instr::Delay`] jitter, exactly like the fixed litmus
//! shapes, so a sweep over perturbations explores interleavings of a
//! constant program.
//!
//! **Value-uniqueness contract**: every store writes a globally unique
//! non-zero value (a single counter across all threads), so the oracle can
//! attribute every loaded value to the one store that produced it. The
//! oracle rejects logs violating this contract (`AmbiguousValue`) rather
//! than guessing.

use dvmc_consistency::{MembarMask, Model, OpClass};
use dvmc_pipeline::{Instr, InstrStream, ScriptedStream};
use dvmc_types::rng::{derive_seed, det_rng, DetRng};
use rand::Rng;

/// Word addresses the fuzzer draws from — the same region the fixed
/// litmus shapes use, far from the transaction-workload ranges.
const POOL_BASE: u64 = 0x1000;

/// How the generator lays out its address pool.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AddrMix {
    /// Every pool address lives in its own coherence block (the classic
    /// diy shape: all conflicts are same-word conflicts).
    #[default]
    Disjoint,
    /// The pool mixes conflict granularities: several distinct words
    /// share a coherence block (false sharing — an invalidation for one
    /// word's write hits its block neighbours too) alongside words in
    /// separate blocks. This stresses the block-granular machinery the
    /// disjoint pool never exercises: §4.1 forgiveness marks applied to
    /// *other* words of an invalidated block, evictions staling multiple
    /// in-flight loads at once, and write-buffer entries for neighbouring
    /// words draining into the same line.
    Mixed,
}

/// The kind of a communication edge in the generated critical cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CommEdge {
    /// Write → Read: the target load observes the source store.
    Rf,
    /// Write → Write: the target store is coherence-after the source.
    Co,
    /// Read → Write: the source load misses the target store.
    Fr,
}

impl CommEdge {
    /// Whether the edge's source endpoint is a store.
    fn source_writes(self) -> bool {
        !matches!(self, CommEdge::Fr)
    }

    /// Whether the edge's target endpoint is a store.
    fn target_writes(self) -> bool {
        !matches!(self, CommEdge::Rf)
    }
}

/// One generated program: a fixed per-thread instruction list.
#[derive(Clone, Debug)]
pub struct FuzzProgram {
    /// The generation seed (for reproduction).
    pub seed: u64,
    /// The model the program was generated for (decides the barrier
    /// vocabulary).
    pub model: Model,
    /// The address-pool shape the program was generated with.
    pub mix: AddrMix,
    /// Per-thread instruction lists, jitter excluded.
    pub threads: Vec<Vec<Instr>>,
}

impl FuzzProgram {
    /// The number of hardware threads the program needs.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// A compact human-readable listing, for disagreement forensics.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = format!(
            "fuzz program seed={:#x} model={} mix={:?}\n",
            self.seed, self.model, self.mix
        );
        for (tid, prog) in self.threads.iter().enumerate() {
            let _ = write!(s, "  t{tid}:");
            for i in prog {
                match *i {
                    Instr::Mem {
                        class: OpClass::Load,
                        addr,
                        ..
                    } => {
                        let _ = write!(s, " r({:#x});", addr.0);
                    }
                    Instr::Mem {
                        class: OpClass::Store,
                        addr,
                        store_value,
                    } => {
                        let _ = write!(s, " w({:#x})={store_value};", addr.0);
                    }
                    Instr::Mem {
                        class: OpClass::Atomic,
                        addr,
                        store_value,
                    } => {
                        let _ = write!(s, " swap({:#x})={store_value};", addr.0);
                    }
                    Instr::Mem {
                        class: OpClass::Membar(mask),
                        ..
                    } => {
                        let _ = write!(s, " membar#{mask};");
                    }
                    Instr::Mem {
                        class: OpClass::Stbar,
                        ..
                    } => {
                        let _ = write!(s, " stbar;");
                    }
                    Instr::Delay(d) => {
                        let _ = write!(s, " delay({d});");
                    }
                }
            }
            s.push('\n');
        }
        s
    }
}

/// A barrier drawn from the model's vocabulary, or `None` for no barrier.
/// SC needs no fences (its table orders everything); TSO's only
/// relaxation is Store→Load; PSO adds Store→Store (where `stbar` becomes
/// meaningful); RMO relaxes everything and takes arbitrary masks.
fn draw_barrier(rng: &mut DetRng, model: Model) -> Option<Instr> {
    match model {
        Model::Sc | Model::Pc => None,
        Model::Tso => Some(Instr::membar(MembarMask::SL)),
        Model::Pso => Some(match rng.gen_range(0..3u32) {
            0 => Instr::Mem {
                class: OpClass::Stbar,
                addr: dvmc_types::WordAddr(0),
                store_value: 0,
            },
            1 => Instr::membar(MembarMask::SS.union(MembarMask::SL)),
            _ => Instr::membar(MembarMask::ALL),
        }),
        Model::Rmo => {
            let mask = MembarMask::from_bits(rng.gen_range(1..=15u32) as u8);
            Some(Instr::membar(mask))
        }
    }
}

/// Generates the program for `(seed, model)` with the classic
/// one-block-per-address pool — a pure function: the same pair always
/// yields the same program, on any host and at any `--jobs`.
pub fn generate(seed: u64, model: Model) -> FuzzProgram {
    generate_with(seed, model, AddrMix::Disjoint)
}

/// Generates the program for `(seed, model, mix)`; see [`AddrMix`] for
/// the pool shapes. Pure for the triple. `Disjoint` is bit-identical to
/// [`generate`] at the same `(seed, model)`.
pub fn generate_with(seed: u64, model: Model, mix: AddrMix) -> FuzzProgram {
    let mut rng = det_rng(derive_seed(seed, model as u64));
    // Mostly small programs (2–4 threads probe reordering windows best),
    // occasionally wide ones (5–8 threads stress IRIW-like independence).
    let nthreads: usize = match rng.gen_range(0..10u32) {
        0..=3 => 2,
        4..=6 => 3,
        7 | 8 => 4,
        _ => rng.gen_range(5..=8u32) as usize,
    };
    let mut pool: Vec<u64> = (0..rng.gen_range(2..=4u64)).map(|i| POOL_BASE * (i + 1)).collect();
    if mix == AddrMix::Mixed {
        // Widen each block-aligned base with 1–2 sibling words of its own
        // block, so the pool carries same-word, same-block-different-word,
        // and cross-block conflicts side by side. Drawn after the base
        // pool so `Disjoint` keeps its exact RNG sequence.
        let bases: Vec<u64> = pool.clone();
        for base in bases {
            let mut offsets: Vec<u64> = (1..dvmc_types::WORDS_PER_BLOCK as u64).collect();
            for _ in 0..rng.gen_range(1..=2u32) {
                let k = rng.gen_range(0..offsets.len());
                pool.push(base + offsets.swap_remove(k));
            }
        }
    }
    // The critical cycle: one communication edge from each thread to its
    // successor. Consecutive edges prefer distinct addresses (a cycle
    // that stays on one address only probes coherence).
    let mut edges: Vec<(CommEdge, u64)> = Vec::with_capacity(nthreads);
    let mut prev_addr = u64::MAX;
    for _ in 0..nthreads {
        let kind = match rng.gen_range(0..3u32) {
            0 => CommEdge::Rf,
            1 => CommEdge::Co,
            _ => CommEdge::Fr,
        };
        let candidates: Vec<u64> = pool.iter().copied().filter(|&a| a != prev_addr).collect();
        let addr = candidates[rng.gen_range(0..candidates.len())];
        prev_addr = addr;
        edges.push((kind, addr));
    }
    // Globally unique non-zero store values (the oracle's attribution
    // contract).
    let mut next_value = 1u64;
    let mut value = |rng: &mut DetRng| {
        // Skip ahead unpredictably so values also differ across programs.
        next_value += rng.gen_range(1..=3u64);
        next_value
    };
    let mut threads: Vec<Vec<Instr>> = Vec::with_capacity(nthreads);
    for tid in 0..nthreads {
        let incoming = edges[(tid + nthreads - 1) % nthreads];
        let outgoing = edges[tid];
        let mut prog: Vec<Instr> = Vec::new();
        // Warm the thread's edge addresses into its cache so the body's
        // accesses can hit (and therefore race) instead of serializing on
        // cold misses.
        for addr in [incoming.1, outgoing.1] {
            prog.push(Instr::load(addr));
        }
        prog.push(Instr::Delay(rng.gen_range(50..=400u32)));
        // Body: incoming-edge target event, 0–2 random middle events,
        // outgoing-edge source event, with barriers sprinkled between.
        let mut body: Vec<Instr> = Vec::new();
        body.push(if incoming.0.target_writes() {
            Instr::store(incoming.1, value(&mut rng))
        } else {
            Instr::load(incoming.1)
        });
        for _ in 0..rng.gen_range(0..=2u32) {
            let addr = pool[rng.gen_range(0..pool.len())];
            body.push(match rng.gen_range(0..10u32) {
                0..=4 => Instr::load(addr),
                5..=8 => Instr::store(addr, value(&mut rng)),
                _ => Instr::swap(addr, value(&mut rng)),
            });
        }
        body.push(if outgoing.0.source_writes() {
            Instr::store(outgoing.1, value(&mut rng))
        } else {
            Instr::load(outgoing.1)
        });
        for (i, instr) in body.into_iter().enumerate() {
            if i > 0 && rng.gen_range(0..10u32) < 3 {
                if let Some(b) = draw_barrier(&mut rng, model) {
                    prog.push(b);
                }
            }
            prog.push(instr);
        }
        // Trailing observer loads give the oracle extra reads-from /
        // from-read evidence about the final coherence order.
        prog.push(Instr::Delay(rng.gen_range(200..=800u32)));
        for _ in 0..rng.gen_range(1..=2u32) {
            prog.push(Instr::load(pool[rng.gen_range(0..pool.len())]));
        }
        threads.push(prog);
    }
    FuzzProgram {
        seed,
        model,
        mix,
        threads,
    }
}

/// Builds the per-thread streams for a fuzz run: the generated program
/// with perturbation-seeded `Delay` jitter spliced between instructions,
/// wrapped in [`ScriptedStream`]s (straight-line programs, no polls —
/// termination is unconditional). Threads beyond the program's arity run
/// empty programs, so a fuzz workload fits any system size.
pub fn build_fuzz_streams(
    seed: u64,
    model: Model,
    threads: usize,
    perturbation: u64,
) -> Vec<Box<dyn InstrStream + Send>> {
    build_fuzz_streams_with(seed, model, threads, perturbation, AddrMix::Disjoint)
}

/// [`build_fuzz_streams`] with an explicit address-pool shape.
pub fn build_fuzz_streams_with(
    seed: u64,
    model: Model,
    threads: usize,
    perturbation: u64,
    mix: AddrMix,
) -> Vec<Box<dyn InstrStream + Send>> {
    let program = generate_with(seed, model, mix);
    (0..threads)
        .map(|tid| {
            let mut jitter = det_rng(derive_seed(perturbation, tid as u64));
            let mut instrs: Vec<Instr> = Vec::new();
            for &i in program.threads.get(tid).map_or(&[][..], Vec::as_slice) {
                if matches!(i, Instr::Mem { .. }) {
                    let d = jitter.gen_range(0..=24u32);
                    if d > 0 {
                        instrs.push(Instr::Delay(d));
                    }
                }
                instrs.push(i);
            }
            Box::new(ScriptedStream::new(instrs)) as Box<dyn InstrStream + Send>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvmc_pipeline::Fetch;

    fn mem_ops(p: &FuzzProgram) -> Vec<Vec<Instr>> {
        p.threads
            .iter()
            .map(|t| {
                t.iter()
                    .filter(|i| matches!(i, Instr::Mem { .. }))
                    .copied()
                    .collect()
            })
            .collect()
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20u64 {
            for model in Model::EVALUATED {
                let a = generate(seed, model);
                let b = generate(seed, model);
                assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
        }
    }

    #[test]
    fn seeds_vary_the_program() {
        let a = generate(1, Model::Tso);
        let b = generate(2, Model::Tso);
        assert_ne!(
            format!("{:?}", a.threads),
            format!("{:?}", b.threads),
            "different seeds should give different programs"
        );
    }

    #[test]
    fn arity_and_structure_bounds() {
        for seed in 0..200u64 {
            let p = generate(seed, Model::Rmo);
            assert!((2..=8).contains(&p.threads()), "seed {seed}: {} threads", p.threads());
            for (tid, t) in p.threads.iter().enumerate() {
                let mems = t.iter().filter(|i| matches!(i, Instr::Mem { .. })).count();
                assert!(mems >= 4, "seed {seed} t{tid}: too few memory ops");
            }
        }
    }

    #[test]
    fn store_values_are_globally_unique_and_non_zero() {
        for seed in 0..200u64 {
            let p = generate(seed, Model::Pso);
            let mut seen = std::collections::HashSet::new();
            for t in &p.threads {
                for i in t {
                    if let Instr::Mem {
                        class,
                        store_value,
                        ..
                    } = i
                    {
                        if class.writes() {
                            assert_ne!(*store_value, 0, "seed {seed}: store of 0");
                            assert!(
                                seen.insert(*store_value),
                                "seed {seed}: duplicate store value {store_value}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn disjoint_mode_is_bit_identical_to_generate() {
        for seed in 0..50u64 {
            for model in Model::EVALUATED {
                let a = generate(seed, model);
                let b = generate_with(seed, model, AddrMix::Disjoint);
                assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
        }
    }

    #[test]
    fn disjoint_pools_never_share_a_block() {
        for seed in 0..100u64 {
            let p = generate(seed, Model::Tso);
            let mut blocks = std::collections::HashMap::new();
            for t in &p.threads {
                for i in t {
                    if let Instr::Mem { addr, .. } = i {
                        let prev = blocks.insert(addr.block(), addr.0);
                        assert!(
                            prev.is_none_or(|w| w == addr.0),
                            "seed {seed}: disjoint pool put two words in one block"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mixed_pools_produce_false_sharing() {
        // Across a modest seed sweep the mixed pool must actually place
        // distinct words in a shared block (per-program it is stochastic:
        // the body draws addresses from the pool at random).
        let mut shared = 0usize;
        for seed in 0..100u64 {
            let p = generate_with(seed, Model::Tso, AddrMix::Mixed);
            assert_eq!(p.mix, AddrMix::Mixed);
            let mut by_block: std::collections::HashMap<_, std::collections::HashSet<u64>> =
                std::collections::HashMap::new();
            for t in &p.threads {
                for i in t {
                    if let Instr::Mem { addr, .. } = i {
                        by_block.entry(addr.block()).or_default().insert(addr.0);
                    }
                }
            }
            if by_block.values().any(|words| words.len() > 1) {
                shared += 1;
            }
        }
        assert!(
            shared > 50,
            "only {shared}/100 mixed programs exercised same-block different-word conflicts"
        );
    }

    #[test]
    fn mixed_store_values_stay_globally_unique() {
        for seed in 0..100u64 {
            let p = generate_with(seed, Model::Rmo, AddrMix::Mixed);
            let mut seen = std::collections::HashSet::new();
            for t in &p.threads {
                for i in t {
                    if let Instr::Mem {
                        class,
                        store_value,
                        ..
                    } = i
                    {
                        if class.writes() {
                            assert_ne!(*store_value, 0);
                            assert!(seen.insert(*store_value), "seed {seed}: duplicate value");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn barriers_match_the_model_vocabulary() {
        for seed in 0..100u64 {
            let p = generate(seed, Model::Sc);
            for t in &p.threads {
                assert!(
                    !t.iter().any(|i| matches!(
                        i,
                        Instr::Mem {
                            class: OpClass::Membar(_) | OpClass::Stbar,
                            ..
                        }
                    )),
                    "SC programs need no fences"
                );
            }
            let p = generate(seed, Model::Tso);
            for t in &p.threads {
                for i in t {
                    if let Instr::Mem {
                        class: OpClass::Membar(m),
                        ..
                    } = i
                    {
                        assert_eq!(*m, MembarMask::SL, "TSO's only relaxation is Store→Load");
                    }
                }
            }
        }
    }

    #[test]
    fn perturbation_changes_timing_only() {
        let base = mem_ops(&generate(7, Model::Tso));
        for perturbation in [0u64, 1, 99] {
            let streams = build_fuzz_streams(7, Model::Tso, 3, perturbation);
            for (tid, mut s) in streams.into_iter().enumerate() {
                let mut got: Vec<Instr> = Vec::new();
                loop {
                    match s.next() {
                        Fetch::Instr(i) => {
                            if matches!(i, Instr::Mem { .. }) {
                                got.push(i);
                            }
                        }
                        Fetch::AwaitLast => unreachable!("fuzz programs never poll"),
                        Fetch::Done => break,
                    }
                }
                let want = base.get(tid).cloned().unwrap_or_default();
                assert_eq!(got, want, "perturbation {perturbation} t{tid}");
            }
        }
    }

    #[test]
    fn extra_threads_run_empty_programs() {
        let p = generate(3, Model::Tso);
        let streams = build_fuzz_streams(3, Model::Tso, p.threads() + 2, 5);
        assert_eq!(streams.len(), p.threads() + 2);
        let mut last = streams.into_iter().next_back().unwrap();
        assert_eq!(last.next(), Fetch::Done);
    }

    #[test]
    fn render_names_every_event() {
        let p = generate(11, Model::Rmo);
        let r = p.render();
        assert!(r.contains("t0:") && r.contains("seed=0xb"));
        let stores = p
            .threads
            .iter()
            .flatten()
            .filter(|i| matches!(i, Instr::Mem { class, .. } if class.writes()))
            .count();
        assert!(stores == 0 || r.contains("w(") || r.contains("swap("));
    }
}
