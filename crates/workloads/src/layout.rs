//! Memory layout shared by the workload generators.
//!
//! Every synchronization variable sits in its own 64-byte block to avoid
//! false sharing; lock-protected rows are slices of the shared region
//! assigned per lock, so contention and data sharing line up.

use dvmc_types::{WordAddr, WORDS_PER_BLOCK};

/// Word address of the first lock block.
const LOCK_BASE: u64 = 0x10_0000;
/// Word address of the barrier counter block.
const BARRIER_BASE: u64 = 0x20_0000;
/// Word address of the shared data region.
const SHARED_BASE: u64 = 0x30_0000;
/// Word address of the per-thread private regions.
const PRIVATE_BASE: u64 = 0x80_0000;
/// Word address of the per-thread streaming log regions.
const LOG_BASE: u64 = 0x100_0000;
/// Ring size of each thread's log, in blocks.
const LOG_BLOCKS: u64 = 8192;

/// The address map for one workload instance.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// Number of locks.
    pub locks: u64,
    /// Shared-region size in blocks.
    pub shared_blocks: u64,
    /// Private-region size in blocks per thread.
    pub private_blocks: u64,
    /// Number of threads.
    pub threads: u64,
}

impl Layout {
    /// The lock word for lock `i` (one block per lock).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.locks`.
    pub fn lock(&self, i: u64) -> WordAddr {
        assert!(i < self.locks, "lock index out of range");
        WordAddr(LOCK_BASE + i * WORDS_PER_BLOCK as u64)
    }

    /// The barrier counter word (guarded by [`barrier_lock`](Self::barrier_lock)).
    pub fn barrier_counter(&self) -> WordAddr {
        WordAddr(BARRIER_BASE)
    }

    /// The dedicated barrier lock (its own block, separate from data locks).
    pub fn barrier_lock(&self) -> WordAddr {
        WordAddr(BARRIER_BASE + WORDS_PER_BLOCK as u64)
    }

    /// A word in the shared region, by flat word index.
    pub fn shared_word(&self, idx: u64) -> WordAddr {
        WordAddr(SHARED_BASE + idx % (self.shared_blocks * WORDS_PER_BLOCK as u64))
    }

    /// A word in the slice of the shared region protected by lock `i`.
    /// Each lock protects `shared_blocks / locks` blocks.
    pub fn protected_word(&self, lock: u64, idx: u64) -> WordAddr {
        let blocks_per_lock = (self.shared_blocks / self.locks).max(1);
        let words = blocks_per_lock * WORDS_PER_BLOCK as u64;
        let base = SHARED_BASE + (lock % self.locks) * words;
        WordAddr(base + idx % words)
    }

    /// A word in thread `tid`'s private region.
    pub fn private_word(&self, tid: u64, idx: u64) -> WordAddr {
        let words = self.private_blocks * WORDS_PER_BLOCK as u64;
        WordAddr(PRIVATE_BASE + tid * words + idx % words)
    }

    /// The `cursor`-th word of thread `tid`'s streaming log ring —
    /// sequential writes that are always cold (the ring far exceeds any
    /// cache), the classic database/web-server logging pattern whose
    /// store misses a write buffer hides and an SC commit stall exposes.
    pub fn log_word(&self, tid: u64, cursor: u64) -> WordAddr {
        let words = LOG_BLOCKS * WORDS_PER_BLOCK as u64;
        WordAddr(LOG_BASE + tid * words + cursor % words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout {
            locks: 8,
            shared_blocks: 64,
            private_blocks: 16,
            threads: 4,
        }
    }

    #[test]
    fn locks_occupy_distinct_blocks() {
        let l = layout();
        let blocks: Vec<_> = (0..8).map(|i| l.lock(i).block()).collect();
        let mut dedup = blocks.clone();
        dedup.dedup();
        assert_eq!(blocks.len(), dedup.len());
    }

    #[test]
    fn protected_slices_do_not_overlap() {
        let l = layout();
        for a in 0..8u64 {
            for b in (a + 1)..8 {
                for i in 0..32 {
                    assert_ne!(
                        l.protected_word(a, i).block(),
                        l.protected_word(b, i).block(),
                        "locks {a} and {b} share a block"
                    );
                }
            }
        }
    }

    #[test]
    fn private_regions_do_not_overlap() {
        let l = layout();
        for i in 0..64 {
            assert_ne!(
                l.private_word(0, i).block(),
                l.private_word(1, i).block()
            );
        }
    }

    #[test]
    fn regions_are_disjoint() {
        let l = layout();
        let lock_block = l.lock(0).block();
        let shared_block = l.shared_word(0).block();
        let private_block = l.private_word(0, 0).block();
        let barrier_block = l.barrier_counter().block();
        let log_block = l.log_word(0, 0).block();
        let all = [lock_block, shared_block, private_block, barrier_block, log_block];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_ne!(l.barrier_lock().block(), l.barrier_counter().block());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lock_bounds_checked() {
        let _ = layout().lock(8);
    }
}
