//! The lock-based transaction generator all workloads are built from.

use crate::layout::Layout;
use crate::spec::Profile;
use dvmc_consistency::{MembarMask, Model};
use dvmc_pipeline::{Fetch, Instr, InstrStream};
use dvmc_types::rng::{det_rng, DetRng};
use dvmc_types::SeqNum;
use rand::Rng;
use std::collections::VecDeque;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AwaitKind {
    None,
    /// Polling read of a lock word; acquire attempts follow if it is free.
    TestLock,
    /// The atomic test-and-set; zero means acquired.
    SwapLock,
    /// Polling read of the barrier counter until it reaches the target.
    BarrierSpin { target: u64 },
    /// Read of the barrier counter under the barrier lock; the increment
    /// and release follow.
    BarrierCount,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    /// Between transactions.
    Think,
    /// Spinning on a lock; `then` resumes after acquisition.
    Locking { lock: u64, then: After },
    /// Executing the instruction queue; decide again when it drains.
    Flowing { then: After },
    /// All transactions done.
    Finished,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum After {
    /// Run the critical section of the current transaction, then unlock.
    Critical { lock: u64 },
    /// Finish the transaction (unlocked tail accesses done).
    EndTxn,
    /// Enter the barrier count update (barnes).
    BarrierUpdate,
    /// Spin until the barrier opens, then start the next phase.
    BarrierWait,
}

/// A lock-based transaction stream for one thread (see crate docs).
#[derive(Clone)]
pub struct TxnStream {
    profile: Profile,
    layout: Layout,
    model: Model,
    tid: u64,
    /// Program structure: lock choices, access counts, addresses, values.
    rng: DetRng,
    /// Timing only: think time and per-op compute jitter (§5's "small
    /// pseudo-random perturbations" vary this stream between runs while
    /// the program itself stays fixed).
    jitter: DetRng,
    queue: VecDeque<Instr>,
    awaiting: AwaitKind,
    state: State,
    txns: u64,
    target_txns: u64,
    log_cursor: u64,
    current_lock: u64,
    barrier_phase: u64,
    lock_backoff: u32,
}

impl TxnStream {
    /// Creates the stream for thread `tid`.
    pub fn new(
        profile: Profile,
        layout: Layout,
        model: Model,
        tid: u64,
        target_txns: u64,
        seed: u64,
        perturbation: u64,
    ) -> Self {
        TxnStream {
            profile,
            layout,
            model,
            tid,
            rng: det_rng(seed),
            jitter: det_rng(perturbation),
            queue: VecDeque::new(),
            awaiting: AwaitKind::None,
            state: State::Think,
            txns: 0,
            target_txns,
            log_cursor: 0,
            current_lock: 0,
            barrier_phase: 0,
            lock_backoff: 4,
        }
    }

    fn rand_in(&mut self, range: (u32, u32)) -> u32 {
        if range.1 <= range.0 {
            range.0
        } else {
            self.rng.gen_range(range.0..=range.1)
        }
    }

    /// Timing-only draw (perturbed between runs).
    fn jitter_in(&mut self, range: (u32, u32)) -> u32 {
        if range.1 <= range.0 {
            range.0
        } else {
            self.jitter.gen_range(range.0..=range.1)
        }
    }

    /// Acquire-side fence after a successful lock atomic (real SPARC
    /// code under RMO needs #LoadLoad|#LoadStore; TSO/PSO orders are
    /// implicit; SC needs nothing).
    fn acquire_fence(&mut self) {
        if self.model == Model::Rmo {
            self.queue
                .push_back(Instr::membar(MembarMask::LL | MembarMask::LS));
        }
    }

    /// Release-side fence before the unlock store.
    fn release_fence(&mut self) {
        match self.model {
            Model::Rmo => self
                .queue
                .push_back(Instr::membar(MembarMask::LS | MembarMask::SS)),
            Model::Pso => self.queue.push_back(Instr::Mem {
                class: dvmc_consistency::OpClass::Stbar,
                addr: dvmc_types::WordAddr(0),
                store_value: 0,
            }),
            _ => {}
        }
    }

    /// Emits `reads`/`writes` accesses over the region selected per op.
    fn emit_accesses(&mut self, reads: u32, writes: u32, lock: Option<u64>) {
        let total = reads + writes;
        let mut writes_left = writes;
        for i in 0..total {
            let compute = self.jitter_in(self.profile.compute_per_op);
            if compute > 0 {
                self.queue.push_back(Instr::Delay(compute));
            }
            let do_write = writes_left > 0
                && (self.rng.gen_ratio(writes_left, (total - i).max(1)));
            let shared = self
                .rng
                .gen_bool(self.profile.shared_fraction);
            let idx = self.rng.gen::<u64>();
            let addr = match (lock, shared) {
                (Some(l), true) => self.layout.protected_word(l, idx),
                (None, true) => self.layout.shared_word(idx),
                (_, false) => self.layout.private_word(self.tid, idx),
            };
            if do_write {
                writes_left -= 1;
                let value = self.rng.gen::<u64>() | 1;
                self.queue.push_back(Instr::Mem {
                    class: dvmc_consistency::OpClass::Store,
                    addr,
                    store_value: value,
                });
            } else {
                self.queue.push_back(Instr::Mem {
                    class: dvmc_consistency::OpClass::Load,
                    addr,
                    store_value: 0,
                });
            }
        }
    }

    fn begin_lock_acquisition(&mut self, lock: u64, then: After) {
        self.current_lock = lock;
        self.lock_backoff = 4;
        self.state = State::Locking { lock, then };
        // Test-and-test-and-set: poll with plain loads first.
        self.queue.push_back(Instr::load(self.layout.lock(lock).0));
        self.awaiting = AwaitKind::TestLock;
    }

    fn begin_transaction(&mut self) {
        if self.txns >= self.target_txns {
            self.state = State::Finished;
            return;
        }
        if self.profile.barrier_phases {
            // barnes: one transaction = one compute phase + barrier.
            let reads = self.rand_in(self.profile.reads_per_txn);
            let writes = self.rand_in(self.profile.writes_per_txn);
            self.emit_accesses(reads, writes, None);
            self.state = State::Flowing {
                then: After::BarrierUpdate,
            };
            return;
        }
        let locked = self.rng.gen_bool(self.profile.locked_fraction);
        if locked {
            let lock = self.rng.gen_range(0..self.layout.locks);
            self.begin_lock_acquisition(lock, After::Critical { lock });
        } else {
            let reads = self.rand_in(self.profile.reads_per_txn);
            let writes = self.rand_in(self.profile.writes_per_txn);
            self.emit_accesses(reads, writes, None);
            self.state = State::Flowing {
                then: After::EndTxn,
            };
        }
    }

    fn end_transaction(&mut self) {
        self.txns += 1;
        // Commit the transaction's log record: streaming sequential
        // stores to an always-cold ring (cf. Table 5's write-buffer
        // motivation: these misses move off the critical path under TSO).
        let records = self.rand_in(self.profile.log_writes);
        for _ in 0..records {
            let addr = self.layout.log_word(self.tid, self.log_cursor);
            self.log_cursor += 1;
            let value = self.rng.gen::<u64>() | 1;
            self.queue.push_back(Instr::Mem {
                class: dvmc_consistency::OpClass::Store,
                addr,
                store_value: value,
            });
        }
        let think = self.jitter_in(self.profile.think_time);
        if think > 0 {
            self.queue.push_back(Instr::Delay(think));
        }
        self.state = State::Think;
    }

    /// Advances the state machine when the queue has drained and no await
    /// is pending.
    fn step(&mut self) {
        match self.state {
            State::Finished => {}
            State::Think => self.begin_transaction(),
            State::Locking { .. } => {
                // Waiting on a lock value; `deliver` drives this state.
            }
            State::Flowing { then } => match then {
                After::Critical { lock } => {
                    // Critical section done: release.
                    self.release_fence();
                    self.queue
                        .push_back(Instr::store(self.layout.lock(lock).0, 0));
                    // Unlocked tail accesses.
                    let reads = self.rand_in(self.profile.unlocked_reads);
                    if reads > 0 {
                        self.emit_accesses(reads, 0, None);
                    }
                    self.state = State::Flowing {
                        then: After::EndTxn,
                    };
                }
                After::EndTxn => self.end_transaction(),
                After::BarrierUpdate => {
                    let lock = self.layout.barrier_lock();
                    // Reuse the locking machinery with the barrier lock by
                    // temporarily treating it as lock index u64::MAX.
                    self.state = State::Locking {
                        lock: u64::MAX,
                        then: After::BarrierWait,
                    };
                    self.lock_backoff = 4;
                    self.queue.push_back(Instr::load(lock.0));
                    self.awaiting = AwaitKind::TestLock;
                }
                After::BarrierWait => {
                    // Inside the barrier lock: read the counter.
                    self.queue
                        .push_back(Instr::load(self.layout.barrier_counter().0));
                    self.awaiting = AwaitKind::BarrierCount;
                }
            },
        }
    }

    fn lock_addr_of(&self, lock: u64) -> dvmc_types::WordAddr {
        if lock == u64::MAX {
            self.layout.barrier_lock()
        } else {
            self.layout.lock(lock)
        }
    }
}

impl InstrStream for TxnStream {
    fn next(&mut self) -> Fetch {
        loop {
            if let Some(i) = self.queue.pop_front() {
                return Fetch::Instr(i);
            }
            if self.awaiting != AwaitKind::None {
                return Fetch::AwaitLast;
            }
            if self.state == State::Finished {
                return Fetch::Done;
            }
            let before = (self.queue.len(), self.state, self.awaiting);
            self.step();
            let after = (self.queue.len(), self.state, self.awaiting);
            if before == after {
                // Defensive: a stuck state machine must not spin the
                // simulator; finish instead.
                debug_assert!(false, "workload state machine made no progress");
                return Fetch::Done;
            }
        }
    }

    fn deliver(&mut self, _seq: SeqNum, value: u64) {
        match self.awaiting {
            AwaitKind::None => {}
            AwaitKind::TestLock => {
                let State::Locking { lock, .. } = self.state else {
                    self.awaiting = AwaitKind::None;
                    return;
                };
                let addr = self.lock_addr_of(lock);
                if value == 0 {
                    // Free: attempt the atomic test-and-set.
                    self.queue.push_back(Instr::swap(addr.0, self.tid + 1));
                    self.awaiting = AwaitKind::SwapLock;
                } else {
                    // Taken: back off and re-poll (this spin loop is the
                    // dominant source of replay misses, Figure 6).
                    let backoff = self.lock_backoff;
                    self.lock_backoff = (self.lock_backoff * 2).min(256);
                    self.queue.push_back(Instr::Delay(backoff));
                    self.queue.push_back(Instr::load(addr.0));
                    self.awaiting = AwaitKind::TestLock;
                }
            }
            AwaitKind::SwapLock => {
                let State::Locking { lock, then } = self.state else {
                    self.awaiting = AwaitKind::None;
                    return;
                };
                if value == 0 {
                    // Acquired.
                    self.awaiting = AwaitKind::None;
                    self.acquire_fence();
                    match then {
                        After::Critical { lock } => {
                            let reads = self.rand_in(self.profile.reads_per_txn);
                            let writes = self.rand_in(self.profile.writes_per_txn);
                            self.emit_accesses(reads, writes, Some(lock));
                            self.state = State::Flowing {
                                then: After::Critical { lock },
                            };
                        }
                        After::BarrierWait => {
                            self.state = State::Flowing {
                                then: After::BarrierWait,
                            };
                        }
                        other => {
                            self.state = State::Flowing { then: other };
                        }
                    }
                } else {
                    // Lost the race: back to polling.
                    let addr = self.lock_addr_of(lock);
                    let backoff = self.lock_backoff;
                    self.lock_backoff = (self.lock_backoff * 2).min(256);
                    self.queue.push_back(Instr::Delay(backoff));
                    self.queue.push_back(Instr::load(addr.0));
                    self.awaiting = AwaitKind::TestLock;
                }
            }
            AwaitKind::BarrierCount => {
                // We hold the barrier lock; value is the current count.
                let counter = self.layout.barrier_counter();
                let lock = self.layout.barrier_lock();
                self.queue.push_back(Instr::store(counter.0, value + 1));
                self.release_fence();
                self.queue.push_back(Instr::store(lock.0, 0));
                self.barrier_phase += 1;
                let target = self.barrier_phase * self.layout.threads;
                if value + 1 >= target {
                    // Last arriver: barrier already open.
                    self.awaiting = AwaitKind::None;
                    self.state = State::Flowing {
                        then: After::EndTxn,
                    };
                } else {
                    self.queue.push_back(Instr::Delay(16));
                    self.queue.push_back(Instr::load(counter.0));
                    self.awaiting = AwaitKind::BarrierSpin { target };
                }
            }
            AwaitKind::BarrierSpin { target } => {
                if value >= target {
                    self.awaiting = AwaitKind::None;
                    self.state = State::Flowing {
                        then: After::EndTxn,
                    };
                } else {
                    let counter = self.layout.barrier_counter();
                    self.queue.push_back(Instr::Delay(32));
                    self.queue.push_back(Instr::load(counter.0));
                    self.awaiting = AwaitKind::BarrierSpin { target };
                }
            }
        }
    }

    fn transactions(&self) -> u64 {
        self.txns
    }

    fn clone_box(&self) -> Box<dyn InstrStream + Send> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for TxnStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnStream")
            .field("tid", &self.tid)
            .field("txns", &self.txns)
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}
