//! Litmus-test workloads: the classic two-to-four-thread shapes that
//! axiomatic tools (TriCheck, herd, QED) treat as conformance ground
//! truth, encoded as fixed [`InstrStream`]s so the *dynamic* checkers can
//! be cross-checked against them.
//!
//! Each test fixes its program structure; only timing jitter (drawn from
//! the perturbation seed) varies between trials, so a sweep over
//! perturbation seeds explores interleavings while the program — and
//! therefore the set of model-allowed outcomes — stays constant.
//!
//! The expected verdict per model is *derived from the ordering table*,
//! not hard-coded: [`LitmusTest::forbidden`] asks the model's table which
//! relaxation the test's characteristic outcome requires. The conformance
//! harness (`tests/litmus.rs`) asserts that outcomes the table forbids
//! are never observed and that DVMC raises no violation on allowed ones.

use dvmc_consistency::{MembarMask, Model, OpClass};
use dvmc_pipeline::{Fetch, Instr, InstrStream};
use dvmc_types::rng::{det_rng, DetRng};
use dvmc_types::{SeqNum, WordAddr};
use rand::Rng;
use std::collections::VecDeque;

/// Word addresses for the litmus variables — distinct cache blocks, far
/// from the transaction-workload regions.
const LITMUS_X: u64 = 0x1000;
const LITMUS_Y: u64 = 0x2000;
/// Done flags: shapes whose verdict depends on the *final coherence
/// order* of a variable hand the observation to a dedicated observer
/// thread, which waits on these before reading. Distinct blocks from the
/// data variables.
const LITMUS_D0: u64 = 0x4000;
const LITMUS_D1: u64 = 0x5000;

/// The litmus shapes of the conformance suite.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LitmusTest {
    /// Store buffering (Dekker): `t0: x=1; r0=y` / `t1: y=1; r1=x`.
    /// Relaxed outcome `(r0,r1)=(0,0)` requires Store→Load reordering.
    Sb,
    /// Message passing: `t0: x=1; y=1` / `t1: poll y==1; r=x`.
    /// Stale `r=0` requires Store→Store (writer) or Load→Load (reader)
    /// reordering.
    Mp,
    /// Load buffering: `t0: r0=y; x=1` / `t1: r1=x; y=1`.
    /// `(r0,r1)=(1,1)` requires Load→Store reordering.
    Lb,
    /// Write-to-read causality: `t0: x=1` / `t1: poll x==1; y=1` /
    /// `t2: poll y==1; r=x`. Stale `r=0` requires Load→Store (t1) and
    /// Load→Load (t2) both relaxed, or a non-multi-copy-atomic memory
    /// system.
    Wrc,
    /// Independent reads of independent writes: `t0: x=1` / `t1: y=1` /
    /// `t2: poll x==1; r2=y` / `t3: poll y==1; r3=x`. The paradox
    /// `(r2,r3)=(0,0)` requires Load→Load reordering or non-MCA stores.
    Iriw,
    /// Coherent read-read: `t0: x=1; x=2; x=3; x=4` / `t1: r[0..8]=x`.
    /// A non-monotone read sequence violates coherence under *every*
    /// model.
    Corr,
    /// S: `t0: x=2; y=1` / `t1: poll y==1; x=1`. The outcome where `x=1`
    /// loses the coherence race (final `x==2`) requires Store→Store (t0)
    /// or Load→Store (t1) reordering. A done-flag observer thread reads
    /// the final value of `x`.
    S,
    /// R: `t0: x=1; y=1` / `t1: y=2; r=x`. The outcome `r==0` with
    /// `y=2` winning coherence (final `y==2`) requires Store→Store (t0)
    /// or Store→Load (t1) reordering — forbidden only under SC.
    R,
    /// 2+2W: `t0: x=1; y=2` / `t1: y=1; x=2`. Both *first* stores winning
    /// coherence (final `x==1 && y==1`) requires Store→Store reordering.
    TwoPlusTwoW,
    /// CoWW: `t0: x=1; x=2`. Final `x==1` (the younger same-address store
    /// losing coherence) violates per-location order under *every* model.
    CoWw,
    /// CoRW1: `t0: r=x; x=1`. `r==1` means the load observed its own
    /// program-order-later store — forbidden under *every* model.
    CoRw1,
}

impl LitmusTest {
    /// All litmus shapes, in presentation order.
    pub const ALL: [LitmusTest; 11] = [
        LitmusTest::Sb,
        LitmusTest::Mp,
        LitmusTest::Lb,
        LitmusTest::Wrc,
        LitmusTest::Iriw,
        LitmusTest::Corr,
        LitmusTest::S,
        LitmusTest::R,
        LitmusTest::TwoPlusTwoW,
        LitmusTest::CoWw,
        LitmusTest::CoRw1,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LitmusTest::Sb => "sb",
            LitmusTest::Mp => "mp",
            LitmusTest::Lb => "lb",
            LitmusTest::Wrc => "wrc",
            LitmusTest::Iriw => "iriw",
            LitmusTest::Corr => "corr",
            LitmusTest::S => "s",
            LitmusTest::R => "r",
            LitmusTest::TwoPlusTwoW => "2+2w",
            LitmusTest::CoWw => "coww",
            LitmusTest::CoRw1 => "corw1",
        }
    }

    /// The number of hardware threads the shape needs.
    pub fn threads(self) -> usize {
        match self {
            LitmusTest::CoRw1 => 1,
            LitmusTest::Sb
            | LitmusTest::Mp
            | LitmusTest::Lb
            | LitmusTest::Corr
            | LitmusTest::CoWw => 2,
            LitmusTest::Wrc | LitmusTest::S | LitmusTest::R | LitmusTest::TwoPlusTwoW => 3,
            LitmusTest::Iriw => 4,
        }
    }

    /// Whether `model`'s ordering table forbids the test's characteristic
    /// relaxed outcome. Derived from the table, never hard-coded: the
    /// outcome is forbidden exactly when every reordering that could
    /// produce it is required to be ordered.
    ///
    /// Our memory systems invalidate before granting write permission, so
    /// stores are multi-copy atomic; the non-MCA escape hatches of WRC and
    /// IRIW are closed by construction and only the per-thread reorderings
    /// remain.
    pub fn forbidden(self, model: Model) -> bool {
        let t = model.table();
        let ll = t.requires(OpClass::Load, OpClass::Load);
        let ls = t.requires(OpClass::Load, OpClass::Store);
        let sl = t.requires(OpClass::Store, OpClass::Load);
        let ss = t.requires(OpClass::Store, OpClass::Store);
        match self {
            LitmusTest::Sb => sl,
            LitmusTest::Mp => ss && ll,
            LitmusTest::Lb => ls,
            LitmusTest::Wrc => ls && ll,
            LitmusTest::Iriw => ll,
            // S's cycle needs t0's Store→Store and t1's Load→Store held.
            LitmusTest::S => ss && ls,
            // R's cycle needs t0's Store→Store and t1's Store→Load held
            // — only SC keeps both.
            LitmusTest::R => ss && sl,
            // 2+2W's cycle is two Store→Store edges plus coherence.
            LitmusTest::TwoPlusTwoW => ss,
            // Per-location ordering is model-independent.
            LitmusTest::Corr | LitmusTest::CoWw | LitmusTest::CoRw1 => true,
        }
    }

    /// The scripts: one step list per thread.
    fn scripts(self) -> Vec<Vec<Step>> {
        use Step::{Poll, Run};
        let load = |a: u64| Run(Instr::load(a));
        let store = |a: u64, v: u64| Run(Instr::store(a, v));
        match self {
            // Warm both variables into each cache first so the final
            // loads can race the remote stores (the canonical SB
            // interleaving needs both stores to miss while both loads
            // hit).
            LitmusTest::Sb => vec![
                vec![
                    load(LITMUS_X),
                    load(LITMUS_Y),
                    Step::Jitter(400),
                    store(LITMUS_X, 1),
                    load(LITMUS_Y),
                ],
                vec![
                    load(LITMUS_Y),
                    load(LITMUS_X),
                    Step::Jitter(400),
                    store(LITMUS_Y, 1),
                    load(LITMUS_X),
                ],
            ],
            LitmusTest::Mp => vec![
                vec![Step::Jitter(200), store(LITMUS_X, 1), store(LITMUS_Y, 1)],
                vec![
                    load(LITMUS_X), // warm x so the final load can hit stale
                    Poll {
                        addr: WordAddr(LITMUS_Y),
                        until: 1,
                    },
                    load(LITMUS_X),
                ],
            ],
            LitmusTest::Lb => vec![
                vec![Step::Jitter(100), load(LITMUS_Y), store(LITMUS_X, 1)],
                vec![Step::Jitter(100), load(LITMUS_X), store(LITMUS_Y, 1)],
            ],
            LitmusTest::Wrc => vec![
                vec![Step::Jitter(200), store(LITMUS_X, 1)],
                vec![
                    Poll {
                        addr: WordAddr(LITMUS_X),
                        until: 1,
                    },
                    store(LITMUS_Y, 1),
                ],
                vec![
                    load(LITMUS_X),
                    Poll {
                        addr: WordAddr(LITMUS_Y),
                        until: 1,
                    },
                    load(LITMUS_X),
                ],
            ],
            LitmusTest::Iriw => vec![
                vec![Step::Jitter(150), store(LITMUS_X, 1)],
                vec![Step::Jitter(150), store(LITMUS_Y, 1)],
                vec![
                    load(LITMUS_Y),
                    Poll {
                        addr: WordAddr(LITMUS_X),
                        until: 1,
                    },
                    load(LITMUS_Y),
                ],
                vec![
                    load(LITMUS_X),
                    Poll {
                        addr: WordAddr(LITMUS_Y),
                        until: 1,
                    },
                    load(LITMUS_X),
                ],
            ],
            LitmusTest::Corr => vec![
                vec![
                    Step::Jitter(100),
                    store(LITMUS_X, 1),
                    store(LITMUS_X, 2),
                    store(LITMUS_X, 3),
                    store(LITMUS_X, 4),
                ],
                (0..8)
                    .flat_map(|_| [Step::Jitter(30), load(LITMUS_X)])
                    .collect(),
            ],
            // t2 observes the final coherence winner of x: it waits for
            // t1's done flag (written after t1's store under the models
            // that forbid S) and a drain margin, then reads. Final x==2
            // means t1's x=1 lost the coherence race despite observing
            // y==1 — the forbidden cycle.
            LitmusTest::S => vec![
                vec![Step::Jitter(200), store(LITMUS_X, 2), store(LITMUS_Y, 1)],
                vec![
                    Poll {
                        addr: WordAddr(LITMUS_Y),
                        until: 1,
                    },
                    store(LITMUS_X, 1),
                    store(LITMUS_D0, 1),
                ],
                vec![
                    Poll {
                        addr: WordAddr(LITMUS_D0),
                        until: 1,
                    },
                    Run(Instr::Delay(1500)),
                    load(LITMUS_X),
                ],
            ],
            // t1 warms x so its load can hit the stale cached copy while
            // its y=2 sits in the write buffer; t2 reads the final
            // coherence winner of y after both done flags.
            LitmusTest::R => vec![
                vec![
                    Step::Jitter(250),
                    store(LITMUS_X, 1),
                    store(LITMUS_Y, 1),
                    store(LITMUS_D0, 1),
                ],
                vec![
                    load(LITMUS_X),
                    Step::Jitter(150),
                    store(LITMUS_Y, 2),
                    load(LITMUS_X),
                    store(LITMUS_D1, 1),
                ],
                vec![
                    Poll {
                        addr: WordAddr(LITMUS_D0),
                        until: 1,
                    },
                    Poll {
                        addr: WordAddr(LITMUS_D1),
                        until: 1,
                    },
                    Run(Instr::Delay(1500)),
                    load(LITMUS_Y),
                ],
            ],
            // Both writers race their two-store sequences; t2 reads the
            // final coherence winners of both variables. Each thread
            // first takes exclusive ownership of its *second* variable
            // (warm-up store, performed long before the race), so under
            // relaxed Store→Store the second store can drain instantly
            // while the first is still stealing its block — the
            // interleaving that realizes the outcome.
            LitmusTest::TwoPlusTwoW => vec![
                vec![
                    store(LITMUS_Y, 7),
                    Step::Jitter(150),
                    store(LITMUS_X, 1),
                    store(LITMUS_Y, 2),
                    store(LITMUS_D0, 1),
                ],
                vec![
                    store(LITMUS_X, 8),
                    Step::Jitter(150),
                    store(LITMUS_Y, 1),
                    store(LITMUS_X, 2),
                    store(LITMUS_D1, 1),
                ],
                vec![
                    Poll {
                        addr: WordAddr(LITMUS_D0),
                        until: 1,
                    },
                    Poll {
                        addr: WordAddr(LITMUS_D1),
                        until: 1,
                    },
                    Run(Instr::Delay(1500)),
                    load(LITMUS_X),
                    load(LITMUS_Y),
                ],
            ],
            // The membar pins the done flag after both x-stores under
            // every model (the property under test is the per-location
            // x=1/x=2 order, which the fence does not touch), so the
            // observer's read is guaranteed to see the settled winner.
            LitmusTest::CoWw => vec![
                vec![
                    Step::Jitter(100),
                    store(LITMUS_X, 1),
                    store(LITMUS_X, 2),
                    Run(Instr::membar(MembarMask::ALL)),
                    store(LITMUS_D0, 1),
                ],
                vec![
                    Poll {
                        addr: WordAddr(LITMUS_D0),
                        until: 1,
                    },
                    Run(Instr::Delay(1500)),
                    load(LITMUS_X),
                ],
            ],
            LitmusTest::CoRw1 => vec![vec![Step::Jitter(50), load(LITMUS_X), store(LITMUS_X, 1)]],
        }
    }

    /// Evaluates one run's outcome from the per-thread *committed load
    /// values* (in commit order, poll loads included): `true` when the
    /// test's characteristic relaxed outcome was observed.
    ///
    /// # Panics
    ///
    /// Panics if `loads` has fewer threads than the shape or a thread
    /// committed no loads (the run did not complete).
    pub fn relaxed_observed(self, loads: &[Vec<u64>]) -> bool {
        assert!(loads.len() >= self.threads(), "{}: missing threads", self.name());
        let last = |t: usize| *loads[t].last().expect("thread committed no loads");
        match self {
            LitmusTest::Sb => last(0) == 0 && last(1) == 0,
            // The poll only exits on y==1, so a stale final x is the MP
            // violation directly.
            LitmusTest::Mp => last(1) == 0,
            LitmusTest::Lb => last(0) == 1 && last(1) == 1,
            LitmusTest::Wrc => last(2) == 0,
            LitmusTest::Iriw => last(2) == 0 && last(3) == 0,
            LitmusTest::Corr => {
                let mut prev = 0;
                for &v in &loads[1] {
                    if v < prev {
                        return true; // read sequence ran backwards
                    }
                    prev = v;
                }
                false
            }
            // The observer read x after t1's x=1 was globally visible
            // (done-flag chain); 2 final means x=1 lost the race.
            LitmusTest::S => last(2) == 2,
            // t1 missed x=1 while its y=2 won the coherence race.
            LitmusTest::R => last(1) == 0 && last(2) == 2,
            // Both observer reads (x then y, the last two committed
            // loads) saw the threads' *first* stores win.
            LitmusTest::TwoPlusTwoW => {
                let l = &loads[2];
                l.len() >= 2 && l[l.len() - 2] == 1 && l[l.len() - 1] == 1
            }
            // Both x-stores performed before the observer read (membar +
            // done flag); anything but 2 means the younger store lost.
            LitmusTest::CoWw => last(1) != 2,
            // The lone load can only return 1 by observing its own
            // program-order-later store.
            LitmusTest::CoRw1 => last(0) == 1,
        }
    }
}

impl std::fmt::Display for LitmusTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One step of a litmus script.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Emit the instruction as-is.
    Run(Instr),
    /// A timing-jitter delay of up to this many cycles, drawn from the
    /// perturbation seed (0 is possible: the step may vanish entirely).
    Jitter(u32),
    /// Poll `addr` with plain loads (re-fetch after a short jittered
    /// backoff) until it reads `until`. Guaranteed to terminate whenever
    /// the awaited store eventually performs.
    Poll { addr: WordAddr, until: u64 },
}

/// A fixed litmus program for one thread, with perturbation-seeded timing
/// jitter. Implements the poll loops via [`Fetch::AwaitLast`] control
/// dependencies, exactly like the spin locks of the transaction workloads.
#[derive(Clone)]
pub struct LitmusStream {
    steps: Vec<Step>,
    pos: usize,
    queue: VecDeque<Instr>,
    /// A pending poll: the last emitted load must commit and be checked.
    polling: Option<(WordAddr, u64)>,
    jitter: DetRng,
    done: bool,
}

impl LitmusStream {
    /// Creates thread `tid`'s stream of `test`, with timing jitter drawn
    /// from `perturbation`. Threads beyond the shape's arity get an empty
    /// program.
    pub fn new(test: LitmusTest, tid: usize, perturbation: u64) -> Self {
        let mut scripts = test.scripts();
        let steps = if tid < scripts.len() {
            std::mem::take(&mut scripts[tid])
        } else {
            Vec::new()
        };
        LitmusStream {
            steps,
            pos: 0,
            queue: VecDeque::new(),
            polling: None,
            jitter: det_rng(perturbation),
            done: false,
        }
    }
}

impl InstrStream for LitmusStream {
    fn next(&mut self) -> Fetch {
        loop {
            if let Some(i) = self.queue.pop_front() {
                return Fetch::Instr(i);
            }
            if self.polling.is_some() {
                return Fetch::AwaitLast;
            }
            if self.done {
                return Fetch::Done;
            }
            let Some(&step) = self.steps.get(self.pos) else {
                self.done = true;
                return Fetch::Done;
            };
            self.pos += 1;
            match step {
                Step::Run(i) => self.queue.push_back(i),
                Step::Jitter(max) => {
                    let d = self.jitter.gen_range(0..=max);
                    if d > 0 {
                        self.queue.push_back(Instr::Delay(d));
                    }
                }
                Step::Poll { addr, until } => {
                    self.queue.push_back(Instr::load(addr.0));
                    self.polling = Some((addr, until));
                }
            }
        }
    }

    fn deliver(&mut self, _seq: SeqNum, value: u64) {
        let Some((addr, until)) = self.polling else {
            return;
        };
        if value == until {
            self.polling = None;
        } else {
            let backoff = self.jitter.gen_range(4..=32);
            self.queue.push_back(Instr::Delay(backoff));
            self.queue.push_back(Instr::load(addr.0));
        }
    }

    fn transactions(&self) -> u64 {
        u64::from(self.done)
    }

    fn clone_box(&self) -> Box<dyn InstrStream + Send> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for LitmusStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LitmusStream")
            .field("pos", &self.pos)
            .field("polling", &self.polling)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

/// Builds the per-thread streams for a litmus run. `threads` may exceed
/// the shape's arity (extra threads run empty programs and finish
/// immediately) so a litmus workload fits any system size.
pub fn build_litmus_streams(
    test: LitmusTest,
    threads: usize,
    perturbation: u64,
) -> Vec<Box<dyn InstrStream + Send>> {
    (0..threads)
        .map(|tid| {
            let p = dvmc_types::rng::derive_seed(perturbation, tid as u64);
            Box::new(LitmusStream::new(test, tid, p)) as Box<dyn InstrStream + Send>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forbidden_matches_the_tables() {
        use Model::{Pso, Rmo, Sc, Tso};
        // SB: only SC forbids (Store→Load).
        assert!(LitmusTest::Sb.forbidden(Sc));
        for m in [Tso, Pso, Rmo] {
            assert!(!LitmusTest::Sb.forbidden(m));
        }
        // MP: SC and TSO forbid; PSO relaxes Store→Store, RMO everything.
        assert!(LitmusTest::Mp.forbidden(Sc));
        assert!(LitmusTest::Mp.forbidden(Tso));
        assert!(!LitmusTest::Mp.forbidden(Pso));
        assert!(!LitmusTest::Mp.forbidden(Rmo));
        // LB: Load→Store holds everywhere except RMO.
        for m in [Sc, Tso, Pso] {
            assert!(LitmusTest::Lb.forbidden(m));
        }
        assert!(!LitmusTest::Lb.forbidden(Rmo));
        // IRIW: Load→Load holds everywhere except RMO.
        for m in [Sc, Tso, Pso] {
            assert!(LitmusTest::Iriw.forbidden(m));
        }
        assert!(!LitmusTest::Iriw.forbidden(Rmo));
        // CoRR: coherence is model-independent.
        for m in Model::ALL {
            assert!(LitmusTest::Corr.forbidden(m));
        }
        // S: needs Store→Store and Load→Store — SC and TSO.
        assert!(LitmusTest::S.forbidden(Sc));
        assert!(LitmusTest::S.forbidden(Tso));
        assert!(!LitmusTest::S.forbidden(Pso));
        assert!(!LitmusTest::S.forbidden(Rmo));
        // R: needs Store→Store and Store→Load — SC only.
        assert!(LitmusTest::R.forbidden(Sc));
        for m in [Tso, Pso, Rmo] {
            assert!(!LitmusTest::R.forbidden(m));
        }
        // 2+2W: needs Store→Store — SC and TSO.
        assert!(LitmusTest::TwoPlusTwoW.forbidden(Sc));
        assert!(LitmusTest::TwoPlusTwoW.forbidden(Tso));
        assert!(!LitmusTest::TwoPlusTwoW.forbidden(Pso));
        assert!(!LitmusTest::TwoPlusTwoW.forbidden(Rmo));
        // Per-location shapes: forbidden everywhere.
        for m in Model::ALL {
            assert!(LitmusTest::CoWw.forbidden(m));
            assert!(LitmusTest::CoRw1.forbidden(m));
        }
    }

    #[test]
    fn streams_terminate_when_driven() {
        // Drive each thread standalone, answering every poll with the
        // awaited value: the program must drain.
        for test in LitmusTest::ALL {
            for tid in 0..test.threads() {
                let mut s = LitmusStream::new(test, tid, 7);
                let mut safety = 10_000;
                loop {
                    safety -= 1;
                    assert!(safety > 0, "{test} t{tid} made no progress");
                    match s.next() {
                        Fetch::Instr(_) => {}
                        Fetch::AwaitLast => {
                            let (_, until) = s.polling.expect("awaiting implies polling");
                            s.deliver(SeqNum(0), until);
                        }
                        Fetch::Done => break,
                    }
                }
                assert_eq!(s.transactions(), 1);
            }
        }
    }

    #[test]
    fn poll_retries_until_value_arrives() {
        let mut s = LitmusStream::new(LitmusTest::Mp, 1, 3);
        // Drain up to the poll.
        let mut polled = false;
        for _ in 0..100 {
            match s.next() {
                Fetch::Instr(_) => {}
                Fetch::AwaitLast => {
                    polled = true;
                    break;
                }
                Fetch::Done => panic!("finished before polling"),
            }
        }
        assert!(polled);
        // Deliver the wrong value: the stream must re-issue the load.
        s.deliver(SeqNum(0), 0);
        let mut reloads = 0;
        for _ in 0..10 {
            match s.next() {
                Fetch::Instr(Instr::Mem { .. }) => {
                    reloads += 1;
                    break;
                }
                Fetch::Instr(_) => {}
                other => panic!("expected a reload, got {other:?}"),
            }
        }
        assert_eq!(reloads, 1);
    }

    #[test]
    fn extra_threads_run_empty_programs() {
        let streams = build_litmus_streams(LitmusTest::Sb, 4, 9);
        assert_eq!(streams.len(), 4);
        let mut s = LitmusStream::new(LitmusTest::Sb, 3, 9);
        assert_eq!(s.next(), Fetch::Done);
    }

    #[test]
    fn relaxed_outcome_evaluation() {
        // SB: both final loads zero.
        assert!(LitmusTest::Sb.relaxed_observed(&[vec![9, 9, 0], vec![9, 9, 0]]));
        assert!(!LitmusTest::Sb.relaxed_observed(&[vec![0], vec![1]]));
        // MP: stale x after the poll observed y==1.
        assert!(LitmusTest::Mp.relaxed_observed(&[vec![], vec![0, 1, 0]]));
        assert!(!LitmusTest::Mp.relaxed_observed(&[vec![], vec![0, 1, 1]]));
        // CoRR: non-monotone read sequence.
        assert!(LitmusTest::Corr.relaxed_observed(&[vec![], vec![0, 2, 1, 4]]));
        assert!(!LitmusTest::Corr.relaxed_observed(&[vec![], vec![0, 2, 2, 4]]));
        // S: the observer's final x is 2 (t1's store lost).
        assert!(LitmusTest::S.relaxed_observed(&[vec![], vec![0, 1], vec![0, 1, 2]]));
        assert!(!LitmusTest::S.relaxed_observed(&[vec![], vec![1], vec![1, 1]]));
        // R: t1 missed x while its y won.
        assert!(LitmusTest::R.relaxed_observed(&[vec![], vec![0, 0], vec![1, 1, 2]]));
        assert!(!LitmusTest::R.relaxed_observed(&[vec![], vec![0, 1], vec![1, 1, 2]]));
        assert!(!LitmusTest::R.relaxed_observed(&[vec![], vec![0, 0], vec![1, 1, 1]]));
        // 2+2W: both first stores won (observer reads x then y last).
        assert!(LitmusTest::TwoPlusTwoW.relaxed_observed(&[vec![], vec![], vec![1, 1, 1, 1]]));
        assert!(!LitmusTest::TwoPlusTwoW.relaxed_observed(&[vec![], vec![], vec![1, 1, 2, 1]]));
        // CoWW: the observer must see the younger store's value.
        assert!(LitmusTest::CoWw.relaxed_observed(&[vec![], vec![0, 1, 1]]));
        assert!(!LitmusTest::CoWw.relaxed_observed(&[vec![], vec![0, 1, 2]]));
        // CoRW1: the load saw its own future store.
        assert!(LitmusTest::CoRw1.relaxed_observed(&[vec![1]]));
        assert!(!LitmusTest::CoRw1.relaxed_observed(&[vec![0]]));
    }

    #[test]
    fn jitter_varies_with_perturbation_only() {
        let collect = |p: u64| {
            let mut s = LitmusStream::new(LitmusTest::Sb, 0, p);
            let mut v = Vec::new();
            loop {
                match s.next() {
                    Fetch::Instr(i) => v.push(format!("{i:?}")),
                    Fetch::AwaitLast => s.deliver(SeqNum(0), 0),
                    Fetch::Done => break,
                }
            }
            v
        };
        assert_eq!(collect(5), collect(5), "same perturbation, same program");
        let a = collect(5);
        let b = collect(6);
        // The memory operations are identical; only delays may differ.
        let mems = |v: &[String]| {
            v.iter().filter(|s| s.contains("Mem")).cloned().collect::<Vec<_>>()
        };
        assert_eq!(mems(&a), mems(&b), "program structure is fixed");
    }
}
