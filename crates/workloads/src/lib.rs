//! # Synthetic commercial workloads
//!
//! Stand-ins for the Wisconsin Commercial Workload Suite (Table 8), which
//! is proprietary. Each workload reproduces the sharing, locking, and
//! transaction structure the paper attributes to the original (see
//! DESIGN.md for the substitution argument):
//!
//! | name     | character                                            |
//! |----------|------------------------------------------------------|
//! | `apache` | static web serving: read-mostly, moderate locking    |
//! | `oltp`   | TPC-C-like: short read/write txns on contended rows  |
//! | `jbb`    | SPECjbb-like: mostly-private object churn            |
//! | `slash`  | slashcode: a few *highly* contended locks, high variance |
//! | `barnes` | SPLASH-2 Barnes-Hut: barrier-phased scientific sharing |
//!
//! All workloads are built from [`txn::TxnStream`], a lock-based
//! transaction generator implementing test-and-test-and-set spin locks,
//! critical sections over lock-protected rows, release barriers as the
//! consistency model requires, and sense-reversing barrier phases for
//! `barnes`. Progress is measured in completed transactions (§6.2 runs a
//! fixed transaction count; `barnes` runs its phases to completion).
//!
//! Runs are deterministic functions of the seed; §5's ten perturbed runs
//! derive per-run seeds via `dvmc_types::rng::perturbation_seed`.

pub mod fuzz;
pub mod layout;
pub mod litmus;
pub mod service;
pub mod spec;
pub mod txn;

pub use fuzz::{
    build_fuzz_streams, build_fuzz_streams_with, generate as generate_fuzz_program,
    generate_with as generate_fuzz_program_with, AddrMix, FuzzProgram,
};
pub use layout::Layout;
pub use litmus::{build_litmus_streams, LitmusStream, LitmusTest};
pub use service::ServiceStream;
pub use spec::{build_streams, Profile, WorkloadKind, WorkloadParams};
pub use txn::TxnStream;
