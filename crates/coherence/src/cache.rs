//! Set-associative cache arrays with real data and a modelled ECC.
//!
//! Every line stores its 64-byte block *and* a CRC-16 "ECC" that is updated
//! on legitimate writes only. Fault injection flips data bits without
//! touching the ECC; the next access or writeback detects the mismatch —
//! modelling the paper's requirement of ECC on all cache lines and memory
//! ("to ensure that the data block does not change unless it is written by
//! a store"; Cache Correctness, Definition 2).

use dvmc_types::{Block, BlockAddr};

/// MOSI stable states for L2 lines (Invalid lines are simply absent).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mosi {
    /// Modified: exclusive, dirty.
    M,
    /// Owned: shared, dirty, responsible for supplying data.
    O,
    /// Shared: read-only copy.
    S,
}

impl Mosi {
    /// Whether the state permits local stores.
    pub fn writable(self) -> bool {
        self == Mosi::M
    }

    /// Whether the node must write back / supply data (dirty states).
    pub fn dirty(self) -> bool {
        matches!(self, Mosi::M | Mosi::O)
    }
}

/// A cache line with state tag `S`.
#[derive(Clone, Debug)]
pub struct Line<S> {
    /// The cached block address.
    pub addr: BlockAddr,
    /// The block data.
    pub data: Block,
    /// Modelled ECC: CRC-16 of the data at the last legitimate write.
    pub ecc: u16,
    /// Protocol state.
    pub state: S,
    last_used: u64,
}

impl<S> Line<S> {
    /// Whether the stored data still matches its ECC.
    pub fn ecc_ok(&self) -> bool {
        self.data.hash() == self.ecc
    }
}

/// A set-associative, LRU-replacement cache array.
#[derive(Clone, Debug)]
pub struct CacheArray<S> {
    sets: usize,
    ways: usize,
    lines: Vec<Option<Line<S>>>,
    tick: u64,
}

impl<S> CacheArray<S> {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or if `sets` is not a power of
    /// two.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheArray {
            sets,
            ways,
            lines: (0..sets * ways).map(|_| None).collect(),
            tick: 0,
        }
    }

    /// Convenience constructor from a total size in bytes (64-byte lines).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`new`](Self::new)).
    pub fn with_bytes(total_bytes: usize, ways: usize) -> Self {
        let lines = (total_bytes / 64).max(ways);
        Self::new((lines / ways).next_power_of_two(), ways)
    }

    fn set_range(&self, addr: BlockAddr) -> std::ops::Range<usize> {
        let set = (addr.0 as usize) & (self.sets - 1);
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up `addr`, updating LRU on hit.
    #[allow(clippy::manual_inspect)]
    pub fn lookup_mut(&mut self, addr: BlockAddr) -> Option<&mut Line<S>> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(addr);
        self.lines[range]
            .iter_mut()
            .flatten()
            .find(|l| l.addr == addr)
            .map(|l| {
                l.last_used = tick;
                l
            })
    }

    /// Looks up `addr` without touching LRU state.
    pub fn peek(&self, addr: BlockAddr) -> Option<&Line<S>> {
        let range = self.set_range(addr);
        self.lines[range].iter().flatten().find(|l| l.addr == addr)
    }

    /// Inserts a line, evicting the LRU way of the set if full. Returns the
    /// evicted line, if any.
    ///
    /// # Panics
    ///
    /// Panics if a line for `addr` is already present (protocol bug).
    pub fn insert(&mut self, addr: BlockAddr, data: Block, state: S) -> Option<Line<S>> {
        self.insert_pinned(addr, data, state, |_| false)
    }

    /// Like [`CacheArray::insert`], but victim selection skips lines for
    /// which `pinned` returns true. A line with an in-flight transaction
    /// (e.g. an upgrade whose request is already on the network) must not
    /// be victimized: the eviction's writeback races the transaction's
    /// grant and strands both state machines. Falls back to plain LRU if
    /// every occupied way in the set is pinned.
    ///
    /// # Panics
    ///
    /// Panics if a line for `addr` is already present (protocol bug).
    pub fn insert_pinned(
        &mut self,
        addr: BlockAddr,
        data: Block,
        state: S,
        pinned: impl Fn(BlockAddr) -> bool,
    ) -> Option<Line<S>> {
        assert!(
            self.peek(addr).is_none(),
            "insert of already-present line {addr}"
        );
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(addr);
        let new_line = Line {
            addr,
            ecc: data.hash(),
            data,
            state,
            last_used: tick,
        };
        // Prefer an empty way.
        if let Some(slot) = self.lines[range.clone()].iter_mut().find(|l| l.is_none()) {
            *slot = Some(new_line);
            return None;
        }
        // Evict the least recently used unpinned way.
        let victim_idx = range
            .clone()
            .filter(|&i| {
                self.lines[i]
                    .as_ref()
                    .is_some_and(|l| !pinned(l.addr))
            })
            .min_by_key(|&i| self.lines[i].as_ref().map_or(0, |l| l.last_used))
            .or_else(|| {
                range
                    .clone()
                    .min_by_key(|&i| self.lines[i].as_ref().map_or(0, |l| l.last_used))
            })
            .expect("non-empty set range");
        self.lines[victim_idx].replace(new_line)
    }

    /// Removes and returns the line for `addr`.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<Line<S>> {
        let range = self.set_range(addr);
        for i in range {
            if self.lines[i].as_ref().is_some_and(|l| l.addr == addr) {
                return self.lines[i].take();
            }
        }
        None
    }

    /// Writes a word with ECC maintenance (a legitimate store).
    ///
    /// Returns `false` if the line is absent.
    pub fn write_word(&mut self, addr: BlockAddr, offset: usize, value: u64) -> bool {
        match self.lookup_mut(addr) {
            Some(line) => {
                line.data.set_word(offset, value);
                line.ecc = line.data.hash();
                true
            }
            None => false,
        }
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.lines.iter().flatten().count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of sets (conflict classes). Blocks whose addresses map to
    /// the same set index compete for the same ways; the analyzer's
    /// symmetry reduction uses this to decide whether the blocks in play
    /// are conflict-interchangeable.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Iterates over resident lines.
    pub fn iter(&self) -> impl Iterator<Item = &Line<S>> {
        self.lines.iter().flatten()
    }

    /// Flips one data bit of the `idx`-th resident line (modulo residency)
    /// *without* updating the ECC — the fault-injection entry point.
    /// Returns the affected block address, or `None` if the cache is empty.
    pub fn corrupt_resident_line(&mut self, idx: usize, bit: usize) -> Option<BlockAddr> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let target = idx % n;
        let line = self.lines.iter_mut().flatten().nth(target)?;
        line.data.flip_bit(bit % 512);
        Some(line.addr)
    }

    /// Flips one data bit of the most-recently-used resident line without
    /// updating the ECC. Hot lines manifest corruption quickly, matching
    /// the §6.1 methodology where every injected error is soon observed.
    pub fn corrupt_mru_line(&mut self, bit: usize) -> Option<BlockAddr> {
        let line = self
            .lines
            .iter_mut()
            .flatten()
            .max_by_key(|l| l.last_used)?;
        line.data.flip_bit(bit % 512);
        Some(line.addr)
    }

    /// Resident block addresses ordered most-recently-used first.
    pub fn addrs_by_recency(&self) -> Vec<BlockAddr> {
        let mut v: Vec<(u64, BlockAddr)> = self
            .lines
            .iter()
            .flatten()
            .map(|l| (l.last_used, l.addr))
            .collect();
        v.sort_unstable_by_key(|&(t, _)| std::cmp::Reverse(t));
        v.into_iter().map(|(_, a)| a).collect()
    }

    /// Flips one data bit of the line for `addr` without updating ECC.
    pub fn corrupt_addr(&mut self, addr: BlockAddr, bit: usize) -> bool {
        match self.lookup_mut(addr) {
            Some(l) => {
                l.data.flip_bit(bit % 512);
                true
            }
            None => false,
        }
    }

    /// Flips one data bit of the most-recently-used line matching `pred`
    /// (fault targeting by protocol state); falls back to the overall MRU
    /// line.
    pub fn corrupt_mru_line_where(
        &mut self,
        bit: usize,
        pred: impl Fn(&S) -> bool,
    ) -> Option<BlockAddr> {
        let line = self
            .lines
            .iter_mut()
            .flatten()
            .filter(|l| pred(&l.state))
            .max_by_key(|l| l.last_used);
        match line {
            Some(l) => {
                l.data.flip_bit(bit % 512);
                Some(l.addr)
            }
            None => self.corrupt_mru_line(bit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_block(seed: u64) -> Block {
        let mut b = Block::ZERO;
        for i in 0..8 {
            b.set_word(i, seed.wrapping_mul(i as u64 + 1));
        }
        b
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c: CacheArray<Mosi> = CacheArray::new(4, 2);
        assert!(c.insert(BlockAddr(5), filled_block(1), Mosi::S).is_none());
        let line = c.lookup_mut(BlockAddr(5)).unwrap();
        assert_eq!(line.state, Mosi::S);
        assert!(line.ecc_ok());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let mut c: CacheArray<()> = CacheArray::new(1, 2);
        c.insert(BlockAddr(1), Block::ZERO, ());
        c.insert(BlockAddr(2), Block::ZERO, ());
        // Touch 1 so 2 becomes LRU.
        c.lookup_mut(BlockAddr(1));
        let evicted = c.insert(BlockAddr(3), Block::ZERO, ()).unwrap();
        assert_eq!(evicted.addr, BlockAddr(2));
        assert!(c.peek(BlockAddr(1)).is_some());
        assert!(c.peek(BlockAddr(3)).is_some());
    }

    #[test]
    fn empty_way_used_before_eviction() {
        let mut c: CacheArray<()> = CacheArray::new(1, 4);
        for i in 0..4 {
            assert!(c.insert(BlockAddr(i), Block::ZERO, ()).is_none());
        }
        assert!(c.insert(BlockAddr(10), Block::ZERO, ()).is_some());
    }

    #[test]
    #[should_panic(expected = "already-present")]
    fn double_insert_panics() {
        let mut c: CacheArray<()> = CacheArray::new(2, 2);
        c.insert(BlockAddr(1), Block::ZERO, ());
        c.insert(BlockAddr(1), Block::ZERO, ());
    }

    #[test]
    fn write_word_maintains_ecc() {
        let mut c: CacheArray<Mosi> = CacheArray::new(2, 2);
        c.insert(BlockAddr(1), filled_block(3), Mosi::M);
        assert!(c.write_word(BlockAddr(1), 4, 0xFEED));
        let line = c.peek(BlockAddr(1)).unwrap();
        assert_eq!(line.data.word(4), 0xFEED);
        assert!(line.ecc_ok());
        assert!(!c.write_word(BlockAddr(99), 0, 1), "absent line");
    }

    #[test]
    fn corruption_breaks_ecc_until_rewritten() {
        let mut c: CacheArray<Mosi> = CacheArray::new(2, 2);
        c.insert(BlockAddr(1), filled_block(3), Mosi::M);
        let hit = c.corrupt_resident_line(0, 77).unwrap();
        assert_eq!(hit, BlockAddr(1));
        assert!(!c.peek(BlockAddr(1)).unwrap().ecc_ok());
        // A legitimate write recomputes the ECC over the (corrupt) data —
        // ECC only guarantees data didn't change *without* a store.
        c.write_word(BlockAddr(1), 0, 5);
        assert!(c.peek(BlockAddr(1)).unwrap().ecc_ok());
    }

    #[test]
    fn corrupt_empty_cache_is_none() {
        let mut c: CacheArray<()> = CacheArray::new(2, 2);
        assert_eq!(c.corrupt_resident_line(3, 9), None);
    }

    #[test]
    fn with_bytes_geometry() {
        let c: CacheArray<()> = CacheArray::with_bytes(64 * 1024, 4);
        assert_eq!(c.capacity(), 1024, "64 KB of 64-byte lines");
        let c2: CacheArray<()> = CacheArray::with_bytes(1024 * 1024, 4);
        assert_eq!(c2.capacity(), 16384, "1 MB of 64-byte lines");
    }

    #[test]
    fn remove_returns_line() {
        let mut c: CacheArray<Mosi> = CacheArray::new(2, 2);
        c.insert(BlockAddr(1), filled_block(1), Mosi::O);
        let line = c.remove(BlockAddr(1)).unwrap();
        assert_eq!(line.state, Mosi::O);
        assert!(c.remove(BlockAddr(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn mosi_predicates() {
        assert!(Mosi::M.writable() && Mosi::M.dirty());
        assert!(!Mosi::O.writable() && Mosi::O.dirty());
        assert!(!Mosi::S.writable() && !Mosi::S.dirty());
    }
}
