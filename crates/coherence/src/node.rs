//! The per-node cache controller: private L1 + L2, MSHRs, and the
//! protocol engine for both the directory and snooping MOSI protocols.
//!
//! The controller also hosts the node-side half of the coherence checker
//! (the CET, §4.3): it checks rule 1 on every performed access, begins and
//! ends epochs on permission transitions, and emits Inform-Epoch messages
//! to the block's home when epochs end.

use crate::cache::{CacheArray, Line, Mosi};
use crate::msg::{AddrReq, Msg, Outbound, SnoopKind};
use crate::proc::{CacheStats, ProcReq, ProcResp};
use dvmc_core::coherence::{CacheEpochTable, EpochKind};
use dvmc_core::violation::{CoherenceViolation, Violation};
use dvmc_types::{Block, BlockAddr, Cycle, NodeId, Ts16};
use std::collections::{HashMap, VecDeque};

/// Which coherence protocol the system runs (Table 6 configures both).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protocol {
    /// MOSI directory protocol over the unordered torus.
    Directory,
    /// MOSI snooping protocol over the ordered broadcast tree.
    Snooping,
}

/// Cache-controller configuration (Table 6 defaults).
#[derive(Clone, Copy, Debug)]
pub struct NodeConfig {
    /// Number of nodes in the system.
    pub nodes: usize,
    /// L1 data cache size in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 cache size in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// Additional L2 hit latency in cycles.
    pub l2_latency: u32,
    /// Cache requests accepted per cycle (port count).
    pub ports: u32,
    /// Whether the coherence checker (CET + informs) is active.
    pub verify: bool,
    /// Directory logical time: cycles per logical tick, as a shift.
    pub lt_shift: u32,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            nodes: 8,
            l1_bytes: 64 * 1024,
            l1_ways: 4,
            l2_bytes: 1024 * 1024,
            l2_ways: 4,
            l1_latency: 2,
            l2_latency: 8,
            ports: 2,
            verify: true,
            lt_shift: 4,
        }
    }
}

#[derive(Clone, Debug)]
struct Mshr {
    waiting: Vec<ProcReq>,
    /// Whether the in-flight request is a GetM.
    exclusive: bool,
    /// Snooping: our own request has been observed on the address network.
    observed: bool,
    /// Snooping: data that arrived before our own request was observed;
    /// it must not be used until the observation (ordering) point.
    stashed: Option<(Block, Mosi)>,
    /// Snooping: conflicting requests ordered after ours but observed
    /// while our data was still in flight (kind, requester, their order).
    /// We are the logical owner at their ordering points, so we must
    /// serve them once our data arrives.
    obligations: Vec<(SnoopKind, NodeId, u64)>,
    /// Snooping: the request is held back until our pending writeback of
    /// the same block passes its ordering point.
    deferred: bool,
    /// Snooping: the address-network order of our observed request.
    order: u64,
    /// Snooping: data that arrived early, tagged with its request order.
    stashed_order: u64,
}

#[derive(Clone, Debug)]
struct EvictBuf {
    data: Block,
    state: Mosi,
}

/// The externally visible shape of one in-flight MSHR, exposed for the
/// analyzer's transient-state audit. The flag combination identifies the
/// transient protocol state the controller occupies (e.g. snooping
/// `exclusive && !observed` is IM_AD: GetM issued, not yet ordered).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MshrView {
    /// The in-flight request is a GetM.
    pub exclusive: bool,
    /// Snooping: our request has passed its ordering point.
    pub observed: bool,
    /// Snooping: data arrived before the ordering point and is stashed.
    pub stashed: bool,
    /// Snooping: held back behind our own pending writeback.
    pub deferred: bool,
    /// Snooping: we owe data to conflicting requests ordered after ours.
    pub has_obligations: bool,
}

/// The per-node cache controller.
#[derive(Clone)]
pub struct CacheNode {
    id: NodeId,
    cfg: NodeConfig,
    protocol: Protocol,
    l1: CacheArray<()>,
    l2: CacheArray<Mosi>,
    cet: CacheEpochTable,
    mshrs: HashMap<BlockAddr, Mshr>,
    evicting: HashMap<BlockAddr, EvictBuf>,
    proc_in: VecDeque<(Cycle, ProcReq)>,
    resp_out: Vec<(Cycle, ProcResp)>,
    msg_out: VecDeque<Outbound>,
    addr_out: VecDeque<AddrReq>,
    inbox: VecDeque<Msg>,
    snoop_in: VecDeque<(u64, AddrReq)>,
    invalidated: Vec<BlockAddr>,
    violations: Vec<Violation>,
    stats: CacheStats,
    last_order: u64,
    now: Cycle,
}

impl CacheNode {
    /// Creates a cache controller for `id` under `protocol`.
    pub fn new(id: NodeId, protocol: Protocol, cfg: NodeConfig) -> Self {
        CacheNode {
            id,
            protocol,
            l1: CacheArray::with_bytes(cfg.l1_bytes, cfg.l1_ways),
            l2: CacheArray::with_bytes(cfg.l2_bytes, cfg.l2_ways),
            cet: CacheEpochTable::new(id),
            mshrs: HashMap::new(),
            evicting: HashMap::new(),
            proc_in: VecDeque::new(),
            resp_out: Vec::new(),
            msg_out: VecDeque::new(),
            addr_out: VecDeque::new(),
            inbox: VecDeque::new(),
            snoop_in: VecDeque::new(),
            invalidated: Vec::new(),
            violations: Vec::new(),
            stats: CacheStats::default(),
            last_order: 0,
            cfg,
            now: 0,
        }
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current logical time: a slow physical clock for the directory
    /// protocol, the address-network order for snooping (§4.3).
    fn logical_now(&self) -> Ts16 {
        match self.protocol {
            Protocol::Directory => Ts16::from_full(self.now >> self.cfg.lt_shift),
            Protocol::Snooping => Ts16::from_full(self.last_order),
        }
    }

    /// Queues a processor request (visible after the L1 access latency).
    pub fn submit(&mut self, req: ProcReq) {
        self.proc_in
            .push_back((self.now + self.cfg.l1_latency as u64, req));
    }

    /// Delivers a point-to-point protocol message.
    pub fn deliver(&mut self, msg: Msg) {
        self.inbox.push_back(msg);
    }

    /// Delivers an ordered snoop (snooping protocol only).
    pub fn deliver_snoop(&mut self, order: u64, req: AddrReq) {
        self.snoop_in.push_back((order, req));
    }

    /// Pops a completed processor response.
    pub fn pop_resp(&mut self) -> Option<ProcResp> {
        let now = self.now;
        let idx = self.resp_out.iter().position(|&(t, _)| t <= now)?;
        Some(self.resp_out.swap_remove(idx).1)
    }

    /// Pops an outbound point-to-point message.
    pub fn pop_msg(&mut self) -> Option<Outbound> {
        self.msg_out.pop_front()
    }

    /// Pops an outbound address-network request (snooping).
    pub fn pop_addr_req(&mut self) -> Option<AddrReq> {
        self.addr_out.pop_front()
    }

    /// Drains blocks invalidated by remote writers since the last call
    /// (drives load-order mis-speculation squashes, §4.1).
    pub fn drain_invalidated(&mut self) -> Vec<BlockAddr> {
        std::mem::take(&mut self.invalidated)
    }

    /// Drains detected violations.
    pub fn drain_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Controller statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The CET (for tests and cost accounting).
    pub fn cet(&self) -> &CacheEpochTable {
        &self.cet
    }

    /// Attaches a bounded event ring to the CET (observability; disabled
    /// by default).
    pub fn enable_obs(&mut self, capacity: usize) {
        self.cet.enable_obs(capacity);
    }

    /// The CET's event ring, if enabled.
    pub fn obs(&self) -> Option<&dvmc_core::ObsRing> {
        self.cet.obs()
    }

    /// One-line internal state dump for debugging stuck systems.
    pub fn dump(&self) -> String {
        format!(
            "mshrs={:?} evicting={:?} proc_in={} snoop_in={}",
            self.mshrs
                .iter()
                .map(|(a, m)| (*a, m.observed, m.deferred, m.waiting.len()))
                .collect::<Vec<_>>(),
            self.evicting.keys().collect::<Vec<_>>(),
            self.proc_in.len(),
            self.snoop_in.len(),
        )
    }

    /// Whether the controller has no in-flight transactions or queued work.
    pub fn is_quiescent(&self) -> bool {
        self.mshrs.is_empty()
            && self.evicting.is_empty()
            && self.proc_in.is_empty()
            && self.resp_out.is_empty()
            && self.inbox.is_empty()
            && self.snoop_in.is_empty()
            && self.msg_out.is_empty()
            && self.addr_out.is_empty()
    }

    /// The L2-resident blocks and their MOSI states, sorted by address —
    /// the observable the analyzer's SWMR invariant quantifies over.
    pub fn probe_l2_states(&self) -> Vec<(BlockAddr, Mosi)> {
        let mut v: Vec<(BlockAddr, Mosi)> = self.l2.iter().map(|l| (l.addr, l.state)).collect();
        v.sort_by_key(|&(a, _)| a);
        v
    }

    /// The blocks sitting in the eviction (writeback) buffer, sorted.
    pub fn probe_evicting(&self) -> Vec<(BlockAddr, Mosi)> {
        let mut v: Vec<(BlockAddr, Mosi)> = self
            .evicting
            .iter()
            .map(|(a, b)| (*a, b.state))
            .collect();
        v.sort_by_key(|&(a, _)| a);
        v
    }

    /// Appends a canonical, deterministic digest of all protocol-relevant
    /// controller state (caches, MSHRs, buffers, queues) for the static
    /// analyzer's state-graph fingerprinting, relabeled through `r` on
    /// the fly (sorted collections are re-sorted under the relabeled
    /// keys, so the stream equals the plain digest of the permuted
    /// controller). Wall-clock time, statistics, and checker internals
    /// are excluded; the analyzer runs with zero latencies and
    /// verification off, so none of those affect behavior.
    ///
    /// Unordered-queue caveat: FIFO contents (inbox, outbox, waiting
    /// lists) are emitted in their literal order, which the analyzer only
    /// fingerprints at settled states where those queues are empty or
    /// were filled in explicit action order — both permutation-stable.
    pub fn probe_digest(&self, r: &crate::probe::Relabel, out: &mut Vec<u64>) {
        use crate::probe::{encode_addr_req, encode_msg, encode_proc_req, mosi_code, snoop_kind_code};
        out.extend([0xD16E57, r.node(self.id).index() as u64, self.last_order]);

        let mut lines: Vec<&Line<Mosi>> = self.l2.iter().collect();
        lines.sort_by_key(|l| r.block(l.addr));
        out.push(lines.len() as u64);
        for l in lines {
            out.extend([r.block(l.addr).0, mosi_code(l.state), u64::from(l.ecc)]);
            out.extend_from_slice(l.data.words());
        }

        let mut l1_addrs: Vec<BlockAddr> = self.l1.iter().map(|l| r.block(l.addr)).collect();
        l1_addrs.sort_unstable();
        out.push(l1_addrs.len() as u64);
        out.extend(l1_addrs.iter().map(|a| a.0));

        let mut mshrs: Vec<(&BlockAddr, &Mshr)> = self.mshrs.iter().collect();
        mshrs.sort_by_key(|(a, _)| r.block(**a));
        out.push(mshrs.len() as u64);
        for (addr, m) in mshrs {
            out.extend([
                r.block(*addr).0,
                u64::from(m.exclusive),
                u64::from(m.observed),
                u64::from(m.deferred),
                m.order,
                m.stashed_order,
            ]);
            match &m.stashed {
                Some((data, state)) => {
                    out.extend([1, mosi_code(*state)]);
                    out.extend_from_slice(data.words());
                }
                None => out.push(0),
            }
            out.push(m.obligations.len() as u64);
            for (kind, node, order) in &m.obligations {
                out.extend([snoop_kind_code(*kind), r.node(*node).index() as u64, *order]);
            }
            out.push(m.waiting.len() as u64);
            for req in &m.waiting {
                encode_proc_req(req, r, out);
            }
        }

        let mut evicting: Vec<(&BlockAddr, &EvictBuf)> = self.evicting.iter().collect();
        evicting.sort_by_key(|(a, _)| r.block(**a));
        out.push(evicting.len() as u64);
        for (addr, buf) in evicting {
            out.extend([r.block(*addr).0, mosi_code(buf.state)]);
            out.extend_from_slice(buf.data.words());
        }

        out.push(self.proc_in.len() as u64);
        for (_, req) in &self.proc_in {
            encode_proc_req(req, r, out);
        }
        out.push(self.resp_out.len() as u64);
        for (_, resp) in &self.resp_out {
            out.extend([resp.id, resp.value]);
        }
        out.push(self.inbox.len() as u64);
        for msg in &self.inbox {
            encode_msg(msg, r, out);
        }
        out.push(self.msg_out.len() as u64);
        for o in &self.msg_out {
            out.push(r.dst(o.dst, &o.msg).index() as u64);
            encode_msg(&o.msg, r, out);
        }
        out.push(self.addr_out.len() as u64);
        for req in &self.addr_out {
            encode_addr_req(req, r, out);
        }
        out.push(self.snoop_in.len() as u64);
        for (order, req) in &self.snoop_in {
            out.push(*order);
            encode_addr_req(req, r, out);
        }
    }

    /// A flag view of the in-flight MSHRs, for the analyzer's
    /// transient-state audit (which transient controller states — IS_D,
    /// IM_AD, and friends — were actually occupied in a reachable state).
    pub fn probe_mshrs(&self) -> Vec<MshrView> {
        self.mshrs
            .values()
            .map(|m| MshrView {
                exclusive: m.exclusive,
                observed: m.observed,
                stashed: m.stashed.is_some(),
                deferred: m.deferred,
                has_obligations: !m.obligations.is_empty(),
            })
            .collect()
    }

    /// Fault injection: flips a data bit in a resident L2 line without
    /// updating ECC. `idx` selects (modulo the candidate count, in
    /// recency order) among *shared* lines whose block is not shadowed by
    /// a clean L1 copy — live, actively read state whose ECC is not about
    /// to be re-encoded by a store — so the error manifests the way the
    /// paper's hot-working-set injections do. Falls back to the MRU S/O
    /// line, then to the overall MRU line, when no unshadowed candidate
    /// exists. Returns the corrupted block.
    pub fn corrupt_l2(&mut self, idx: usize, bit: usize) -> Option<BlockAddr> {
        let candidates: Vec<BlockAddr> = self
            .l2
            .addrs_by_recency()
            .into_iter()
            .filter(|a| {
                self.l1.peek(*a).is_none()
                    && self
                        .l2
                        .peek(*a)
                        .is_some_and(|l| matches!(l.state, Mosi::S | Mosi::O))
            })
            .collect();
        if !candidates.is_empty() {
            let addr = candidates[idx % candidates.len()];
            self.l2.corrupt_addr(addr, bit);
            return Some(addr);
        }
        self.l2
            .corrupt_mru_line_where(bit, |s| matches!(s, Mosi::S | Mosi::O))
    }

    /// Fault injection: silently upgrades a Shared line to Modified
    /// without a GetM — a cache-controller state error that breaks SWMR.
    /// The faulted "decision" is the one a real controller gets wrong:
    /// a store is queued against a Shared line, and instead of issuing
    /// the GetM upgrade the controller proceeds as if ownership were
    /// already granted. Targeting a store-bound line makes the error
    /// manifest (the paper injects manifest errors); with no such store
    /// queued the injection does not take and the caller retries.
    /// `idx` breaks ties among several store-bound candidates. Returns
    /// the upgraded block.
    pub fn corrupt_upgrade(&mut self, idx: usize) -> Option<BlockAddr> {
        let target = {
            let candidates: Vec<BlockAddr> = self
                .proc_in
                .iter()
                .filter(|(_, r)| r.is_write())
                .map(|(_, r)| r.addr().block())
                .filter(|b| {
                    !self.mshrs.contains_key(b)
                        && self.l2.peek(*b).is_some_and(|l| l.state == Mosi::S)
                })
                .collect();
            if candidates.is_empty() {
                return None;
            }
            candidates[idx % candidates.len()]
        };
        if let Some(line) = self.l2.lookup_mut(target) {
            line.state = Mosi::M;
        }
        Some(target)
    }

    /// Advances the controller one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.now = now;
        if let Some(o) = self.cet.obs_mut() {
            o.set_now(now);
        }
        self.process_snoops();
        self.process_inbox();
        self.process_proc();
    }

    /// Re-stamps the controller's clock as if it had ticked idly up to
    /// `now` — exactly the state a quiescent [`tick`](Self::tick) leaves
    /// behind (a quiescent tick only stamps clocks; the processing phases
    /// find every queue empty). The event-scheduled kernel uses this to
    /// skip runs of quiescent cycles without perturbing state.
    pub fn idle_stamp(&mut self, now: Cycle) {
        self.now = now;
        if let Some(o) = self.cet.obs_mut() {
            o.set_now(now);
        }
    }

    /// Rough resident-state footprint in bytes (cache arrays, CET,
    /// queues) — the checkpoint-cost accounting unit: what one full image
    /// of this controller costs a snapshot or a delta log.
    pub fn approx_state_bytes(&self) -> u64 {
        let line = dvmc_types::BLOCK_BYTES as u64 + 16;
        std::mem::size_of::<Self>() as u64
            + (self.l1.len() + self.l2.len() + self.evicting.len()) as u64 * line
            + self.cet.approx_bytes()
            + (self.mshrs.len() * 96
                + self.proc_in.len() * 24
                + self.resp_out.len() * 24
                + self.msg_out.len() * 80
                + self.addr_out.len() * 24
                + self.inbox.len() * 80
                + self.snoop_in.len() * 32
                + self.invalidated.len() * 8) as u64
    }

    // ----- processor-side servicing ------------------------------------

    fn process_proc(&mut self) {
        for _ in 0..self.cfg.ports {
            let Some(&(ready, _)) = self.proc_in.front() else {
                break;
            };
            if ready > self.now {
                break;
            }
            let (_, req) = self.proc_in.pop_front().expect("front exists");
            self.service(req);
        }
    }

    fn respond(&mut self, extra_latency: u32, resp: ProcResp) {
        self.resp_out.push((self.now + extra_latency as u64, resp));
    }

    fn service(&mut self, req: ProcReq) {
        let block = req.addr().block();
        // A transaction is already in flight for this block: join it.
        if self.mshrs.contains_key(&block) {
            if !matches!(req, ProcReq::Prefetch { .. }) {
                self.mshrs.get_mut(&block).expect("checked").waiting.push(req);
            }
            return;
        }
        match req {
            ProcReq::Read { id, addr } | ProcReq::ReplayRead { id, addr } => {
                let replay = matches!(req, ProcReq::ReplayRead { .. });
                if replay {
                    self.stats.replay_reads += 1;
                }
                // L1 hit?
                if let Some(line) = self.l1.lookup_mut(addr.block()) {
                    let value = line.data.word(addr.offset());
                    let ecc_ok = line.ecc_ok();
                    if self.cfg.verify && !ecc_ok {
                        self.violations.push(
                            CoherenceViolation::EccMismatch {
                                node: self.id,
                                addr: addr.block(),
                            }
                            .into(),
                        );
                    }
                    if !replay {
                        self.stats.l1_hits += 1;
                    }
                    self.respond(
                        0,
                        ProcResp {
                            id,
                            value,
                            l1_miss: false,
                            coherence_miss: false,
                            replay,
                        },
                    );
                    return;
                }
                if replay {
                    self.stats.replay_l1_misses += 1;
                } else {
                    self.stats.l1_misses += 1;
                }
                // L2 hit (any MOSI state allows reading)?
                if let Some(value) = self.l2_read(addr.block(), addr.offset()) {
                    self.respond(
                        self.cfg.l2_latency,
                        ProcResp {
                            id,
                            value,
                            l1_miss: true,
                            coherence_miss: false,
                            replay,
                        },
                    );
                    return;
                }
                // Coherence miss.
                if replay {
                    self.stats.replay_coherence_misses += 1;
                } else {
                    self.stats.coherence_misses += 1;
                }
                self.start_transaction(block, false, req);
            }
            ProcReq::Write { id, addr, value } => {
                let writable = self
                    .l2
                    .peek(addr.block())
                    .is_some_and(|l| l.state.writable());
                if writable {
                    let l1_hit = self.l1.peek(addr.block()).is_some();
                    if !l1_hit {
                        self.stats.l1_misses += 1;
                    } else {
                        self.stats.l1_hits += 1;
                    }
                    self.perform_store(addr.block(), addr.offset(), value);
                    self.respond(
                        self.cfg.l2_latency,
                        ProcResp {
                            id,
                            value,
                            l1_miss: !l1_hit,
                            coherence_miss: false,
                            replay: false,
                        },
                    );
                } else {
                    self.stats.l1_misses += 1;
                    self.stats.coherence_misses += 1;
                    self.start_transaction(block, true, req);
                }
            }
            ProcReq::Atomic { id, addr, value } => {
                let writable = self
                    .l2
                    .peek(addr.block())
                    .is_some_and(|l| l.state.writable());
                if writable {
                    let old = self
                        .l2_read(addr.block(), addr.offset())
                        .expect("writable line is readable");
                    self.perform_store(addr.block(), addr.offset(), value);
                    self.respond(
                        self.cfg.l2_latency,
                        ProcResp {
                            id,
                            value: old,
                            l1_miss: true,
                            coherence_miss: false,
                            replay: false,
                        },
                    );
                } else {
                    self.stats.l1_misses += 1;
                    self.stats.coherence_misses += 1;
                    self.start_transaction(block, true, req);
                }
            }
            ProcReq::Prefetch { addr, exclusive } => {
                let sufficient = self.l2.peek(addr.block()).is_some_and(|l| {
                    if exclusive {
                        l.state.writable()
                    } else {
                        true
                    }
                });
                if !sufficient {
                    self.start_transaction_prefetch(addr.block(), exclusive);
                }
            }
        }
    }

    /// Reads a word from the L2, performing ECC and rule-1 checks, and
    /// fills the L1.
    fn l2_read(&mut self, block: BlockAddr, offset: usize) -> Option<u64> {
        let (value, data) = {
            let line = self.l2.lookup_mut(block)?;
            (line.data.word(offset), line.data)
        };
        self.check_line_ecc(block);
        if self.cfg.verify {
            if let Err(v) = self.cet.check_access(block, false) {
                self.violations.push(v);
            }
        }
        // Fill L1 (evictions from L1 are silent: it is write-through and
        // its contents are a subset of L2).
        if self.l1.peek(block).is_none() {
            let _ = self.l1.insert(block, data, ());
        }
        Some(value)
    }

    /// Performs a store into L2 (and L1 write-through). Caller guarantees
    /// an M-state line exists.
    fn perform_store(&mut self, block: BlockAddr, offset: usize, value: u64) {
        self.check_line_ecc(block);
        if self.cfg.verify {
            if let Err(v) = self.cet.check_access(block, true) {
                self.violations.push(v);
            }
        }
        let wrote = self.l2.write_word(block, offset, value);
        debug_assert!(wrote, "perform_store without an L2 line");
        if self.l1.peek(block).is_some() {
            self.l1.write_word(block, offset, value);
        }
    }

    fn check_line_ecc(&mut self, block: BlockAddr) {
        if !self.cfg.verify {
            return;
        }
        if let Some(line) = self.l2.peek(block) {
            if !line.ecc_ok() {
                self.violations.push(
                    CoherenceViolation::EccMismatch {
                        node: self.id,
                        addr: block,
                    }
                    .into(),
                );
            }
        }
    }

    fn home_of(&self, block: BlockAddr) -> NodeId {
        block.home(self.cfg.nodes)
    }

    fn start_transaction(&mut self, block: BlockAddr, want_m: bool, req: ProcReq) {
        self.mshrs.insert(
            block,
            Mshr {
                waiting: vec![req],
                exclusive: want_m,
                observed: false,
                stashed: None,
                obligations: Vec::new(),
                deferred: false,
                order: u64::MAX,
                stashed_order: u64::MAX,
            },
        );
        self.issue_request(block, want_m);
    }

    fn start_transaction_prefetch(&mut self, block: BlockAddr, want_m: bool) {
        self.mshrs.insert(
            block,
            Mshr {
                waiting: Vec::new(),
                exclusive: want_m,
                observed: false,
                stashed: None,
                obligations: Vec::new(),
                deferred: false,
                order: u64::MAX,
                stashed_order: u64::MAX,
            },
        );
        self.issue_request(block, want_m);
    }

    fn issue_request(&mut self, block: BlockAddr, want_m: bool) {
        // Snooping: a new request for a block whose writeback has not yet
        // reached its ordering point would corrupt the epoch chain (the
        // old epoch is still open until the PutM is observed). Hold the
        // request until then.
        if self.protocol == Protocol::Snooping && self.evicting.contains_key(&block) {
            if let Some(m) = self.mshrs.get_mut(&block) {
                m.deferred = true;
                return;
            }
        }
        match self.protocol {
            Protocol::Directory => {
                let msg = if want_m {
                    Msg::GetM {
                        req: self.id,
                        addr: block,
                    }
                } else {
                    Msg::GetS {
                        req: self.id,
                        addr: block,
                    }
                };
                self.msg_out.push_back(Outbound {
                    dst: self.home_of(block),
                    msg,
                });
            }
            Protocol::Snooping => {
                self.addr_out.push_back(AddrReq {
                    kind: if want_m { SnoopKind::GetM } else { SnoopKind::GetS },
                    req: self.id,
                    addr: block,
                });
            }
        }
    }

    /// Confirms a directory grant so the home can start the next
    /// transaction for the block.
    fn send_unblock(&mut self, addr: BlockAddr) {
        self.msg_out.push_back(Outbound {
            dst: self.home_of(addr),
            msg: Msg::Unblock {
                from: self.id,
                addr,
            },
        });
    }

    fn send_inform(&mut self, end: dvmc_core::coherence::EpochEnd, block: BlockAddr) {
        self.stats.informs_sent += 1;
        self.msg_out.push_back(Outbound {
            dst: self.home_of(block),
            msg: Msg::Epoch(end.into()),
        });
    }

    /// Ends the CET epoch for `block` at an explicit logical time.
    fn end_epoch_at(&mut self, block: BlockAddr, end_hash: u16, ts: Ts16) {
        if !self.cfg.verify {
            return;
        }
        if let Some(end) = self.cet.end_epoch(block, ts, end_hash) {
            self.send_inform(end, block);
        }
    }

    /// Begins a CET epoch for `block` at an explicit logical time.
    fn begin_epoch_at(&mut self, block: BlockAddr, kind: EpochKind, hash: Option<u16>, ts: Ts16) {
        if !self.cfg.verify {
            return;
        }
        self.cet.begin_epoch(block, kind, ts, hash);
    }

    /// Ends the CET epoch for `block` (if tracked) and sends the inform.
    fn end_epoch(&mut self, block: BlockAddr, end_hash: u16) {
        if !self.cfg.verify {
            return;
        }
        let now = self.logical_now();
        if let Some(end) = self.cet.end_epoch(block, now, end_hash) {
            self.send_inform(end, block);
        }
    }

    fn begin_epoch(&mut self, block: BlockAddr, kind: EpochKind, hash: Option<u16>) {
        if !self.cfg.verify {
            return;
        }
        let now = self.logical_now();
        self.cet.begin_epoch(block, kind, now, hash);
    }

    /// Ends every in-progress epoch and returns the resulting epoch
    /// messages — the end-of-run audit that forces home-side checking of
    /// epochs still open when the simulation stops.
    pub fn flush_epochs(&mut self) -> Vec<dvmc_core::coherence::EpochMessage> {
        if !self.cfg.verify {
            return Vec::new();
        }
        let now = self.logical_now();
        // Address order, not HashMap order: the flush must emit the same
        // message sequence every run (the campaign determinism contract
        // covers arrival-order metrics like `informs_reordered`).
        let mut blocks: Vec<BlockAddr> = self.cet.blocks().collect();
        blocks.sort_unstable();
        let mut out = Vec::new();
        for block in blocks {
            let ready = self.cet.entry(block).is_some_and(|e| e.data_ready);
            if !ready {
                // Data never arrived (request in flight at shutdown); the
                // epoch performed no accesses and is not audited.
                continue;
            }
            let hash = if let Some(line) = self.l2.peek(block) {
                line.data.hash()
            } else if let Some(buf) = self.evicting.get(&block) {
                buf.data.hash()
            } else {
                continue;
            };
            if let Some(end) = self.cet.end_epoch(block, now, hash) {
                out.push(end.into());
            }
        }
        out
    }

    /// Runs the CET scrub FIFO and emits Inform-Open-Epoch messages.
    /// Returns whether the scrub changed controller state (popped scrub
    /// records and/or queued informs) — quiescent scrubs leave the node
    /// bit-identical, which keeps it out of incremental checkpoints.
    pub fn scrub(&mut self) -> bool {
        if !self.cfg.verify {
            return false;
        }
        let fifo_before = self.cet.scrub_queue_len();
        let opens = self.cet.scrub_tick(self.logical_now());
        let mutated = self.cet.scrub_queue_len() != fifo_before || !opens.is_empty();
        for open in opens {
            let block = open.addr;
            self.stats.informs_sent += 1;
            self.stats.scrub_opens += 1;
            self.msg_out.push_back(Outbound {
                dst: self.home_of(block),
                msg: Msg::Epoch(open.into()),
            });
        }
        mutated
    }

    // ----- fills and victim handling ------------------------------------

    /// Installs an incoming block and completes waiting operations.
    /// `order` tags snooping data with the request it answers
    /// (`u64::MAX` for directory fills, which are home-serialized).
    fn fill(&mut self, block: BlockAddr, data: Block, state: Mosi, order: u64) {
        if !self.mshrs.contains_key(&block) {
            // No transaction expects data: this is a late or duplicate
            // message (e.g. a snooping upgrade satisfied in place while
            // the old owner's redundant supply was still in flight, or a
            // fault-injected duplicate). Installing it would resurrect a
            // stale line.
            return;
        }
        if self.protocol == Protocol::Snooping {
            let m = self.mshrs.get_mut(&block).expect("checked above");
            if !m.observed {
                // Data raced ahead of our request's ordering point; hold
                // it until the observation (ordering) point.
                m.stashed = Some((data, state));
                m.stashed_order = order;
                return;
            }
            if m.order != order {
                // A redundant supply answering one of our *earlier*
                // transactions (e.g. the home's memory supply for an
                // upgrade we satisfied in place). Stale data: discard.
                return;
            }
        }
        if self.l2.peek(block).is_some() {
            // An upgrade grant for a line we already hold (S -> M), or a
            // late/duplicate data message after the transaction finished.
            if !self.mshrs.contains_key(&block) {
                return;
            }
            let old_hash = {
                let line = self.l2.lookup_mut(block).expect("peeked above");
                let old = line.data.hash();
                line.data = data;
                line.ecc = data.hash();
                line.state = state;
                old
            };
            if self.l1.peek(block).is_some() {
                self.l1.remove(block);
                let _ = self.l1.insert(block, data, ());
            }
            if self.protocol == Protocol::Directory {
                self.end_epoch(block, old_hash);
                let kind = if state == Mosi::M {
                    EpochKind::ReadWrite
                } else {
                    EpochKind::ReadOnly
                };
                self.begin_epoch(block, kind, Some(data.hash()));
            } else if self.cfg.verify {
                self.cet.data_arrived(block, data.hash());
            }
            self.complete_waiters(block);
            return;
        }
        // Lines with in-flight transactions of their own are pinned: if an
        // upgrade's line were victimized here, the writeback would race
        // the already-issued GetM (home grants an UpgradeAck the node can
        // no longer apply — deadlock in the directory protocol, an
        // orphaned open epoch in snooping).
        let pinned: Vec<BlockAddr> = self
            .mshrs
            .iter()
            .filter(|(a, _)| **a != block)
            .map(|(a, _)| *a)
            .collect();
        if let Some(victim) = self
            .l2
            .insert_pinned(block, data, state, |a| pinned.contains(&a))
        {
            self.handle_victim(victim);
        }
        let obligations = match self.protocol {
            Protocol::Directory => {
                let kind = if state == Mosi::M {
                    EpochKind::ReadWrite
                } else {
                    EpochKind::ReadOnly
                };
                self.begin_epoch(block, kind, Some(data.hash()));
                Vec::new()
            }
            Protocol::Snooping => {
                // Epoch began at the snoop observation; the data arrives now.
                if self.cfg.verify {
                    self.cet.data_arrived(block, data.hash());
                }
                self.mshrs
                    .get_mut(&block)
                    .map(|m| std::mem::take(&mut m.obligations))
                    .unwrap_or_default()
            }
        };
        self.complete_waiters(block);
        self.fulfill_obligations(block, obligations);
    }

    /// Serves the conflicting requests that were ordered behind our own
    /// while the data was in flight (snooping).
    fn fulfill_obligations(
        &mut self,
        block: BlockAddr,
        obligations: Vec<(SnoopKind, NodeId, u64)>,
    ) {
        for (kind, requester, order) in obligations {
            let ts = Ts16::from_full(order);
            match kind {
                SnoopKind::GetS => {
                    let Some(line) = self.l2.lookup_mut(block) else {
                        continue;
                    };
                    let data = line.data;
                    let was_m = line.state == Mosi::M;
                    line.state = Mosi::O;
                    if was_m {
                        let hash = data.hash();
                        self.end_epoch_at(block, hash, ts);
                        self.begin_epoch_at(block, EpochKind::ReadOnly, Some(hash), ts);
                    }
                    self.check_line_ecc(block);
                    self.msg_out.push_back(Outbound {
                        dst: requester,
                        msg: Msg::SnoopData {
                            addr: block,
                            data,
                            exclusive: false,
                            order,
                        },
                    });
                }
                SnoopKind::GetM => {
                    let Some(line) = self.l2.remove(block) else {
                        continue;
                    };
                    self.l1.remove(block);
                    if line.state.dirty() {
                        self.check_removed_ecc(block, &line);
                        self.msg_out.push_back(Outbound {
                            dst: requester,
                            msg: Msg::SnoopData {
                                addr: block,
                                data: line.data,
                                exclusive: true,
                                order,
                            },
                        });
                    }
                    self.end_epoch_at(block, line.data.hash(), ts);
                    self.invalidated.push(block);
                }
                SnoopKind::PutM => {}
            }
        }
    }

    /// Completes MSHR waiters against the (now present) line; reissues a
    /// GetM if writes remain but only shared permission was granted.
    fn complete_waiters(&mut self, block: BlockAddr) {
        let Some(mshr) = self.mshrs.remove(&block) else {
            return;
        };
        let writable = self.l2.peek(block).is_some_and(|l| l.state.writable());
        let mut leftover = Vec::new();
        for req in mshr.waiting {
            match req {
                ProcReq::Read { id, addr } | ProcReq::ReplayRead { id, addr } => {
                    let replay = matches!(req, ProcReq::ReplayRead { .. });
                    let value = self
                        .l2_read(addr.block(), addr.offset())
                        .expect("line just filled");
                    self.respond(
                        0,
                        ProcResp {
                            id,
                            value,
                            l1_miss: true,
                            coherence_miss: true,
                            replay,
                        },
                    );
                }
                ProcReq::Write { id, addr, value } => {
                    if writable {
                        self.perform_store(addr.block(), addr.offset(), value);
                        self.respond(
                            0,
                            ProcResp {
                                id,
                                value,
                                l1_miss: true,
                                coherence_miss: true,
                                replay: false,
                            },
                        );
                    } else {
                        leftover.push(req);
                    }
                }
                ProcReq::Atomic { id, addr, value } => {
                    if writable {
                        let old = self
                            .l2_read(addr.block(), addr.offset())
                            .expect("line just filled");
                        self.perform_store(addr.block(), addr.offset(), value);
                        self.respond(
                            0,
                            ProcResp {
                                id,
                                value: old,
                                l1_miss: true,
                                coherence_miss: true,
                                replay: false,
                            },
                        );
                    } else {
                        leftover.push(req);
                    }
                }
                ProcReq::Prefetch { .. } => {}
            }
        }
        if !leftover.is_empty() {
            // Shared grant but writes pending: upgrade.
            self.mshrs.insert(
                block,
                Mshr {
                    waiting: leftover,
                    exclusive: true,
                    observed: false,
                    stashed: None,
                    obligations: Vec::new(),
                    deferred: false,
                    order: u64::MAX,
                    stashed_order: u64::MAX,
                },
            );
            self.issue_request(block, true);
        }
    }

    /// Handles an L2 capacity eviction.
    fn handle_victim(&mut self, victim: Line<Mosi>) {
        let block = victim.addr;
        self.l1.remove(block);
        // Once the block leaves the L2 the core stops observing remote
        // writes to it (later invalidations find nothing to remove, and a
        // recall served from the evict buffer bypasses the cache): report
        // the eviction like an invalidation so executed-but-unreplayed
        // loads get their §4.1 remote-write mark.
        self.invalidated.push(block);
        if self.cfg.verify && !victim.ecc_ok() {
            self.violations.push(
                CoherenceViolation::EccMismatch {
                    node: self.id,
                    addr: block,
                }
                .into(),
            );
        }
        match self.protocol {
            Protocol::Directory => {
                self.end_epoch(block, victim.data.hash());
                if victim.state.dirty() {
                    self.stats.writebacks += 1;
                    self.evicting.insert(
                        block,
                        EvictBuf {
                            data: victim.data,
                            state: victim.state,
                        },
                    );
                    self.msg_out.push_back(Outbound {
                        dst: self.home_of(block),
                        msg: Msg::PutM {
                            req: self.id,
                            addr: block,
                            data: victim.data,
                        },
                    });
                }
            }
            Protocol::Snooping => {
                if victim.state.dirty() {
                    // Remain owner (and keep the epoch open) until the PutM
                    // is observed on the ordered network.
                    self.stats.writebacks += 1;
                    self.evicting.insert(
                        block,
                        EvictBuf {
                            data: victim.data,
                            state: victim.state,
                        },
                    );
                    self.addr_out.push_back(AddrReq {
                        kind: SnoopKind::PutM,
                        req: self.id,
                        addr: block,
                    });
                } else {
                    // Silent S eviction; the epoch ends now.
                    self.end_epoch(block, victim.data.hash());
                }
            }
        }
    }

    // ----- directory message handling -----------------------------------

    fn process_inbox(&mut self) {
        while let Some(msg) = self.inbox.pop_front() {
            self.handle_msg(msg);
        }
    }

    fn handle_msg(&mut self, msg: Msg) {
        match msg {
            Msg::DataS { addr, data } => {
                self.fill(addr, data, Mosi::S, u64::MAX);
                self.send_unblock(addr);
            }
            Msg::DataM { addr, data } => {
                self.fill(addr, data, Mosi::M, u64::MAX);
                self.send_unblock(addr);
            }
            Msg::SnoopData {
                addr,
                data,
                exclusive,
                order,
            } => {
                // Snooping data response for our outstanding request.
                let state = if exclusive { Mosi::M } else { Mosi::S };
                self.fill(addr, data, state, order);
            }
            Msg::UpgradeAck { addr } => {
                // O -> M upgrade: permission without data.
                let hash = match self.l2.lookup_mut(addr) {
                    Some(line) => {
                        line.state = Mosi::M;
                        line.data.hash()
                    }
                    None => {
                        // Lost the line to a racing invalidation; retry as
                        // a full GetM.
                        if self.mshrs.contains_key(&addr) {
                            self.issue_request(addr, true);
                        }
                        return;
                    }
                };
                self.end_epoch(addr, hash);
                self.begin_epoch(addr, EpochKind::ReadWrite, Some(hash));
                self.complete_waiters(addr);
                self.send_unblock(addr);
            }
            Msg::Inv { addr } => {
                self.check_line_ecc(addr);
                if let Some(line) = self.l2.remove(addr) {
                    self.l1.remove(addr);
                    self.end_epoch(addr, line.data.hash());
                    self.invalidated.push(addr);
                }
                self.msg_out.push_back(Outbound {
                    dst: self.home_of(addr),
                    msg: Msg::InvAck {
                        from: self.id,
                        addr,
                    },
                });
            }
            Msg::RecallShare { addr } => {
                let data = if let Some(line) = self.l2.lookup_mut(addr) {
                    let data = line.data;
                    let was_m = line.state == Mosi::M;
                    line.state = Mosi::O;
                    if was_m {
                        let hash = data.hash();
                        self.end_epoch(addr, hash);
                        self.begin_epoch(addr, EpochKind::ReadOnly, Some(hash));
                    }
                    self.check_line_ecc(addr);
                    Some(data)
                } else if let Some(buf) = self.evicting.get_mut(&addr) {
                    buf.state = Mosi::O;
                    Some(buf.data)
                } else {
                    None
                };
                if let Some(data) = data {
                    self.msg_out.push_back(Outbound {
                        dst: self.home_of(addr),
                        msg: Msg::RecallAck {
                            from: self.id,
                            addr,
                            data,
                        },
                    });
                }
            }
            Msg::RecallInv { addr } => {
                self.check_line_ecc(addr);
                let data = if let Some(line) = self.l2.remove(addr) {
                    self.l1.remove(addr);
                    self.end_epoch(addr, line.data.hash());
                    self.invalidated.push(addr);
                    Some(line.data)
                } else {
                    self.evicting.get(&addr).map(|b| b.data)
                };
                if let Some(data) = data {
                    self.msg_out.push_back(Outbound {
                        dst: self.home_of(addr),
                        msg: Msg::RecallAck {
                            from: self.id,
                            addr,
                            data,
                        },
                    });
                }
            }
            Msg::PutAck { addr, .. } => {
                self.evicting.remove(&addr);
            }
            // Requests and epoch messages are home-side; a cache receiving
            // one indicates a mis-routed message, which the home-side
            // checks surface. Ignore here.
            Msg::GetS { .. }
            | Msg::GetM { .. }
            | Msg::PutM { .. }
            | Msg::InvAck { .. }
            | Msg::RecallAck { .. }
            | Msg::Unblock { .. }
            | Msg::Epoch(_)
            | Msg::Ber { .. } => {}
        }
    }

    // ----- snooping -------------------------------------------------------

    fn process_snoops(&mut self) {
        while let Some((order, req)) = self.snoop_in.pop_front() {
            self.last_order = order;
            self.handle_snoop(req);
        }
    }

    /// If we have an observed, still-dataless request for `block`, record
    /// an obligation to serve `req` once our data arrives. Returns whether
    /// the obligation was recorded (or absorbed). Obligations stop at the
    /// first GetM: the requester becomes the next owner, and requests
    /// ordered after it are that owner's to serve.
    fn record_obligation(&mut self, block: BlockAddr, kind: SnoopKind, req: NodeId) -> bool {
        let order = self.last_order;
        let Some(m) = self.mshrs.get_mut(&block) else {
            return false;
        };
        if !m.observed || self.l2.peek(block).is_some() {
            return false;
        }
        if m.obligations.iter().any(|(k, _, _)| *k == SnoopKind::GetM) {
            return true; // absorbed: the pending new owner serves it
        }
        // A GetS only obligates a future *owner*; if our request is a
        // GetS, memory or the old owner serves the reader.
        if kind == SnoopKind::GetS && !m.exclusive {
            return false;
        }
        m.obligations.push((kind, req, order));
        true
    }

    fn handle_snoop(&mut self, req: AddrReq) {
        let mine = req.req == self.id;
        let block = req.addr;
        match (req.kind, mine) {
            (SnoopKind::GetS, true) => {
                let order = self.last_order;
                let stashed = match self.mshrs.get_mut(&block) {
                    Some(m) => {
                        m.observed = true;
                        m.order = order;
                        if m.stashed_order == order {
                            m.stashed.take()
                        } else {
                            m.stashed = None;
                            None
                        }
                    }
                    None => None,
                };
                self.begin_epoch(block, EpochKind::ReadOnly, None);
                if let Some((data, state)) = stashed {
                    self.fill(block, data, state, order);
                }
            }
            (SnoopKind::GetM, true) => {
                if let Some(line) = self.l2.lookup_mut(block) {
                    // Upgrade in place: permission is granted by the
                    // observation point; we already hold the data.
                    line.state = Mosi::M;
                    let hash = line.data.hash();
                    self.end_epoch(block, hash);
                    self.begin_epoch(block, EpochKind::ReadWrite, Some(hash));
                    self.complete_waiters(block);
                } else if let Some(buf) = self.evicting.remove(&block) {
                    // Our upgrade was ordered while our own writeback of
                    // this block still awaited its ordering point (the
                    // request was issued before the eviction, so the
                    // writeback deferral in `issue_request` could not
                    // catch it). We are still the owner: nobody else will
                    // supply data, so waiting deadlocks, and the old
                    // epoch would stay open past the upgrade. Reclaim the
                    // buffer, cancel the writeback (the stale PutM
                    // observation finds no buffer and is a no-op), and
                    // upgrade in place.
                    let order = self.last_order;
                    if let Some(m) = self.mshrs.get_mut(&block) {
                        m.observed = true;
                        m.order = order;
                        m.stashed = None;
                    }
                    let hash = buf.data.hash();
                    self.end_epoch(block, hash);
                    self.begin_epoch(block, EpochKind::ReadWrite, Some(hash));
                    self.fill(block, buf.data, Mosi::M, order);
                } else {
                    let order = self.last_order;
                    let stashed = match self.mshrs.get_mut(&block) {
                        Some(m) => {
                            m.observed = true;
                            m.order = order;
                            if m.stashed_order == order {
                                m.stashed.take()
                            } else {
                                m.stashed = None;
                                None
                            }
                        }
                        None => None,
                    };
                    self.begin_epoch(block, EpochKind::ReadWrite, None);
                    if let Some((data, state)) = stashed {
                        self.fill(block, data, state, order);
                    }
                }
            }
            (SnoopKind::PutM, true) => {
                if let Some(buf) = self.evicting.remove(&block) {
                    self.end_epoch(block, buf.data.hash());
                    if buf.state.dirty() {
                        self.msg_out.push_back(Outbound {
                            dst: self.home_of(block),
                            msg: Msg::PutM {
                                req: self.id,
                                addr: block,
                                data: buf.data,
                            },
                        });
                    }
                }
                // Release any request for this block that waited for the
                // writeback's ordering point.
                let reissue = match self.mshrs.get_mut(&block) {
                    Some(m) if m.deferred => {
                        m.deferred = false;
                        Some(m.exclusive)
                    }
                    _ => None,
                };
                if let Some(want_m) = reissue {
                    self.issue_request(block, want_m);
                }
            }
            (SnoopKind::GetS, false) => {
                if self.record_obligation(block, SnoopKind::GetS, req.req) {
                    return;
                }
                // Owner supplies data and downgrades M -> O.
                if let Some(line) = self.l2.lookup_mut(block) {
                    if line.state.dirty() {
                        let data = line.data;
                        let was_m = line.state == Mosi::M;
                        line.state = Mosi::O;
                        if was_m {
                            let hash = data.hash();
                            self.end_epoch(block, hash);
                            self.begin_epoch(block, EpochKind::ReadOnly, Some(hash));
                        }
                        self.check_line_ecc(block);
                        let order = self.last_order;
                        self.msg_out.push_back(Outbound {
                            dst: req.req,
                            msg: Msg::SnoopData {
                                addr: block,
                                data,
                                exclusive: false,
                                order,
                            },
                        });
                    }
                } else if let Some(buf) = self.evicting.get_mut(&block) {
                    if buf.state.dirty() {
                        let was_m = buf.state == Mosi::M;
                        buf.state = Mosi::O;
                        let data = buf.data;
                        // The reader's epoch begins at this GetS's ordering
                        // point, so the writeback buffer's Read-Write epoch
                        // must close here too — deferring the close to our
                        // own PutM observation stamps it after the reader's
                        // start and the MET flags a spurious overlap.
                        if was_m {
                            let hash = data.hash();
                            self.end_epoch(block, hash);
                            self.begin_epoch(block, EpochKind::ReadOnly, Some(hash));
                        }
                        let order = self.last_order;
                        self.msg_out.push_back(Outbound {
                            dst: req.req,
                            msg: Msg::SnoopData {
                                addr: block,
                                data,
                                exclusive: false,
                                order,
                            },
                        });
                    }
                }
            }
            (SnoopKind::GetM, false) => {
                if self.record_obligation(block, SnoopKind::GetM, req.req) {
                    return;
                }
                if let Some(line) = self.l2.remove(block) {
                    self.l1.remove(block);
                    if line.state.dirty() {
                        self.check_removed_ecc(block, &line);
                        let order = self.last_order;
                        self.msg_out.push_back(Outbound {
                            dst: req.req,
                            msg: Msg::SnoopData {
                                addr: block,
                                data: line.data,
                                exclusive: true,
                                order,
                            },
                        });
                    }
                    self.end_epoch(block, line.data.hash());
                    self.invalidated.push(block);
                } else if let Some(buf) = self.evicting.remove(&block) {
                    if buf.state.dirty() {
                        let order = self.last_order;
                        self.msg_out.push_back(Outbound {
                            dst: req.req,
                            msg: Msg::SnoopData {
                                addr: block,
                                data: buf.data,
                                exclusive: true,
                                order,
                            },
                        });
                    }
                    self.end_epoch(block, buf.data.hash());
                }
            }
            (SnoopKind::PutM, false) => {}
        }
    }

    fn check_removed_ecc(&mut self, block: BlockAddr, line: &Line<Mosi>) {
        if self.cfg.verify && !line.ecc_ok() {
            self.violations.push(
                CoherenceViolation::EccMismatch {
                    node: self.id,
                    addr: block,
                }
                .into(),
            );
        }
    }
}

impl std::fmt::Debug for CacheNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheNode")
            .field("id", &self.id)
            .field("protocol", &self.protocol)
            .field("l2_lines", &self.l2.len())
            .field("mshrs", &self.mshrs.len())
            .finish_non_exhaustive()
    }
}
