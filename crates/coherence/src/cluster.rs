//! A complete coherent memory system: N cache controllers, N home memory
//! controllers, and the interconnect — everything below the processor
//! cores. The simulator crate layers pipelines, checkers, and workloads on
//! top; the tests here exercise the protocols directly.

use crate::home::{HomeConfig, HomeCtrl, HomeMemImage, HomeStats};
use crate::msg::Msg;
use crate::node::{CacheNode, NodeConfig, Protocol};
use crate::proc::{CacheStats, ProcReq, ProcResp};
use dvmc_core::violation::Violation;
use dvmc_interconnect::{BroadcastTree, Torus};
use dvmc_types::{BlockAddr, Cycle, NodeId, WordAddr};

/// Whether a message is consumed by the home controller (as opposed to the
/// cache controller) at its destination node.
fn home_bound(msg: &Msg) -> bool {
    matches!(
        msg,
        Msg::GetS { .. }
            | Msg::GetM { .. }
            | Msg::PutM { .. }
            | Msg::InvAck { .. }
            | Msg::RecallAck { .. }
            | Msg::Unblock { .. }
            | Msg::Epoch(_)
    )
}

/// Cluster-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Cache-controller configuration.
    pub node: NodeConfig,
    /// Home-controller configuration.
    pub home: HomeConfig,
    /// Torus link bandwidth in bytes/cycle (2.5 GB/s at 2 GHz ≈ 1.25 B/c;
    /// we default to 2 B/c ≈ 4 GB/s-class links scaled to sim cycles).
    pub link_bandwidth: u32,
    /// Torus per-hop latency in cycles.
    pub hop_latency: u32,
    /// Address-tree fan-out latency in cycles (snooping).
    pub tree_latency: u32,
}

impl ClusterConfig {
    /// The Table 6 baseline for `nodes` nodes.
    pub fn paper_default(nodes: usize, protocol: Protocol) -> Self {
        let node = NodeConfig {
            nodes,
            ..NodeConfig::default()
        };
        let home = HomeConfig {
            nodes,
            ..HomeConfig::default()
        };
        ClusterConfig {
            nodes,
            protocol,
            node,
            home,
            link_bandwidth: 2,
            hop_latency: 8,
            tree_latency: 12,
        }
    }

    /// Disables the coherence checker (unprotected baseline).
    pub fn without_verification(mut self) -> Self {
        self.node.verify = false;
        self.home.verify = false;
        self
    }
}

/// The coherent memory system below the processors.
///
/// `Clone` deep-copies every controller, both networks (in-flight traffic
/// included), and the pending violation list — the memory-system half of a
/// BER checkpoint snapshot.
#[derive(Clone)]
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<CacheNode>,
    homes: Vec<HomeCtrl>,
    data_net: Torus<Msg>,
    addr_net: Option<BroadcastTree<crate::msg::AddrReq>>,
    violations: Vec<Violation>,
    now: Cycle,
    scrub_period: u64,
    checker_bytes: u64,
    ber_bytes: u64,
    // Dirty-part flags for log-based incremental checkpointing: which
    // parts of the memory system may have mutated since the flags were
    // last cleared. Conservative (a spurious `true` only costs log bytes,
    // never correctness); cleared by the checkpoint layer after each
    // capture.
    node_dirty: Vec<bool>,
    home_dirty: Vec<bool>,
    home_mem_dirty: Vec<bool>,
    data_net_dirty: bool,
    addr_net_dirty: bool,
}

/// Which memory-system parts mutated since the flags were last cleared
/// (log-based incremental checkpointing).
#[derive(Clone, Debug)]
pub struct DirtyParts {
    /// Per-node cache-controller flags.
    pub nodes: Vec<bool>,
    /// Per-node home-controller flags (memory array excluded).
    pub homes: Vec<bool>,
    /// Per-node home memory-array flags.
    pub home_mems: Vec<bool>,
    /// Data-network (torus) flag.
    pub data_net: bool,
    /// Address-network (broadcast tree) flag; always `false` under the
    /// directory protocol.
    pub addr_net: bool,
}

impl Cluster {
    /// Builds a cluster from its configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        let nodes = (0..cfg.nodes)
            .map(|i| CacheNode::new(NodeId(i as u8), cfg.protocol, cfg.node))
            .collect();
        let homes = (0..cfg.nodes)
            .map(|i| HomeCtrl::new(NodeId(i as u8), cfg.protocol, cfg.home))
            .collect();
        Cluster {
            nodes,
            homes,
            data_net: Torus::new(cfg.nodes, cfg.link_bandwidth, cfg.hop_latency),
            addr_net: (cfg.protocol == Protocol::Snooping)
                .then(|| BroadcastTree::new(cfg.nodes, 8, cfg.tree_latency)),
            violations: Vec::new(),
            now: 0,
            scrub_period: 1024,
            checker_bytes: 0,
            ber_bytes: 0,
            node_dirty: vec![true; cfg.nodes],
            home_dirty: vec![true; cfg.nodes],
            home_mem_dirty: vec![true; cfg.nodes],
            data_net_dirty: true,
            addr_net_dirty: cfg.protocol == Protocol::Snooping,
            cfg,
        }
    }

    /// Sends BER coordination traffic between two nodes (bandwidth
    /// accounting only; the payload is ignored at the destination).
    pub fn send_ber(&mut self, src: NodeId, dst: NodeId, bytes: u32) {
        self.ber_bytes += bytes as u64;
        self.data_net_dirty = true;
        let now = self.now;
        self.data_net.send(src, dst, Msg::Ber { bytes }, bytes, now);
    }

    /// Total coherence-checker (Inform-Epoch family) bytes injected.
    pub fn checker_bytes(&self) -> u64 {
        self.checker_bytes
    }

    /// Total BER coordination bytes injected.
    pub fn ber_bytes(&self) -> u64 {
        self.ber_bytes
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Initializes a memory word at its home node (workload setup).
    pub fn poke_word(&mut self, addr: WordAddr, value: u64) {
        let home = addr.block().home(self.cfg.nodes);
        self.home_mem_dirty[home.index()] = true;
        self.homes[home.index()].poke_word(addr, value);
    }

    /// Reads a memory word from its home (ignores cached dirty copies; use
    /// only after quiescence for end-state checks).
    pub fn peek_memory_word(&self, addr: WordAddr) -> u64 {
        let home = addr.block().home(self.cfg.nodes);
        self.homes[home.index()].peek_word(addr)
    }

    /// An order-independent digest of every home's memory image (blocks
    /// visited in address order, homes in node order). Two runs that left
    /// byte-identical memory behind produce the same digest; `exp_recovery`
    /// compares recovered runs against a fault-free golden run with it.
    /// Meaningful after quiescence (dirty cached lines are not flushed).
    pub fn memory_digest(&self) -> u64 {
        // FNV-1a over (home, block address, words); HashMap iteration
        // order never leaks because each home digests in sorted order.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (i, home) in self.homes.iter().enumerate() {
            mix(i as u64);
            home.digest_memory(&mut mix);
        }
        h
    }

    /// Submits a processor request at `node`.
    pub fn submit(&mut self, node: NodeId, req: ProcReq) {
        self.node_dirty[node.index()] = true;
        self.nodes[node.index()].submit(req);
    }

    /// Pops a completed response at `node`.
    pub fn pop_resp(&mut self, node: NodeId) -> Option<ProcResp> {
        let resp = self.nodes[node.index()].pop_resp();
        self.node_dirty[node.index()] |= resp.is_some();
        resp
    }

    /// Drains the blocks invalidated at `node` since the last call.
    pub fn drain_invalidated(&mut self, node: NodeId) -> Vec<BlockAddr> {
        let blocks = self.nodes[node.index()].drain_invalidated();
        self.node_dirty[node.index()] |= !blocks.is_empty();
        blocks
    }

    /// Advances the whole memory system one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        // 1. Networks move. A network with traffic in flight mutates; an
        // idle one is a pure no-op (dirty flags feed the incremental
        // checkpoint log).
        self.data_net_dirty |= !self.data_net.is_quiescent();
        self.data_net.tick(now);
        if let Some(tree) = self.addr_net.as_mut() {
            self.addr_net_dirty |= !tree.is_quiescent();
            tree.tick(now);
        }
        // 2. Deliveries. A delivered message can be fully consumed within
        // this same tick (leaving the controller quiescent at both ends),
        // so delivery itself marks the controller dirty.
        for i in 0..self.cfg.nodes {
            let node_id = NodeId(i as u8);
            while let Some(msg) = self.data_net.recv(node_id) {
                self.data_net_dirty = true;
                if home_bound(&msg) {
                    self.home_dirty[i] = true;
                    self.homes[i].deliver(msg);
                } else {
                    self.node_dirty[i] = true;
                    self.nodes[i].deliver(msg);
                }
            }
            if let Some(tree) = self.addr_net.as_mut() {
                while let Some((order, req)) = tree.recv(node_id) {
                    self.addr_net_dirty = true;
                    self.node_dirty[i] = true;
                    self.home_dirty[i] = true;
                    self.nodes[i].deliver_snoop(order, req);
                    self.homes[i].deliver_snoop(order, req);
                }
            }
        }
        // 3. Controllers run. A non-quiescent controller mutates; so does
        // a quiescent home with informs queued in its epoch sorter (the
        // watermark drain), a home whose periodic MET scrub fired, and a
        // node whose CET scrub fired.
        for (i, home) in self.homes.iter_mut().enumerate() {
            self.home_dirty[i] |= !home.is_quiescent() || home.queued() > 0;
            let scrubbed = home.tick(now);
            self.home_dirty[i] |= scrubbed || !home.is_quiescent();
            self.home_mem_dirty[i] |= home.take_mem_dirty();
        }
        for (i, node) in self.nodes.iter_mut().enumerate() {
            self.node_dirty[i] |= !node.is_quiescent();
            node.tick(now);
            self.node_dirty[i] |= !node.is_quiescent();
            if now.is_multiple_of(self.scrub_period) {
                self.node_dirty[i] |= node.scrub();
            }
        }
        // 4. Outbound messages enter the networks.
        for i in 0..self.cfg.nodes {
            let src = NodeId(i as u8);
            while let Some(out) = self.nodes[i].pop_msg() {
                let bytes = out.msg.bytes();
                if out.msg.is_checker() {
                    self.checker_bytes += bytes as u64;
                }
                self.data_net_dirty = true;
                self.node_dirty[i] = true;
                self.data_net.send(src, out.dst, out.msg, bytes, now);
            }
            while let Some(out) = self.homes[i].pop_msg() {
                let bytes = out.msg.bytes();
                self.data_net_dirty = true;
                self.home_dirty[i] = true;
                self.data_net.send(src, out.dst, out.msg, bytes, now);
            }
            if let Some(tree) = self.addr_net.as_mut() {
                while let Some(req) = self.nodes[i].pop_addr_req() {
                    let bytes = req.bytes();
                    self.addr_net_dirty = true;
                    self.node_dirty[i] = true;
                    tree.send(src, req, bytes, now);
                }
            }
        }
        // 5. Collect violations.
        for node in &mut self.nodes {
            self.violations.extend(node.drain_violations());
        }
        for home in &mut self.homes {
            self.violations.extend(home.drain_violations());
        }
        self.now += 1;
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Sets the cluster clock without touching any controller (checkpoint
    /// restore).
    pub fn set_now(&mut self, now: Cycle) {
        self.now = now;
    }

    /// Jumps the whole memory system from its current cycle to `target`
    /// without simulating the span — every controller gets the exact state
    /// change a sequence of quiescent ticks would have applied (a clock
    /// stamp of the last skipped cycle, `target - 1`). Only legal when
    /// [`is_quiescent`](Self::is_quiescent) holds and no sorter drain,
    /// scrub boundary, or delivery falls inside the span; the
    /// event-scheduled kernel guarantees that by construction.
    pub fn advance_to(&mut self, target: Cycle) {
        debug_assert!(target >= self.now);
        let last_skipped = target.saturating_sub(1);
        for node in &mut self.nodes {
            node.idle_stamp(last_skipped);
        }
        for home in &mut self.homes {
            home.idle_stamp(last_skipped);
        }
        self.now = target;
    }

    /// Whether any home's epoch sorter holds queued informs (the periodic
    /// watermark drain makes such a home an every-cycle event source under
    /// the directory protocol).
    pub fn any_sorter_queued(&self) -> bool {
        self.homes.iter().any(|h| h.queued() > 0)
    }

    /// The earliest cycle at which any home's periodic watermark drain
    /// could release a queued inform (see
    /// [`HomeCtrl::next_sorter_drain_at`](crate::home::HomeCtrl::next_sorter_drain_at)).
    pub fn next_sorter_drain_at(&self, now: Cycle) -> Option<Cycle> {
        self.homes
            .iter()
            .filter_map(|h| h.next_sorter_drain_at(now))
            .min()
    }

    /// The periodic CET-scrub cadence, in cycles.
    pub fn scrub_period(&self) -> u64 {
        self.scrub_period
    }

    /// Snapshot of the dirty-part flags (incremental checkpointing).
    pub fn dirty_parts(&self) -> DirtyParts {
        DirtyParts {
            nodes: self.node_dirty.clone(),
            homes: self.home_dirty.clone(),
            home_mems: self.home_mem_dirty.clone(),
            data_net: self.data_net_dirty,
            addr_net: self.addr_net_dirty,
        }
    }

    /// Clears every dirty-part flag (after a checkpoint capture or a
    /// rollback restore).
    pub fn clear_dirty(&mut self) {
        self.node_dirty.fill(false);
        self.home_dirty.fill(false);
        self.home_mem_dirty.fill(false);
        self.data_net_dirty = false;
        self.addr_net_dirty = false;
    }

    /// Captures one cache controller (incremental checkpointing).
    pub fn node_image(&self, node: NodeId) -> CacheNode {
        self.nodes[node.index()].clone()
    }

    /// Restores one cache controller from an image.
    pub fn restore_node(&mut self, node: NodeId, image: &CacheNode) {
        self.nodes[node.index()] = image.clone();
    }

    /// Captures one home controller, memory array excluded.
    pub fn home_ctrl_image(&self, node: NodeId) -> HomeCtrl {
        self.homes[node.index()].ctrl_image()
    }

    /// Restores one home controller from a memory-stripped image, keeping
    /// the resident memory array.
    pub fn restore_home_ctrl(&mut self, node: NodeId, image: &HomeCtrl) {
        self.homes[node.index()].restore_ctrl(image);
    }

    /// Captures one home's memory array.
    pub fn home_mem_image(&self, node: NodeId) -> HomeMemImage {
        self.homes[node.index()].mem_image()
    }

    /// Restores one home's memory array from an image.
    pub fn restore_home_mem(&mut self, node: NodeId, image: &HomeMemImage) {
        self.homes[node.index()].restore_mem(image);
    }

    /// Captures the data network, in-flight traffic included.
    pub fn data_net_image(&self) -> Torus<Msg> {
        self.data_net.clone()
    }

    /// Restores the data network from an image.
    pub fn restore_data_net(&mut self, image: &Torus<Msg>) {
        self.data_net = image.clone();
    }

    /// Captures the address network (snooping only).
    pub fn addr_net_image(&self) -> Option<BroadcastTree<crate::msg::AddrReq>> {
        self.addr_net.clone()
    }

    /// Restores the address network from an image.
    pub fn restore_addr_net(&mut self, image: &Option<BroadcastTree<crate::msg::AddrReq>>) {
        self.addr_net = image.clone();
    }

    /// Approximate serialized size of the whole memory system, in bytes
    /// (whole-snapshot checkpoint accounting).
    pub fn approx_state_bytes(&self) -> u64 {
        self.nodes.iter().map(CacheNode::approx_state_bytes).sum::<u64>()
            + self
                .homes
                .iter()
                .map(|h| h.approx_ctrl_bytes() + h.approx_mem_bytes())
                .sum::<u64>()
            + self.data_net.approx_state_bytes()
            + self.addr_net.as_ref().map_or(0, BroadcastTree::approx_state_bytes)
    }

    /// Restores the bandwidth-accounting counters (checkpoint restore;
    /// they mutate every cycle traffic moves, so they ride in the
    /// always-captured miscellaneous part of each delta).
    pub fn set_traffic_counters(&mut self, checker_bytes: u64, ber_bytes: u64) {
        self.checker_bytes = checker_bytes;
        self.ber_bytes = ber_bytes;
    }

    /// Runs until every controller and network is idle (or `max_cycles`
    /// elapse). Returns whether quiescence was reached.
    pub fn run_to_quiescence(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            self.tick();
            if self.is_quiescent() {
                return true;
            }
        }
        false
    }

    /// Whether all controllers and networks are idle.
    pub fn is_quiescent(&self) -> bool {
        self.nodes.iter().all(CacheNode::is_quiescent)
            && self.homes.iter().all(HomeCtrl::is_quiescent)
            && self.data_net.is_quiescent()
            && self.addr_net.as_ref().is_none_or(BroadcastTree::is_quiescent)
    }

    /// End-of-run audit: ends every in-progress epoch, processes all
    /// queued checker state, and drains violations.
    pub fn finish(&mut self) -> Vec<Violation> {
        for i in 0..self.cfg.nodes {
            for msg in self.nodes[i].flush_epochs() {
                let home = msg.addr().home(self.cfg.nodes);
                self.homes[home.index()].ingest_epoch(msg);
            }
        }
        for home in &mut self.homes {
            home.flush_checker();
            self.violations.extend(home.drain_violations());
        }
        for node in &mut self.nodes {
            self.violations.extend(node.drain_violations());
        }
        std::mem::take(&mut self.violations)
    }

    /// Violations detected so far (without flushing).
    pub fn drain_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Per-node cache statistics.
    pub fn cache_stats(&self, node: NodeId) -> CacheStats {
        self.nodes[node.index()].stats()
    }

    /// Per-home statistics.
    pub fn home_stats(&self, node: NodeId) -> HomeStats {
        self.homes[node.index()].stats()
    }

    /// The data network (bandwidth accounting for Figures 7–8).
    pub fn data_net(&self) -> &Torus<Msg> {
        &self.data_net
    }

    /// Mutable access to the data network (fault arming). Conservatively
    /// marks the network dirty for incremental checkpointing.
    pub fn data_net_mut(&mut self) -> &mut Torus<Msg> {
        self.data_net_dirty = true;
        &mut self.data_net
    }

    /// Mutable access to a cache controller (fault injection).
    /// Conservatively marks the node dirty for incremental checkpointing.
    pub fn node_mut(&mut self, node: NodeId) -> &mut CacheNode {
        self.node_dirty[node.index()] = true;
        &mut self.nodes[node.index()]
    }

    /// Mutable access to a home controller (fault injection).
    /// Conservatively marks both home parts dirty for incremental
    /// checkpointing.
    pub fn home_mut(&mut self, node: NodeId) -> &mut HomeCtrl {
        self.home_dirty[node.index()] = true;
        self.home_mem_dirty[node.index()] = true;
        &mut self.homes[node.index()]
    }

    /// Attaches bounded event rings to every CET and home checker
    /// (observability; disabled by default).
    pub fn enable_obs(&mut self, capacity: usize) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            self.node_dirty[i] = true;
            node.enable_obs(capacity);
        }
        for (i, home) in self.homes.iter_mut().enumerate() {
            self.home_dirty[i] = true;
            home.enable_obs(capacity);
        }
    }

    /// The enabled event rings of one node's coherence checkers (CET
    /// first, then the home's MET side).
    pub fn obs_rings(&self, node: NodeId) -> Vec<&dvmc_core::ObsRing> {
        self.nodes[node.index()]
            .obs()
            .into_iter()
            .chain(self.homes[node.index()].obs())
            .collect()
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.cfg.nodes)
            .field("protocol", &self.cfg.protocol)
            .field("cycle", &self.now)
            .finish_non_exhaustive()
    }
}
