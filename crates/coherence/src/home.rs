//! The home memory controller: distributed memory, the directory (for the
//! directory protocol) or the serialized-stream owner tracker (for
//! snooping), and the home half of the coherence checker (MET + epoch
//! sorter, §4.3).

use crate::msg::{AddrReq, Msg, Outbound, SnoopKind};
use crate::node::Protocol;
use dvmc_core::coherence::HomeChecker;
use dvmc_core::violation::{CoherenceViolation, Violation};
use dvmc_types::{Block, BlockAddr, Cycle, NodeId, Ts16};
use std::collections::{HashMap, HashSet, VecDeque};

/// Home-controller configuration.
#[derive(Clone, Copy, Debug)]
pub struct HomeConfig {
    /// Number of nodes in the system.
    pub nodes: usize,
    /// Memory (DRAM) access latency in cycles.
    pub mem_latency: u32,
    /// Whether the coherence checker (MET) is active.
    pub verify: bool,
    /// Directory logical time: cycles per logical tick, as a shift.
    pub lt_shift: u32,
    /// Epoch-sorter priority queue capacity (Table 6: 256).
    pub sorter_capacity: usize,
}

impl Default for HomeConfig {
    fn default() -> Self {
        HomeConfig {
            nodes: 8,
            mem_latency: 80,
            verify: true,
            lt_shift: 4,
            sorter_capacity: 256,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct DirEntry {
    owner: Option<NodeId>,
    sharers: u64,
}

/// The kind of an in-flight home transaction, exposed for the analyzer's
/// transient-state audit (mirrors the private `TxnKind`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HomeBusyKind {
    /// Read miss being served by an owner recall.
    GetS,
    /// Write miss being served by recall/invalidation.
    GetM,
    /// O→M upgrade collecting invalidation acks.
    Upgrade,
    /// Grant sent; waiting for the requester's Unblock.
    AwaitUnblock,
}

#[derive(Clone, Copy, Debug)]
enum TxnKind {
    GetS,
    GetM,
    Upgrade,
    /// Grant sent; waiting for the requester's Unblock before starting the
    /// next transaction for the block.
    AwaitUnblock,
}

#[derive(Clone, Debug)]
struct Txn {
    kind: TxnKind,
    requester: NodeId,
    need_acks: u32,
    need_data: bool,
    data: Option<Block>,
}

#[derive(Clone, Copy, Debug)]
struct MemBlock {
    data: Block,
    ecc: u16,
}

impl MemBlock {
    fn zero() -> Self {
        MemBlock {
            data: Block::ZERO,
            ecc: Block::ZERO.hash(),
        }
    }
}

/// Home statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct HomeStats {
    /// Coherence requests processed.
    pub requests: u64,
    /// Inform-Epoch family messages received.
    pub informs: u64,
    /// Memory reads served.
    pub mem_reads: u64,
    /// Memory writes (writebacks) applied.
    pub mem_writes: u64,
}

/// One node's home memory controller.
#[derive(Clone)]
pub struct HomeCtrl {
    id: NodeId,
    cfg: HomeConfig,
    protocol: Protocol,
    memory: HashMap<BlockAddr, MemBlock>,
    dir: HashMap<BlockAddr, DirEntry>,
    busy: HashMap<BlockAddr, Txn>,
    blocked: HashMap<BlockAddr, VecDeque<Msg>>,
    checker: Option<HomeChecker>,
    inbox: VecDeque<Msg>,
    snoop_in: VecDeque<(u64, AddrReq)>,
    msg_out: VecDeque<Outbound>,
    out_delayed: Vec<(Cycle, Outbound)>,
    violations: Vec<Violation>,
    stats: HomeStats,
    /// Snooping: current owner per block, reconstructed from the ordered
    /// request stream (the wired-OR owner-signal equivalent).
    snoop_owner: HashMap<BlockAddr, NodeId>,
    /// Snooping: blocks whose writeback data is still in flight, plus the
    /// supplies deferred behind it.
    awaiting_wb: HashSet<BlockAddr>,
    deferred: HashMap<BlockAddr, VecDeque<(NodeId, SnoopKind, u64)>>,
    /// Ring of recently read-shared blocks (fault-injection targeting:
    /// active blocks manifest corruption quickly, like the paper's hot
    /// working sets).
    recent_reads: VecDeque<BlockAddr>,
    /// Ring of recently write-owned blocks (fault-injection targeting).
    recent_owned: VecDeque<BlockAddr>,
    /// Test hook: re-introduces the pre-hardening ack accounting that
    /// counted stray acks against `AwaitUnblock` transactions (the defect
    /// class recovery fault-injection first exposed in the field). Off in
    /// production; the analyzer's `ack-panic` mutant switches it on to
    /// prove the model checker rediscovers the panic statically.
    legacy_strict_acks: bool,
    last_order: u64,
    now: Cycle,
    /// Whether the memory image mutated since the flag was last taken
    /// (incremental checkpointing: the memory part of a home is orders of
    /// magnitude larger than the controller part, so it is logged
    /// separately and only when a write actually landed).
    mem_dirty: bool,
}

/// A captured image of one home's memory array (incremental
/// checkpointing). Opaque outside this crate.
#[derive(Clone, Debug)]
pub struct HomeMemImage {
    blocks: HashMap<BlockAddr, MemBlock>,
}

impl HomeMemImage {
    /// Approximate serialized size of the image, in bytes.
    pub fn approx_bytes(&self) -> u64 {
        (self.blocks.len() * (dvmc_types::BLOCK_BYTES + 16)) as u64
    }
}

impl HomeCtrl {
    /// Creates the home controller for node `id`.
    pub fn new(id: NodeId, protocol: Protocol, cfg: HomeConfig) -> Self {
        HomeCtrl {
            id,
            protocol,
            memory: HashMap::new(),
            dir: HashMap::new(),
            busy: HashMap::new(),
            blocked: HashMap::new(),
            checker: cfg
                .verify
                .then(|| HomeChecker::new(id, cfg.sorter_capacity)),
            inbox: VecDeque::new(),
            snoop_in: VecDeque::new(),
            msg_out: VecDeque::new(),
            out_delayed: Vec::new(),
            violations: Vec::new(),
            stats: HomeStats::default(),
            snoop_owner: HashMap::new(),
            awaiting_wb: HashSet::new(),
            deferred: HashMap::new(),
            recent_reads: VecDeque::new(),
            recent_owned: VecDeque::new(),
            legacy_strict_acks: false,
            last_order: 0,
            cfg,
            now: 0,
            mem_dirty: false,
        }
    }

    /// Re-enables the pre-hardening ack accounting (see the field doc).
    /// Analyzer mutant hook; never set in production configurations.
    pub fn set_legacy_strict_acks(&mut self, on: bool) {
        self.legacy_strict_acks = on;
    }

    /// The home node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    fn logical_now(&self) -> Ts16 {
        match self.protocol {
            Protocol::Directory => Ts16::from_full(self.now >> self.cfg.lt_shift),
            Protocol::Snooping => Ts16::from_full(self.last_order),
        }
    }

    /// Initializes a word of this home's memory (workload setup).
    pub fn poke_word(&mut self, addr: dvmc_types::WordAddr, value: u64) {
        self.mem_dirty = true;
        let entry = self
            .memory
            .entry(addr.block())
            .or_insert_with(MemBlock::zero);
        entry.data.set_word(addr.offset(), value);
        entry.ecc = entry.data.hash();
    }

    /// Feeds this home's memory image — block addresses and their words,
    /// in address order — into `mix` (the cluster-wide memory digest).
    pub fn digest_memory(&self, mix: &mut impl FnMut(u64)) {
        let mut addrs: Vec<BlockAddr> = self.memory.keys().copied().collect();
        addrs.sort_unstable();
        for addr in addrs {
            mix(addr.0);
            let block = &self.memory[&addr].data;
            for w in 0..dvmc_types::WORDS_PER_BLOCK {
                mix(block.word(w));
            }
        }
    }

    /// Reads a word of this home's memory (test/verification use).
    pub fn peek_word(&self, addr: dvmc_types::WordAddr) -> u64 {
        self.memory
            .get(&addr.block())
            .map_or(0, |m| m.data.word(addr.offset()))
    }

    /// Delivers a point-to-point message.
    pub fn deliver(&mut self, msg: Msg) {
        self.inbox.push_back(msg);
    }

    /// Delivers an ordered snoop (snooping protocol).
    pub fn deliver_snoop(&mut self, order: u64, req: AddrReq) {
        self.snoop_in.push_back((order, req));
    }

    /// Pops an outbound message.
    pub fn pop_msg(&mut self) -> Option<Outbound> {
        self.msg_out.pop_front()
    }

    /// Drains detected violations.
    pub fn drain_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Home statistics.
    pub fn stats(&self) -> HomeStats {
        self.stats
    }

    /// The MET checker, if verification is on.
    pub fn checker(&self) -> Option<&HomeChecker> {
        self.checker.as_ref()
    }

    /// Attaches a bounded event ring to the home checker (observability;
    /// disabled by default, no-op without verification).
    pub fn enable_obs(&mut self, capacity: usize) {
        if let Some(chk) = self.checker.as_mut() {
            chk.enable_obs(capacity);
        }
    }

    /// The home checker's event ring, if enabled.
    pub fn obs(&self) -> Option<&dvmc_core::ObsRing> {
        self.checker.as_ref().and_then(HomeChecker::obs)
    }

    /// Whether the controller is idle.
    pub fn is_quiescent(&self) -> bool {
        self.busy.is_empty()
            && self.inbox.is_empty()
            && self.snoop_in.is_empty()
            && self.msg_out.is_empty()
            && self.out_delayed.is_empty()
            && self.blocked.values().all(VecDeque::is_empty)
            && self.awaiting_wb.is_empty()
    }

    /// Appends a canonical, deterministic digest of all protocol-relevant
    /// home state (memory, directory, transactions, queues) for the
    /// static analyzer's state-graph fingerprinting, relabeled through
    /// `r` on the fly (sorted collections are re-sorted under the
    /// relabeled keys; the home's own id is a fixed point of the
    /// symmetry group). Wall-clock time, statistics, fault-targeting
    /// rings, and checker internals are excluded; the analyzer runs with
    /// zero latencies and verification off, so none of those affect
    /// behavior.
    pub fn probe_digest(&self, r: &crate::probe::Relabel, out: &mut Vec<u64>) {
        use crate::probe::{encode_addr_req, encode_msg, snoop_kind_code};
        out.extend([0x803E, self.id.index() as u64, self.last_order]);

        let mut mem: Vec<(&BlockAddr, &MemBlock)> = self.memory.iter().collect();
        mem.sort_by_key(|(a, _)| r.block(**a));
        out.push(mem.len() as u64);
        for (addr, m) in mem {
            out.extend([r.block(*addr).0, u64::from(m.ecc)]);
            out.extend_from_slice(m.data.words());
        }

        let mut dir: Vec<(&BlockAddr, &DirEntry)> = self.dir.iter().collect();
        dir.sort_by_key(|(a, _)| r.block(**a));
        out.push(dir.len() as u64);
        for (addr, e) in dir {
            out.extend([
                r.block(*addr).0,
                e.owner.map_or(u64::MAX, |o| r.node(o).index() as u64),
                r.sharers(e.sharers),
            ]);
        }

        let mut busy: Vec<(&BlockAddr, &Txn)> = self.busy.iter().collect();
        busy.sort_by_key(|(a, _)| r.block(**a));
        out.push(busy.len() as u64);
        for (addr, txn) in busy {
            let kind = match txn.kind {
                TxnKind::GetS => 1,
                TxnKind::GetM => 2,
                TxnKind::Upgrade => 3,
                TxnKind::AwaitUnblock => 4,
            };
            out.extend([
                r.block(*addr).0,
                kind,
                r.node(txn.requester).index() as u64,
                u64::from(txn.need_acks),
                u64::from(txn.need_data),
            ]);
            match &txn.data {
                Some(d) => {
                    out.push(1);
                    out.extend_from_slice(d.words());
                }
                None => out.push(0),
            }
        }

        let mut blocked: Vec<(&BlockAddr, &VecDeque<Msg>)> = self.blocked.iter().collect();
        blocked.sort_by_key(|(a, _)| r.block(**a));
        out.push(blocked.len() as u64);
        for (addr, q) in blocked {
            out.extend([r.block(*addr).0, q.len() as u64]);
            for msg in q {
                encode_msg(msg, r, out);
            }
        }

        let mut owners: Vec<(&BlockAddr, &NodeId)> = self.snoop_owner.iter().collect();
        owners.sort_by_key(|(a, _)| r.block(**a));
        out.push(owners.len() as u64);
        for (addr, o) in owners {
            out.extend([r.block(*addr).0, r.node(*o).index() as u64]);
        }

        let mut wb: Vec<BlockAddr> = self.awaiting_wb.iter().map(|a| r.block(*a)).collect();
        wb.sort_unstable();
        out.push(wb.len() as u64);
        out.extend(wb.iter().map(|a| a.0));

        let mut deferred: Vec<_> = self.deferred.iter().collect();
        deferred.sort_by_key(|(a, _): &(&BlockAddr, _)| r.block(**a));
        out.push(deferred.len() as u64);
        for (addr, q) in deferred {
            out.extend([r.block(*addr).0, q.len() as u64]);
            for (to, kind, order) in q {
                out.extend([r.node(*to).index() as u64, snoop_kind_code(*kind), *order]);
            }
        }

        // Delayed sends, as a sorted multiset (release times excluded:
        // the analyzer runs with zero memory latency).
        let mut delayed: Vec<Vec<u64>> = self
            .out_delayed
            .iter()
            .map(|(_, o)| {
                let mut enc = vec![r.dst(o.dst, &o.msg).index() as u64];
                encode_msg(&o.msg, r, &mut enc);
                enc
            })
            .collect();
        delayed.sort();
        out.push(delayed.len() as u64);
        for enc in delayed {
            out.extend(enc);
        }

        out.push(self.inbox.len() as u64);
        for msg in &self.inbox {
            encode_msg(msg, r, out);
        }
        out.push(self.msg_out.len() as u64);
        for o in &self.msg_out {
            out.push(r.dst(o.dst, &o.msg).index() as u64);
            encode_msg(&o.msg, r, out);
        }
        out.push(self.snoop_in.len() as u64);
        for (order, req) in &self.snoop_in {
            out.push(*order);
            encode_addr_req(req, r, out);
        }
    }

    /// The kinds of in-flight home transactions, for the analyzer's
    /// transient-state audit.
    pub fn probe_busy_kinds(&self) -> Vec<HomeBusyKind> {
        self.busy
            .values()
            .map(|t| match t.kind {
                TxnKind::GetS => HomeBusyKind::GetS,
                TxnKind::GetM => HomeBusyKind::GetM,
                TxnKind::Upgrade => HomeBusyKind::Upgrade,
                TxnKind::AwaitUnblock => HomeBusyKind::AwaitUnblock,
            })
            .collect()
    }

    /// Whether any request is queued behind a busy block (directory).
    pub fn probe_has_blocked(&self) -> bool {
        self.blocked.values().any(|q| !q.is_empty())
    }

    /// Snooping transients: (a writeback is in flight, a supply is
    /// deferred behind one).
    pub fn probe_snoop_transients(&self) -> (bool, bool) {
        (
            !self.awaiting_wb.is_empty(),
            self.deferred.values().any(|q| !q.is_empty()),
        )
    }

    /// Fault injection: flips a bit of a recently read memory block
    /// without updating ECC (falls back to any resident block). Active
    /// blocks are re-fetched soon, so the error manifests the way the
    /// paper's hot-working-set injections do.
    pub fn corrupt_memory(&mut self, idx: usize, bit: usize) -> Option<BlockAddr> {
        let key = if !self.recent_reads.is_empty() {
            self.recent_reads[idx % self.recent_reads.len()]
        } else {
            let n = self.memory.len();
            if n == 0 {
                return None;
            }
            *self.memory.keys().nth(idx % n)?
        };
        let m = self.memory.get_mut(&key)?;
        m.data.flip_bit(bit % 512);
        self.mem_dirty = true;
        Some(key)
    }

    /// Fault injection: corrupts memory-controller state by forgetting
    /// the owner of a random owned block (directory entry or snooping
    /// owner tracker) — leading to stale data or SWMR violations.
    /// Returns the block, if any block was owned.
    pub fn corrupt_forget_owner(&mut self, idx: usize) -> Option<BlockAddr> {
        match self.protocol {
            Protocol::Directory => {
                let candidate = self
                    .recent_owned
                    .iter()
                    .rev()
                    .find(|a| self.dir.get(a).is_some_and(|e| e.owner.is_some()))
                    .copied()
                    .or_else(|| {
                        self.dir
                            .iter()
                            .filter(|(_, e)| e.owner.is_some())
                            .map(|(a, _)| *a)
                            .nth(idx % self.dir.len().max(1))
                    })?;
                self.dir.get_mut(&candidate).expect("exists").owner = None;
                Some(candidate)
            }
            Protocol::Snooping => {
                // Prefer a recently contended block so the corruption
                // manifests; fall back to any owned block.
                let candidate = self
                    .recent_owned
                    .iter()
                    .rev()
                    .find(|a| self.snoop_owner.contains_key(a))
                    .copied()
                    .or_else(|| {
                        let n = self.snoop_owner.len();
                        if n == 0 {
                            None
                        } else {
                            self.snoop_owner.keys().nth(idx % n).copied()
                        }
                    })?;
                self.snoop_owner.remove(&candidate);
                Some(candidate)
            }
        }
    }

    /// Stamps the controller's clock without doing any work — exactly the
    /// state change a tick performs on a quiescent, empty-sorter home.
    /// Used by the event-scheduled kernel when skipping quiescent spans.
    pub fn idle_stamp(&mut self, now: Cycle) {
        self.now = now;
        if let Some(o) = self.checker.as_mut().and_then(HomeChecker::obs_mut) {
            o.set_now(now);
        }
    }

    /// Watermark slack for the periodic sorter drain, in logical ticks
    /// (see the drain commentary in [`tick`](Self::tick)).
    fn drain_slack(&self) -> u16 {
        match self.protocol {
            Protocol::Directory => 64,
            Protocol::Snooping => 512,
        }
    }

    /// The earliest cycle at or after which the periodic watermark drain
    /// could release a queued inform, given wall-clock `now`. Directory
    /// only: its logical clock advances with the wall clock, so a queued
    /// sorter is a future event source even on an otherwise quiescent
    /// machine; snooping logical time only moves with address traffic,
    /// which is an event source in its own right (`None` there, and when
    /// nothing is queued). Conservative: possibly a logical tick early,
    /// never later than the true drain cycle.
    pub fn next_sorter_drain_at(&self, now: Cycle) -> Option<Cycle> {
        if self.protocol != Protocol::Directory {
            return None;
        }
        let oldest = self.checker.as_ref().and_then(HomeChecker::oldest_queued)?;
        let slack = u64::from(self.drain_slack());
        let logical_now = now >> self.cfg.lt_shift;
        let behind = u64::from(Ts16::from_full(logical_now).0.wrapping_sub(oldest.0));
        let remaining = slack.saturating_sub(behind);
        Some((logical_now + remaining) << self.cfg.lt_shift)
    }

    /// Number of Inform-Epoch messages waiting in the epoch sorter.
    pub fn queued(&self) -> usize {
        self.checker.as_ref().map_or(0, HomeChecker::queued)
    }

    /// Takes (and clears) the memory-dirty flag (incremental
    /// checkpointing).
    pub fn take_mem_dirty(&mut self) -> bool {
        std::mem::take(&mut self.mem_dirty)
    }

    /// Captures the controller state with the memory array stripped out
    /// (incremental checkpointing: the memory part is logged separately).
    pub fn ctrl_image(&self) -> HomeCtrl {
        let mut image = self.clone();
        image.memory = HashMap::new();
        image
    }

    /// Restores controller state from a [`ctrl_image`](Self::ctrl_image)
    /// capture, keeping the current memory array in place.
    pub fn restore_ctrl(&mut self, image: &HomeCtrl) {
        let memory = std::mem::take(&mut self.memory);
        *self = image.clone();
        self.memory = memory;
    }

    /// Captures the memory array (incremental checkpointing).
    pub fn mem_image(&self) -> HomeMemImage {
        HomeMemImage {
            blocks: self.memory.clone(),
        }
    }

    /// Restores the memory array from a [`mem_image`](Self::mem_image)
    /// capture.
    pub fn restore_mem(&mut self, image: &HomeMemImage) {
        self.memory = image.blocks.clone();
    }

    /// Approximate serialized size of the controller state (memory array
    /// excluded), in bytes.
    pub fn approx_ctrl_bytes(&self) -> u64 {
        let queues = self.inbox.len()
            + self.snoop_in.len()
            + self.msg_out.len()
            + self.out_delayed.len()
            + self.blocked.values().map(VecDeque::len).sum::<usize>()
            + self.deferred.values().map(VecDeque::len).sum::<usize>();
        (std::mem::size_of::<Self>()
            + self.dir.len() * 24
            + self.busy.len() * (std::mem::size_of::<Txn>() + 16)
            + queues * (dvmc_types::BLOCK_BYTES + 32)
            + (self.snoop_owner.len() + self.awaiting_wb.len()) * 16
            + self.queued() * 32) as u64
    }

    /// Approximate serialized size of the memory array, in bytes.
    pub fn approx_mem_bytes(&self) -> u64 {
        (self.memory.len() * (dvmc_types::BLOCK_BYTES + 16)) as u64
    }

    /// Advances the controller one cycle. Returns whether the periodic MET
    /// scrub mutated checker state this cycle (incremental checkpointing:
    /// a scrub can dirty an otherwise-quiescent home).
    pub fn tick(&mut self, now: Cycle) -> bool {
        self.now = now;
        if let Some(o) = self.checker.as_mut().and_then(HomeChecker::obs_mut) {
            o.set_now(now);
        }
        // Release memory-latency-delayed responses.
        let mut i = 0;
        while i < self.out_delayed.len() {
            if self.out_delayed[i].0 <= now {
                let (_, o) = self.out_delayed.swap_remove(i);
                self.msg_out.push_back(o);
            } else {
                i += 1;
            }
        }
        while let Some((order, req)) = self.snoop_in.pop_front() {
            self.last_order = order;
            self.handle_snoop(req);
        }
        while let Some(msg) = self.inbox.pop_front() {
            self.handle_msg(msg);
        }
        // Opportunistically drain the epoch sorter up to a safe watermark
        // far enough in the logical past to cover worst-case network
        // queueing of a straggler inform (the paper tolerates stragglers
        // as recoverable false positives; we size the slack so error-free
        // runs never pay that recovery). Snooping logical time advances
        // per coherence request (fast), the directory clock per 16
        // cycles, so the slack differs. Skip draining until the clock
        // clears the startup window so the subtraction cannot wrap.
        let slack: u16 = self.drain_slack();
        let logical_now = self.logical_now();
        if logical_now.0 >= slack {
            let watermark = Ts16(logical_now.0 - slack);
            if let Some(chk) = self.checker.as_mut() {
                if let Err(v) = chk.drain_older_than(watermark) {
                    self.violations.push(v);
                }
            }
        }
        // MET stale-timestamp scrub, well within its quarter-window budget.
        let mut scrub_mutated = false;
        if now.is_multiple_of(2048) {
            if let Some(chk) = self.checker.as_mut() {
                scrub_mutated = chk.scrub(logical_now);
            }
        }
        scrub_mutated
    }

    /// Processes all remaining checker state (end of run).
    pub fn flush_checker(&mut self) {
        if let Some(chk) = self.checker.as_mut() {
            if let Err(v) = chk.flush() {
                self.violations.push(v);
            }
        }
    }

    /// Feeds an epoch message straight into the checker (end-of-run audit,
    /// bypassing the network).
    pub fn ingest_epoch(&mut self, e: dvmc_core::coherence::EpochMessage) {
        self.stats.informs += 1;
        if let Some(chk) = self.checker.as_mut() {
            if let Err(v) = chk.push(e) {
                self.violations.push(v);
            }
        }
    }

    fn mem_read(&mut self, addr: BlockAddr) -> Block {
        self.stats.mem_reads += 1;
        // A read of an untouched block materializes its zero image.
        self.mem_dirty |= !self.memory.contains_key(&addr);
        let m = self.memory.entry(addr).or_insert_with(MemBlock::zero);
        let (data, ok) = (m.data, m.data.hash() == m.ecc);
        if self.cfg.verify && !ok {
            self.violations.push(
                CoherenceViolation::EccMismatch {
                    node: self.id,
                    addr,
                }
                .into(),
            );
        }
        data
    }

    fn mem_write(&mut self, addr: BlockAddr, data: Block) {
        self.stats.mem_writes += 1;
        self.mem_dirty = true;
        self.memory.insert(
            addr,
            MemBlock {
                data,
                ecc: data.hash(),
            },
        );
    }

    /// Remembers a read-shared block (fault-injection targeting).
    fn note_read(&mut self, addr: BlockAddr) {
        self.recent_reads.push_back(addr);
        if self.recent_reads.len() > 64 {
            self.recent_reads.pop_front();
        }
    }

    /// Remembers a write-owned block (fault-injection targeting).
    fn note_owned(&mut self, addr: BlockAddr) {
        self.recent_owned.push_back(addr);
        if self.recent_owned.len() > 64 {
            self.recent_owned.pop_front();
        }
    }

    fn send(&mut self, dst: NodeId, msg: Msg) {
        self.msg_out.push_back(Outbound { dst, msg });
    }

    fn send_after_mem(&mut self, dst: NodeId, msg: Msg) {
        self.out_delayed
            .push((self.now + self.cfg.mem_latency as u64, Outbound { dst, msg }));
    }

    fn ensure_met(&mut self, addr: BlockAddr) {
        if self.checker.is_none() {
            return;
        }
        let now = self.logical_now();
        self.mem_dirty |= !self.memory.contains_key(&addr);
        let hash = self
            .memory
            .entry(addr)
            .or_insert_with(MemBlock::zero)
            .data
            .hash();
        self.checker
            .as_mut()
            .expect("checked above")
            .met_mut()
            .ensure_entry(addr, now, hash);
    }

    // ----- directory protocol -------------------------------------------

    fn handle_msg(&mut self, msg: Msg) {
        match msg {
            Msg::Epoch(e) => {
                self.stats.informs += 1;
                if let Some(chk) = self.checker.as_mut() {
                    if let Err(v) = chk.push(e) {
                        self.violations.push(v);
                    }
                }
            }
            Msg::PutM { addr, data, .. } if self.protocol == Protocol::Snooping => {
                // Snooping writeback data arriving at the home (the
                // ordering point was the PutM address-network observation).
                self.mem_write(addr, data);
                self.awaiting_wb.remove(&addr);
                self.run_deferred(addr);
            }
            Msg::GetS { .. } | Msg::GetM { .. } | Msg::PutM { .. } => {
                let addr = msg.addr();
                if self.busy.contains_key(&addr) {
                    self.blocked.entry(addr).or_default().push_back(msg);
                } else {
                    self.start_request(msg);
                }
            }
            Msg::Unblock { addr, .. } => {
                if matches!(
                    self.busy.get(&addr),
                    Some(Txn {
                        kind: TxnKind::AwaitUnblock,
                        ..
                    })
                ) {
                    self.busy.remove(&addr);
                }
                self.pump_blocked(addr);
            }
            Msg::InvAck { from, addr } => self.handle_inv_ack(from, addr),
            Msg::RecallAck { addr, data, .. } => self.handle_recall_ack(addr, data),
            // Responses addressed to caches, and BER coordination traffic;
            // nothing for the home to do.
            _ => {}
        }
    }

    fn start_request(&mut self, msg: Msg) {
        self.stats.requests += 1;
        match msg {
            Msg::GetS { req, addr } => {
                self.ensure_met(addr);
                self.note_read(addr);
                let entry = self.dir.entry(addr).or_default();
                match entry.owner {
                    None => {
                        entry.sharers |= 1 << req.index();
                        let data = self.mem_read(addr);
                        self.send_after_mem(req, Msg::DataS { addr, data });
                        self.await_unblock(addr, req);
                    }
                    Some(owner) => {
                        self.busy.insert(
                            addr,
                            Txn {
                                kind: TxnKind::GetS,
                                requester: req,
                                need_acks: 0,
                                need_data: true,
                                data: None,
                            },
                        );
                        self.send(owner, Msg::RecallShare { addr });
                    }
                }
            }
            Msg::GetM { req, addr } => {
                self.ensure_met(addr);
                self.note_owned(addr);
                let entry = self.dir.entry(addr).or_default();
                let others = entry.sharers & !(1 << req.index());
                let n_acks = others.count_ones();
                match entry.owner {
                    Some(owner) if owner == req => {
                        // O -> M upgrade: invalidate other sharers only. The
                        // upgrader is tracked as the owner alone — listing it
                        // as a sharer too would make a later GetM send it an
                        // Inv alongside the RecallInv, destroying the M copy
                        // before its data can be recalled.
                        if n_acks == 0 {
                            entry.sharers = 0;
                            // No memory involvement: grant directly.
                            self.send(req, Msg::UpgradeAck { addr });
                            self.await_unblock(addr, req);
                        } else {
                            self.busy.insert(
                                addr,
                                Txn {
                                    kind: TxnKind::Upgrade,
                                    requester: req,
                                    need_acks: n_acks,
                                    need_data: false,
                                    data: None,
                                },
                            );
                            self.send_invs(addr, others);
                        }
                    }
                    Some(owner) => {
                        self.busy.insert(
                            addr,
                            Txn {
                                kind: TxnKind::GetM,
                                requester: req,
                                need_acks: n_acks,
                                need_data: true,
                                data: None,
                            },
                        );
                        self.send(owner, Msg::RecallInv { addr });
                        self.send_invs(addr, others);
                    }
                    None => {
                        if n_acks == 0 {
                            entry.owner = Some(req);
                            entry.sharers = 0;
                            let data = self.mem_read(addr);
                            self.send_after_mem(req, Msg::DataM { addr, data });
                            self.await_unblock(addr, req);
                        } else {
                            self.busy.insert(
                                addr,
                                Txn {
                                    kind: TxnKind::GetM,
                                    requester: req,
                                    need_acks: n_acks,
                                    need_data: false,
                                    data: None,
                                },
                            );
                            self.send_invs(addr, others);
                        }
                    }
                }
            }
            Msg::PutM { req, addr, data } => {
                let entry = self.dir.entry(addr).or_default();
                if entry.owner == Some(req) {
                    entry.owner = None;
                    self.mem_write(addr, data);
                    self.send(req, Msg::PutAck { addr, stale: false });
                } else {
                    // Ownership already transferred by a recall.
                    self.send(req, Msg::PutAck { addr, stale: true });
                }
            }
            _ => unreachable!("start_request only handles requests"),
        }
    }

    fn await_unblock(&mut self, addr: BlockAddr, requester: NodeId) {
        self.busy.insert(
            addr,
            Txn {
                kind: TxnKind::AwaitUnblock,
                requester,
                need_acks: 0,
                need_data: false,
                data: None,
            },
        );
    }

    fn send_invs(&mut self, addr: BlockAddr, sharers: u64) {
        for n in 0..self.cfg.nodes {
            if sharers & (1 << n) != 0 {
                self.send(NodeId(n as u8), Msg::Inv { addr });
            }
        }
    }

    fn handle_inv_ack(&mut self, from: NodeId, addr: BlockAddr) {
        if let Some(e) = self.dir.get_mut(&addr) {
            e.sharers &= !(1 << from.index());
        }
        // A transaction that already granted its data and merely awaits
        // the requester's Unblock expects no acks: a stray ack landing
        // here (a duplicate or misroute manufactured by fault injection)
        // completes nothing. The checkers judge such traffic; the
        // protocol engine must only survive it. (`legacy_strict_acks`
        // drops that exemption to reproduce the historical defect.)
        let strict = self.legacy_strict_acks;
        let done = match self.busy.get_mut(&addr) {
            Some(txn) if strict || !matches!(txn.kind, TxnKind::AwaitUnblock) => {
                txn.need_acks = txn.need_acks.saturating_sub(1);
                txn.need_acks == 0 && !(txn.need_data && txn.data.is_none())
            }
            _ => false,
        };
        if done {
            self.complete_txn(addr);
        }
    }

    fn handle_recall_ack(&mut self, addr: BlockAddr, data: Block) {
        // Recalled owner data refreshes memory.
        self.mem_write(addr, data);
        let strict = self.legacy_strict_acks;
        let done = match self.busy.get_mut(&addr) {
            Some(txn) if strict || !matches!(txn.kind, TxnKind::AwaitUnblock) => {
                txn.data = Some(data);
                txn.need_data = false;
                txn.need_acks == 0
            }
            _ => false,
        };
        if done {
            self.complete_txn(addr);
        }
    }

    fn complete_txn(&mut self, addr: BlockAddr) {
        let txn = self.busy.remove(&addr).expect("busy entry exists");
        let requester = txn.requester;
        let entry = self.dir.entry(addr).or_default();
        match txn.kind {
            TxnKind::GetS => {
                // Owner kept the block in O; requester becomes a sharer.
                entry.sharers |= 1 << requester.index();
                let data = txn.data.expect("GetS recall returns data");
                self.send(requester, Msg::DataS { addr, data });
            }
            TxnKind::GetM => {
                entry.owner = Some(requester);
                entry.sharers = 0;
                match txn.data {
                    Some(data) => self.send(requester, Msg::DataM { addr, data }),
                    None => {
                        let data = self.mem_read(addr);
                        self.send_after_mem(requester, Msg::DataM { addr, data });
                    }
                }
            }
            TxnKind::Upgrade => {
                // Owner alone, not owner + sharer (see start_request).
                entry.sharers = 0;
                self.send(requester, Msg::UpgradeAck { addr });
            }
            TxnKind::AwaitUnblock => unreachable!("unblock handled separately"),
        }
        // The block stays busy until the requester confirms its fill, so
        // recalls can never outrun the granted data.
        self.await_unblock(addr, requester);
    }

    /// Serves blocked requests for `addr` until one makes the block busy
    /// again (or none remain).
    fn pump_blocked(&mut self, addr: BlockAddr) {
        while !self.busy.contains_key(&addr) {
            let next = match self.blocked.get_mut(&addr) {
                Some(q) => match q.pop_front() {
                    Some(m) => m,
                    None => break,
                },
                None => break,
            };
            self.start_request(next);
        }
    }

    // ----- snooping protocol ----------------------------------------------

    fn handle_snoop(&mut self, req: AddrReq) {
        let addr = req.addr;
        // Every controller observes every snoop (that is the logical time
        // base), but only the block's home node acts on it.
        if addr.home(self.cfg.nodes) != self.id {
            return;
        }
        self.stats.requests += 1;
        self.ensure_met(addr);
        match req.kind {
            SnoopKind::GetS => {
                self.note_read(addr);
                if !self.snoop_owner.contains_key(&addr) {
                    self.supply_or_defer(addr, req.req, SnoopKind::GetS);
                }
            }
            SnoopKind::GetM => {
                self.note_owned(addr);
                let owner = self.snoop_owner.get(&addr).copied();
                match owner {
                    Some(o) if o == req.req => {
                        // Upgrade: requester already owns the data.
                    }
                    Some(_) => {
                        // The owner supplies directly; just track ownership.
                        self.snoop_owner.insert(addr, req.req);
                    }
                    None => {
                        self.supply_or_defer(addr, req.req, SnoopKind::GetM);
                        self.snoop_owner.insert(addr, req.req);
                    }
                }
            }
            SnoopKind::PutM => {
                if self.snoop_owner.get(&addr) == Some(&req.req) {
                    self.snoop_owner.remove(&addr);
                    self.awaiting_wb.insert(addr);
                }
            }
        }
    }

    fn supply_or_defer(&mut self, addr: BlockAddr, to: NodeId, kind: SnoopKind) {
        let order = self.last_order;
        if self.awaiting_wb.contains(&addr) {
            self.deferred
                .entry(addr)
                .or_default()
                .push_back((to, kind, order));
            return;
        }
        let data = self.mem_read(addr);
        self.send_after_mem(
            to,
            Msg::SnoopData {
                addr,
                data,
                exclusive: kind == SnoopKind::GetM,
                order,
            },
        );
    }

    fn run_deferred(&mut self, addr: BlockAddr) {
        let Some(q) = self.deferred.remove(&addr) else {
            return;
        };
        // All deferred requests saw owner == None at their observation
        // point, so memory supplies each of them. (A deferred GetM set the
        // owner at observation, so at most the last entry is a GetM.)
        for (to, kind, order) in q {
            let data = self.mem_read(addr);
            self.send_after_mem(
                to,
                Msg::SnoopData {
                    addr,
                    data,
                    exclusive: kind == SnoopKind::GetM,
                    order,
                },
            );
        }
    }
}

impl std::fmt::Debug for HomeCtrl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HomeCtrl")
            .field("id", &self.id)
            .field("protocol", &self.protocol)
            .field("blocks", &self.memory.len())
            .field("busy", &self.busy.len())
            .finish_non_exhaustive()
    }
}
