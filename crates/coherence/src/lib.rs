//! # Cache coherence substrate
//!
//! A complete coherent memory system matching the paper's evaluation
//! platforms (Table 6): private L1 + L2 caches per node, a **MOSI
//! directory protocol** over the unordered torus, and a **MOSI snooping
//! protocol** over the ordered broadcast address tree — with the
//! node-side (CET) and home-side (MET) halves of the Cache Coherence
//! checker embedded at the controllers, exactly where §4.3 places them.
//!
//! Design notes (see DESIGN.md for the full fidelity discussion):
//!
//! * The directory is **blocking**: one transaction per block at a time,
//!   with subsequent requests queued at the home. This removes unstable
//!   protocol states without changing anything the checkers observe.
//! * Caches carry **real data** plus a modelled ECC, so CRC-16 hash
//!   checks, replay comparisons, and fault injection are end-to-end
//!   meaningful.
//! * Logical time (§4.3): the snooping system uses the address-network
//!   total order; the directory system uses a slow physical clock
//!   (`cycle >> lt_shift`) with zero skew.

pub mod cache;
pub mod cluster;
pub mod home;
pub mod msg;
pub mod node;
pub mod probe;
pub mod proc;

pub use cache::{CacheArray, Line, Mosi};
pub use cluster::{Cluster, ClusterConfig, DirtyParts};
pub use home::{HomeBusyKind, HomeConfig, HomeCtrl, HomeMemImage, HomeStats};
pub use msg::{AddrReq, Msg, Outbound, SnoopKind};
pub use probe::{home_bound, Relabel};
pub use node::{CacheNode, MshrView, NodeConfig, Protocol};
pub use proc::{CacheStats, ProcReq, ProcResp};
