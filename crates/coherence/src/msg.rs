//! Coherence protocol messages for the directory and snooping systems.

use dvmc_core::coherence::EpochMessage;
use dvmc_types::{Block, BlockAddr, NodeId};

/// Control-message wire size in bytes (address + type + ids).
pub const CTRL_BYTES: u32 = 8;
/// Data-message wire size in bytes (control header + 64-byte block).
pub const DATA_BYTES: u32 = CTRL_BYTES + 64;

/// Messages carried by the point-to-point (torus) network.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Cache → home: request shared (read) permission.
    GetS {
        /// Requesting node.
        req: NodeId,
        /// Requested block.
        addr: BlockAddr,
    },
    /// Cache → home: request exclusive (write) permission.
    GetM {
        /// Requesting node.
        req: NodeId,
        /// Requested block.
        addr: BlockAddr,
    },
    /// Cache → home: dirty writeback (eviction of an M or O block).
    PutM {
        /// Evicting node.
        req: NodeId,
        /// Evicted block.
        addr: BlockAddr,
        /// The dirty data.
        data: Block,
    },
    /// Home → sharer: invalidate your copy and acknowledge.
    Inv {
        /// Block to invalidate.
        addr: BlockAddr,
    },
    /// Sharer → home: invalidation done.
    InvAck {
        /// Acknowledging node.
        from: NodeId,
        /// Invalidated block.
        addr: BlockAddr,
    },
    /// Home → owner: supply data for a reader; keep a read-only copy
    /// (M → O downgrade).
    RecallShare {
        /// Block to supply.
        addr: BlockAddr,
    },
    /// Home → owner: supply data and invalidate (another writer).
    RecallInv {
        /// Block to supply and drop.
        addr: BlockAddr,
    },
    /// Owner → home: recall response with the current data.
    RecallAck {
        /// Responding (former or demoted) owner.
        from: NodeId,
        /// The block.
        addr: BlockAddr,
        /// Current block data.
        data: Block,
    },
    /// Home → requester: data with shared permission.
    DataS {
        /// The block.
        addr: BlockAddr,
        /// Block data.
        data: Block,
    },
    /// Home → requester: data with exclusive permission.
    DataM {
        /// The block.
        addr: BlockAddr,
        /// Block data.
        data: Block,
    },
    /// Home → owner-requester: exclusive permission granted without data
    /// (O → M upgrade; the requester's copy is already current).
    UpgradeAck {
        /// The upgraded block.
        addr: BlockAddr,
    },
    /// Requester → home: the granted data/permission arrived; the home may
    /// begin the next transaction for the block (standard blocking-
    /// directory completion message).
    Unblock {
        /// The requester that completed its fill.
        from: NodeId,
        /// The block.
        addr: BlockAddr,
    },
    /// Home → evictor: writeback acknowledged. `stale` means the evictor
    /// had already lost ownership (its data was transferred by a recall).
    PutAck {
        /// The evicted block.
        addr: BlockAddr,
        /// Whether the writeback was superseded.
        stale: bool,
    },
    /// Snooping: data response (owner or memory → requester).
    SnoopData {
        /// The block.
        addr: BlockAddr,
        /// Block data.
        data: Block,
        /// Whether this carries exclusive (M) or shared (S) permission.
        exclusive: bool,
        /// The address-network order of the request this answers; the
        /// requester matches it against its outstanding request so stale
        /// (redundant) supplies from earlier transactions are discarded.
        order: u64,
    },
    /// Cache → home: a coherence-checker epoch message (§4.3).
    Epoch(EpochMessage),
    /// Backward-error-recovery coordination traffic (SafetyNet checkpoint
    /// sync); carried for bandwidth accounting, ignored by controllers.
    Ber {
        /// Wire size in bytes.
        bytes: u32,
    },
}

impl Msg {
    /// Wire size in bytes for bandwidth accounting.
    pub fn bytes(&self) -> u32 {
        match self {
            Msg::GetS { .. }
            | Msg::GetM { .. }
            | Msg::Inv { .. }
            | Msg::InvAck { .. }
            | Msg::RecallShare { .. }
            | Msg::RecallInv { .. }
            | Msg::UpgradeAck { .. }
            | Msg::Unblock { .. }
            | Msg::PutAck { .. } => CTRL_BYTES,
            Msg::PutM { .. } | Msg::RecallAck { .. } | Msg::DataS { .. } | Msg::DataM { .. }
            | Msg::SnoopData { .. } => DATA_BYTES,
            Msg::Epoch(e) => e.wire_bytes(),
            Msg::Ber { bytes } => *bytes,
        }
    }

    /// The block the message concerns.
    pub fn addr(&self) -> BlockAddr {
        match self {
            Msg::GetS { addr, .. }
            | Msg::GetM { addr, .. }
            | Msg::PutM { addr, .. }
            | Msg::Inv { addr }
            | Msg::InvAck { addr, .. }
            | Msg::RecallShare { addr }
            | Msg::RecallInv { addr }
            | Msg::RecallAck { addr, .. }
            | Msg::DataS { addr, .. }
            | Msg::DataM { addr, .. }
            | Msg::UpgradeAck { addr }
            | Msg::Unblock { addr, .. }
            | Msg::PutAck { addr, .. }
            | Msg::SnoopData { addr, .. } => *addr,
            Msg::Epoch(e) => e.addr(),
            Msg::Ber { .. } => dvmc_types::BlockAddr(0),
        }
    }

    /// Whether this is a checker (Inform-Epoch family) message — used to
    /// split DVCC traffic from protocol traffic in the bandwidth figures.
    pub fn is_checker(&self) -> bool {
        matches!(self, Msg::Epoch(_))
    }
}

/// The request kinds broadcast on the snooping address network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnoopKind {
    /// Read (shared) request.
    GetS,
    /// Write (exclusive) request.
    GetM,
    /// Writeback announcement.
    PutM,
}

/// A request on the ordered snooping address network.
#[derive(Clone, Copy, Debug)]
pub struct AddrReq {
    /// Request kind.
    pub kind: SnoopKind,
    /// Requesting node.
    pub req: NodeId,
    /// Requested block.
    pub addr: BlockAddr,
}

impl AddrReq {
    /// Wire size of an address-network request.
    pub fn bytes(&self) -> u32 {
        CTRL_BYTES
    }
}

/// An outbound point-to-point message with its destination.
#[derive(Clone, Debug)]
pub struct Outbound {
    /// Destination node.
    pub dst: NodeId,
    /// The message.
    pub msg: Msg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_distinguish_ctrl_and_data() {
        let ctrl = Msg::GetS {
            req: NodeId(0),
            addr: BlockAddr(1),
        };
        let data = Msg::DataS {
            addr: BlockAddr(1),
            data: Block::ZERO,
        };
        assert_eq!(ctrl.bytes(), CTRL_BYTES);
        assert_eq!(data.bytes(), DATA_BYTES);
        assert!(!ctrl.is_checker());
        assert_eq!(ctrl.addr(), BlockAddr(1));
    }

    #[test]
    fn epoch_messages_flagged_as_checker_traffic() {
        use dvmc_core::coherence::{EpochKind, InformEpoch};
        use dvmc_types::Ts16;
        let m = Msg::Epoch(
            InformEpoch {
                addr: BlockAddr(4),
                kind: EpochKind::ReadOnly,
                node: NodeId(1),
                start: Ts16(0),
                end: Ts16(1),
                start_hash: 0,
                end_hash: 0,
            }
            .into(),
        );
        assert!(m.is_checker());
        assert_eq!(m.addr(), BlockAddr(4));
        assert!(m.bytes() < CTRL_BYTES + 16);
    }
}
