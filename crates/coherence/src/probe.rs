//! Canonical state encoding for the static analyzer.
//!
//! The model checker in `dvmc-analyzer` fingerprints reachable system
//! states; these helpers turn protocol values into deterministic `u64`
//! token streams. Controllers append their own (private-field) state via
//! `CacheNode::probe_digest` / `HomeCtrl::probe_digest`, which build on
//! these encoders. Encodings are tagged per variant so distinct values
//! can never alias.
//!
//! Every encoder takes a [`Relabel`]: a permutation of the
//! interchangeable identities (cache node ids, block addresses) applied
//! on the fly while encoding. The analyzer's symmetry reduction digests
//! each state once per group element and keeps the lexicographically
//! smallest stream as the canonical form; the identity relabeling
//! reproduces the plain digest.

use crate::cache::Mosi;
use crate::msg::{AddrReq, Msg, SnoopKind};
use crate::proc::ProcReq;
use dvmc_types::{BlockAddr, NodeId, WordAddr};

/// A relabeling of the interchangeable identities of an explored
/// configuration: a permutation of cache node ids and a permutation of
/// the block addresses in play.
///
/// The home controller's identity (node 0's memory-controller slice) is
/// *not* relabeled: every configured block homes to it, so it is a fixed
/// point of the symmetry group. Message destinations are therefore
/// relabeled only for cache-bound messages (see [`home_bound`]).
#[derive(Clone, Debug, Default)]
pub struct Relabel {
    /// `nodes[i]` is the image of cache `NodeId(i)`. Empty = identity.
    nodes: Vec<u8>,
    /// Sorted `(from, to)` block-address pairs. Empty = identity; blocks
    /// outside the map are fixed points.
    blocks: Vec<(u64, u64)>,
}

impl Relabel {
    /// The identity relabeling (allocation-free).
    pub fn identity() -> Self {
        Relabel::default()
    }

    /// Builds a relabeling from a cache-id permutation (`nodes[i]` is the
    /// image of cache `i`) and a set of block mappings.
    pub fn new(nodes: Vec<u8>, blocks: Vec<(BlockAddr, BlockAddr)>) -> Self {
        let mut blocks: Vec<(u64, u64)> = blocks.into_iter().map(|(a, b)| (a.0, b.0)).collect();
        blocks.sort_unstable();
        Relabel { nodes, blocks }
    }

    /// Whether this is the identity relabeling.
    pub fn is_identity(&self) -> bool {
        self.nodes.iter().enumerate().all(|(i, &n)| i == n as usize)
            && self.blocks.iter().all(|&(a, b)| a == b)
    }

    /// The image of a cache node id.
    #[inline]
    pub fn node(&self, n: NodeId) -> NodeId {
        match self.nodes.get(n.index()) {
            Some(&m) => NodeId(m),
            None => n,
        }
    }

    /// The image of a block address.
    #[inline]
    pub fn block(&self, b: BlockAddr) -> BlockAddr {
        match self.blocks.binary_search_by_key(&b.0, |&(from, _)| from) {
            Ok(i) => BlockAddr(self.blocks[i].1),
            Err(_) => b,
        }
    }

    /// The image of a word address (block part relabeled, offset kept).
    #[inline]
    pub fn word(&self, w: WordAddr) -> WordAddr {
        self.block(w.block()).word(w.offset())
    }

    /// The image of a sharer bitmask (bit `i` set iff cache `i` shares).
    pub fn sharers(&self, bits: u64) -> u64 {
        if self.nodes.is_empty() {
            return bits;
        }
        let mut out = 0u64;
        for (i, &m) in self.nodes.iter().enumerate() {
            if bits & (1 << i) != 0 {
                out |= 1 << m;
            }
        }
        // Bits beyond the permutation's domain are fixed points.
        out | (bits & !((1u64 << self.nodes.len()) - 1))
    }

    /// The image of a message destination: home-bound messages keep their
    /// fixed-point destination, cache-bound ones are relabeled.
    #[inline]
    pub fn dst(&self, dst: NodeId, msg: &Msg) -> NodeId {
        if home_bound(msg) {
            dst
        } else {
            self.node(dst)
        }
    }
}

/// Whether a message is consumed by the home controller (mirrors the
/// cluster's and the analyzer's dispatch rule).
pub fn home_bound(msg: &Msg) -> bool {
    matches!(
        msg,
        Msg::GetS { .. }
            | Msg::GetM { .. }
            | Msg::PutM { .. }
            | Msg::InvAck { .. }
            | Msg::RecallAck { .. }
            | Msg::Unblock { .. }
            | Msg::Epoch(_)
    )
}

/// Stable code for a MOSI state.
pub fn mosi_code(s: Mosi) -> u64 {
    match s {
        Mosi::M => 1,
        Mosi::O => 2,
        Mosi::S => 3,
    }
}

/// Stable code for a snoop request kind.
pub fn snoop_kind_code(k: SnoopKind) -> u64 {
    match k {
        SnoopKind::GetS => 1,
        SnoopKind::GetM => 2,
        SnoopKind::PutM => 3,
    }
}

/// Appends a tagged encoding of a processor request.
pub fn encode_proc_req(req: &ProcReq, r: &Relabel, out: &mut Vec<u64>) {
    match req {
        ProcReq::Read { id, addr } => out.extend([1, *id, r.word(*addr).0]),
        ProcReq::Write { id, addr, value } => out.extend([2, *id, r.word(*addr).0, *value]),
        ProcReq::Atomic { id, addr, value } => out.extend([3, *id, r.word(*addr).0, *value]),
        ProcReq::ReplayRead { id, addr } => out.extend([4, *id, r.word(*addr).0]),
        ProcReq::Prefetch { addr, exclusive } => {
            out.extend([5, r.word(*addr).0, u64::from(*exclusive)]);
        }
    }
}

/// Appends a tagged encoding of an address-network request.
pub fn encode_addr_req(req: &AddrReq, r: &Relabel, out: &mut Vec<u64>) {
    out.extend([
        snoop_kind_code(req.kind),
        r.node(req.req).index() as u64,
        r.block(req.addr).0,
    ]);
}

/// Appends a tagged encoding of a protocol message. Epoch messages are
/// encoded coarsely (variant + block): the analyzer runs with
/// verification off, so they never occur in explored states.
pub fn encode_msg(msg: &Msg, r: &Relabel, out: &mut Vec<u64>) {
    match msg {
        Msg::GetS { req, addr } => out.extend([1, r.node(*req).index() as u64, r.block(*addr).0]),
        Msg::GetM { req, addr } => out.extend([2, r.node(*req).index() as u64, r.block(*addr).0]),
        Msg::PutM { req, addr, data } => {
            out.extend([3, r.node(*req).index() as u64, r.block(*addr).0]);
            out.extend_from_slice(data.words());
        }
        Msg::Inv { addr } => out.extend([4, r.block(*addr).0]),
        Msg::InvAck { from, addr } => {
            out.extend([5, r.node(*from).index() as u64, r.block(*addr).0]);
        }
        Msg::RecallShare { addr } => out.extend([6, r.block(*addr).0]),
        Msg::RecallInv { addr } => out.extend([7, r.block(*addr).0]),
        Msg::RecallAck { from, addr, data } => {
            out.extend([8, r.node(*from).index() as u64, r.block(*addr).0]);
            out.extend_from_slice(data.words());
        }
        Msg::DataS { addr, data } => {
            out.extend([9, r.block(*addr).0]);
            out.extend_from_slice(data.words());
        }
        Msg::DataM { addr, data } => {
            out.extend([10, r.block(*addr).0]);
            out.extend_from_slice(data.words());
        }
        Msg::UpgradeAck { addr } => out.extend([11, r.block(*addr).0]),
        Msg::Unblock { from, addr } => {
            out.extend([12, r.node(*from).index() as u64, r.block(*addr).0]);
        }
        Msg::PutAck { addr, stale } => out.extend([13, r.block(*addr).0, u64::from(*stale)]),
        Msg::SnoopData {
            addr,
            data,
            exclusive,
            order,
        } => {
            out.extend([14, r.block(*addr).0, u64::from(*exclusive), *order]);
            out.extend_from_slice(data.words());
        }
        Msg::Epoch(e) => out.extend([15, r.block(e.addr()).0]),
        Msg::Ber { bytes } => out.extend([16, u64::from(*bytes)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvmc_types::{Block, BlockAddr, NodeId};

    fn id() -> Relabel {
        Relabel::identity()
    }

    #[test]
    fn distinct_messages_encode_distinctly() {
        let a = Msg::GetS {
            req: NodeId(0),
            addr: BlockAddr(1),
        };
        let b = Msg::GetM {
            req: NodeId(0),
            addr: BlockAddr(1),
        };
        let c = Msg::Inv { addr: BlockAddr(1) };
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        let mut ec = Vec::new();
        encode_msg(&a, &id(), &mut ea);
        encode_msg(&b, &id(), &mut eb);
        encode_msg(&c, &id(), &mut ec);
        assert_ne!(ea, eb);
        assert_ne!(eb, ec);
        assert_ne!(ea, ec);
    }

    #[test]
    fn data_messages_include_payload() {
        let mut blk = Block::ZERO;
        blk.set_word(0, 42);
        let mut with = Vec::new();
        let mut without = Vec::new();
        encode_msg(
            &Msg::DataM {
                addr: BlockAddr(2),
                data: blk,
            },
            &id(),
            &mut with,
        );
        encode_msg(
            &Msg::DataM {
                addr: BlockAddr(2),
                data: Block::ZERO,
            },
            &id(),
            &mut without,
        );
        assert_ne!(with, without);
    }

    #[test]
    fn relabel_maps_nodes_blocks_words_and_sharers() {
        let r = Relabel::new(
            vec![1, 0, 2],
            vec![(BlockAddr(0), BlockAddr(3)), (BlockAddr(3), BlockAddr(0))],
        );
        assert_eq!(r.node(NodeId(0)), NodeId(1));
        assert_eq!(r.node(NodeId(1)), NodeId(0));
        assert_eq!(r.node(NodeId(2)), NodeId(2));
        assert_eq!(r.block(BlockAddr(3)), BlockAddr(0));
        assert_eq!(r.block(BlockAddr(7)), BlockAddr(7), "unmapped blocks are fixed");
        assert_eq!(r.word(BlockAddr(0).word(5)), BlockAddr(3).word(5));
        // Sharers {0, 2} -> {1, 2}.
        assert_eq!(r.sharers(0b101), 0b110);
        assert!(!r.is_identity());
        assert!(Relabel::identity().is_identity());
        assert!(Relabel::new(vec![0, 1], Vec::new()).is_identity());
    }

    #[test]
    fn home_bound_dst_is_a_fixed_point() {
        let r = Relabel::new(vec![1, 0], Vec::new());
        let to_home = Msg::InvAck {
            from: NodeId(1),
            addr: BlockAddr(0),
        };
        let to_cache = Msg::Inv { addr: BlockAddr(0) };
        assert!(home_bound(&to_home));
        assert!(!home_bound(&to_cache));
        assert_eq!(r.dst(NodeId(0), &to_home), NodeId(0));
        assert_eq!(r.dst(NodeId(0), &to_cache), NodeId(1));
    }

    #[test]
    fn relabeled_encoding_equals_encoding_of_relabeled_message() {
        let r = Relabel::new(vec![2, 0, 1], vec![(BlockAddr(0), BlockAddr(3)), (BlockAddr(3), BlockAddr(0))]);
        let msg = Msg::GetS {
            req: NodeId(0),
            addr: BlockAddr(3),
        };
        let image = Msg::GetS {
            req: NodeId(2),
            addr: BlockAddr(0),
        };
        let mut via_relabel = Vec::new();
        let mut direct = Vec::new();
        encode_msg(&msg, &r, &mut via_relabel);
        encode_msg(&image, &Relabel::identity(), &mut direct);
        assert_eq!(via_relabel, direct);
    }
}
