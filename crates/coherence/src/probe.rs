//! Canonical state encoding for the static analyzer.
//!
//! The model checker in `dvmc-analyzer` fingerprints reachable system
//! states; these helpers turn protocol values into deterministic `u64`
//! token streams. Controllers append their own (private-field) state via
//! `CacheNode::probe_digest` / `HomeCtrl::probe_digest`, which build on
//! these encoders. Encodings are tagged per variant so distinct values
//! can never alias.

use crate::cache::Mosi;
use crate::msg::{AddrReq, Msg, SnoopKind};
use crate::proc::ProcReq;

/// Stable code for a MOSI state.
pub fn mosi_code(s: Mosi) -> u64 {
    match s {
        Mosi::M => 1,
        Mosi::O => 2,
        Mosi::S => 3,
    }
}

/// Stable code for a snoop request kind.
pub fn snoop_kind_code(k: SnoopKind) -> u64 {
    match k {
        SnoopKind::GetS => 1,
        SnoopKind::GetM => 2,
        SnoopKind::PutM => 3,
    }
}

/// Appends a tagged encoding of a processor request.
pub fn encode_proc_req(req: &ProcReq, out: &mut Vec<u64>) {
    match req {
        ProcReq::Read { id, addr } => out.extend([1, *id, addr.0]),
        ProcReq::Write { id, addr, value } => out.extend([2, *id, addr.0, *value]),
        ProcReq::Atomic { id, addr, value } => out.extend([3, *id, addr.0, *value]),
        ProcReq::ReplayRead { id, addr } => out.extend([4, *id, addr.0]),
        ProcReq::Prefetch { addr, exclusive } => out.extend([5, addr.0, u64::from(*exclusive)]),
    }
}

/// Appends a tagged encoding of an address-network request.
pub fn encode_addr_req(req: &AddrReq, out: &mut Vec<u64>) {
    out.extend([
        snoop_kind_code(req.kind),
        req.req.index() as u64,
        req.addr.0,
    ]);
}

/// Appends a tagged encoding of a protocol message. Epoch messages are
/// encoded coarsely (variant + block): the analyzer runs with
/// verification off, so they never occur in explored states.
pub fn encode_msg(msg: &Msg, out: &mut Vec<u64>) {
    match msg {
        Msg::GetS { req, addr } => out.extend([1, req.index() as u64, addr.0]),
        Msg::GetM { req, addr } => out.extend([2, req.index() as u64, addr.0]),
        Msg::PutM { req, addr, data } => {
            out.extend([3, req.index() as u64, addr.0]);
            out.extend_from_slice(data.words());
        }
        Msg::Inv { addr } => out.extend([4, addr.0]),
        Msg::InvAck { from, addr } => out.extend([5, from.index() as u64, addr.0]),
        Msg::RecallShare { addr } => out.extend([6, addr.0]),
        Msg::RecallInv { addr } => out.extend([7, addr.0]),
        Msg::RecallAck { from, addr, data } => {
            out.extend([8, from.index() as u64, addr.0]);
            out.extend_from_slice(data.words());
        }
        Msg::DataS { addr, data } => {
            out.extend([9, addr.0]);
            out.extend_from_slice(data.words());
        }
        Msg::DataM { addr, data } => {
            out.extend([10, addr.0]);
            out.extend_from_slice(data.words());
        }
        Msg::UpgradeAck { addr } => out.extend([11, addr.0]),
        Msg::Unblock { from, addr } => out.extend([12, from.index() as u64, addr.0]),
        Msg::PutAck { addr, stale } => out.extend([13, addr.0, u64::from(*stale)]),
        Msg::SnoopData {
            addr,
            data,
            exclusive,
            order,
        } => {
            out.extend([14, addr.0, u64::from(*exclusive), *order]);
            out.extend_from_slice(data.words());
        }
        Msg::Epoch(e) => out.extend([15, e.addr().0]),
        Msg::Ber { bytes } => out.extend([16, u64::from(*bytes)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvmc_types::{Block, BlockAddr, NodeId};

    #[test]
    fn distinct_messages_encode_distinctly() {
        let a = Msg::GetS {
            req: NodeId(0),
            addr: BlockAddr(1),
        };
        let b = Msg::GetM {
            req: NodeId(0),
            addr: BlockAddr(1),
        };
        let c = Msg::Inv { addr: BlockAddr(1) };
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        let mut ec = Vec::new();
        encode_msg(&a, &mut ea);
        encode_msg(&b, &mut eb);
        encode_msg(&c, &mut ec);
        assert_ne!(ea, eb);
        assert_ne!(eb, ec);
        assert_ne!(ea, ec);
    }

    #[test]
    fn data_messages_include_payload() {
        let mut blk = Block::ZERO;
        blk.set_word(0, 42);
        let mut with = Vec::new();
        let mut without = Vec::new();
        encode_msg(
            &Msg::DataM {
                addr: BlockAddr(2),
                data: blk,
            },
            &mut with,
        );
        encode_msg(
            &Msg::DataM {
                addr: BlockAddr(2),
                data: Block::ZERO,
            },
            &mut without,
        );
        assert_ne!(with, without);
    }
}
