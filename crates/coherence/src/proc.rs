//! The processor ↔ cache-controller interface.

use dvmc_types::WordAddr;

/// A request from the processor core to its cache hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcReq {
    /// A demand load.
    Read {
        /// Request id, echoed in the response.
        id: u64,
        /// Word to read.
        addr: WordAddr,
    },
    /// A committed store draining from the write buffer. The store
    /// *performs* when the response arrives.
    Write {
        /// Request id.
        id: u64,
        /// Word to write.
        addr: WordAddr,
        /// Value to write.
        value: u64,
    },
    /// An atomic swap: writes `value`, returns the old word value.
    Atomic {
        /// Request id.
        id: u64,
        /// Word to access.
        addr: WordAddr,
        /// Value to swap in.
        value: u64,
    },
    /// A verification-stage replay read (bypasses the write buffer by
    /// construction; counted separately for Figure 6).
    ReplayRead {
        /// Request id.
        id: u64,
        /// Word to read.
        addr: WordAddr,
    },
    /// A best-effort prefetch; no response is generated.
    Prefetch {
        /// Word whose block to prefetch.
        addr: WordAddr,
        /// Prefetch for write (GetM) rather than read (GetS).
        exclusive: bool,
    },
}

impl ProcReq {
    /// The request id, if the request produces a response.
    pub fn id(&self) -> Option<u64> {
        match self {
            ProcReq::Read { id, .. }
            | ProcReq::Write { id, .. }
            | ProcReq::Atomic { id, .. }
            | ProcReq::ReplayRead { id, .. } => Some(*id),
            ProcReq::Prefetch { .. } => None,
        }
    }

    /// The word accessed.
    pub fn addr(&self) -> WordAddr {
        match self {
            ProcReq::Read { addr, .. }
            | ProcReq::Write { addr, .. }
            | ProcReq::Atomic { addr, .. }
            | ProcReq::ReplayRead { addr, .. }
            | ProcReq::Prefetch { addr, .. } => *addr,
        }
    }

    /// Whether this request needs write permission.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            ProcReq::Write { .. }
                | ProcReq::Atomic { .. }
                | ProcReq::Prefetch {
                    exclusive: true,
                    ..
                }
        )
    }
}

/// A completed cache request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProcResp {
    /// The id of the completed [`ProcReq`].
    pub id: u64,
    /// For reads/replays: the value read. For writes: the value written.
    /// For atomics: the *old* value.
    pub value: u64,
    /// Whether the access missed in the L1.
    pub l1_miss: bool,
    /// Whether the access required a coherence transaction (L2 miss or
    /// permission upgrade).
    pub coherence_miss: bool,
    /// Whether this was a replay read.
    pub replay: bool,
}

/// Aggregate cache-controller statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Demand accesses that hit in L1.
    pub l1_hits: u64,
    /// Demand accesses that missed in L1.
    pub l1_misses: u64,
    /// Demand accesses that needed a coherence transaction.
    pub coherence_misses: u64,
    /// Replay reads processed.
    pub replay_reads: u64,
    /// Replay reads that missed in L1.
    pub replay_l1_misses: u64,
    /// Replay reads that needed a coherence transaction.
    pub replay_coherence_misses: u64,
    /// Dirty writebacks (PutM) issued.
    pub writebacks: u64,
    /// Inform-Epoch family messages sent to homes.
    pub informs_sent: u64,
    /// Long-running epochs registered open by the scrub FIFO (§4.3
    /// timestamp-wraparound handling).
    pub scrub_opens: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_accessors() {
        let r = ProcReq::Atomic {
            id: 3,
            addr: WordAddr(40),
            value: 9,
        };
        assert_eq!(r.id(), Some(3));
        assert_eq!(r.addr(), WordAddr(40));
        assert!(r.is_write());
        let p = ProcReq::Prefetch {
            addr: WordAddr(8),
            exclusive: false,
        };
        assert_eq!(p.id(), None);
        assert!(!p.is_write());
    }
}
