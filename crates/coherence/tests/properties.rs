//! Property tests of the cache substrate: the set-associative array
//! behaves like a (capacity-bounded) map, and a randomly exercised
//! two-node cluster always converges with silent checkers.

use dvmc_coherence::{CacheArray, Cluster, ClusterConfig, Mosi, ProcReq, Protocol};
use dvmc_types::{Block, BlockAddr, NodeId, WordAddr};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Resident lines always return exactly the last value written to
    /// them; evicted lines disappear entirely (no aliasing).
    #[test]
    fn cache_array_matches_reference_map(
        ops in proptest::collection::vec((0u64..64, 0usize..8, any::<u64>()), 1..300),
    ) {
        let mut cache: CacheArray<Mosi> = CacheArray::new(4, 2);
        let mut reference: HashMap<BlockAddr, Block> = HashMap::new();
        for (blk, offset, value) in ops {
            let addr = BlockAddr(blk);
            if cache.peek(addr).is_none() {
                let data = reference.get(&addr).copied().unwrap_or(Block::ZERO);
                if let Some(victim) = cache.insert(addr, data, Mosi::M) {
                    // Write back the victim into the reference memory.
                    reference.insert(victim.addr, victim.data);
                }
            }
            prop_assert!(cache.write_word(addr, offset, value));
            let mut b = reference.get(&addr).copied().unwrap_or(Block::ZERO);
            b.set_word(offset, value);
            reference.insert(addr, b);
            // Cached contents agree with the reference.
            let line = cache.peek(addr).expect("just written");
            prop_assert_eq!(line.data, reference[&addr]);
            prop_assert!(line.ecc_ok());
        }
        // Every resident line agrees with the reference at the end.
        for line in cache.iter() {
            prop_assert_eq!(line.data, reference[&line.addr]);
        }
    }

    /// Random single-writer traffic over a two-node cluster: the final
    /// memory state equals a sequential reference, and the checkers stay
    /// silent.
    #[test]
    fn cluster_serializes_random_traffic(
        ops in proptest::collection::vec((any::<bool>(), 0u64..96, any::<u64>()), 1..60),
        protocol_snooping in any::<bool>(),
    ) {
        let protocol = if protocol_snooping { Protocol::Snooping } else { Protocol::Directory };
        let mut cluster = Cluster::new(ClusterConfig::paper_default(2, protocol));
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut id = 0u64;
        for (from_node_1, word, value) in ops {
            let node = NodeId(from_node_1 as u8);
            id += 1;
            cluster.submit(node, ProcReq::Write { id, addr: WordAddr(word), value });
            reference.insert(word, value);
            // Complete each write before the next (sequential reference).
            let mut done = false;
            for _ in 0..20_000 {
                cluster.tick();
                if cluster.pop_resp(node).is_some() {
                    done = true;
                    break;
                }
            }
            prop_assert!(done, "write must complete");
        }
        prop_assert!(cluster.run_to_quiescence(500_000));
        let violations = cluster.finish();
        prop_assert!(violations.is_empty(), "{violations:?}");
        // Read back every word through node 0 after a fresh drain.
        for (&word, &value) in &reference {
            id += 1;
            cluster.submit(NodeId(0), ProcReq::Read { id, addr: WordAddr(word) });
            let mut got = None;
            for _ in 0..20_000 {
                cluster.tick();
                if let Some(resp) = cluster.pop_resp(NodeId(0)) {
                    got = Some(resp.value);
                    break;
                }
            }
            prop_assert_eq!(got, Some(value), "word {}", word);
        }
    }
}
