//! End-to-end tests of the coherent memory system under both protocols:
//! data propagation between nodes, sharer invalidation, writebacks, the
//! embedded coherence checker staying silent on correct executions, and
//! firing on injected faults.

use dvmc_coherence::{Cluster, ClusterConfig, ProcReq, ProcResp, Protocol};
use dvmc_core::violation::{CoherenceViolation, Violation};
use dvmc_types::{NodeId, WordAddr};

fn cluster(protocol: Protocol) -> Cluster {
    Cluster::new(ClusterConfig::paper_default(4, protocol))
}

/// Runs a single request to completion and returns the response.
fn run_op(c: &mut Cluster, node: u8, req: ProcReq) -> ProcResp {
    c.submit(NodeId(node), req);
    for _ in 0..10_000 {
        c.tick();
        if let Some(resp) = c.pop_resp(NodeId(node)) {
            return resp;
        }
    }
    panic!("request did not complete within 10k cycles: {req:?}");
}

fn read(c: &mut Cluster, node: u8, addr: u64) -> u64 {
    run_op(
        c,
        node,
        ProcReq::Read {
            id: 0,
            addr: WordAddr(addr),
        },
    )
    .value
}

fn write(c: &mut Cluster, node: u8, addr: u64, value: u64) {
    run_op(
        c,
        node,
        ProcReq::Write {
            id: 0,
            addr: WordAddr(addr),
            value,
        },
    );
}

fn both_protocols(f: impl Fn(Protocol)) {
    f(Protocol::Directory);
    f(Protocol::Snooping);
}

#[test]
fn read_returns_initialized_memory() {
    both_protocols(|p| {
        let mut c = cluster(p);
        c.poke_word(WordAddr(100), 77);
        assert_eq!(read(&mut c, 0, 100), 77, "{p:?}");
        assert_eq!(read(&mut c, 0, 101), 0, "{p:?}: untouched word");
    });
}

#[test]
fn write_then_read_same_node() {
    both_protocols(|p| {
        let mut c = cluster(p);
        write(&mut c, 1, 200, 42);
        assert_eq!(read(&mut c, 1, 200), 42, "{p:?}");
    });
}

#[test]
fn store_propagates_to_other_nodes() {
    both_protocols(|p| {
        let mut c = cluster(p);
        write(&mut c, 0, 300, 1111);
        assert_eq!(read(&mut c, 3, 300), 1111, "{p:?}: dirty data forwarded");
        // And node 0 still reads it (now shared).
        assert_eq!(read(&mut c, 0, 300), 1111, "{p:?}");
    });
}

#[test]
fn write_invalidates_remote_sharers() {
    both_protocols(|p| {
        let mut c = cluster(p);
        c.poke_word(WordAddr(64), 5);
        assert_eq!(read(&mut c, 0, 64), 5);
        assert_eq!(read(&mut c, 1, 64), 5);
        let _ = c.drain_invalidated(NodeId(0));
        write(&mut c, 2, 64, 6);
        assert_eq!(read(&mut c, 0, 64), 6, "{p:?}: sharer sees new value");
        let invs = c.drain_invalidated(NodeId(0));
        assert!(
            invs.contains(&WordAddr(64).block()),
            "{p:?}: node 0 must observe the invalidation, got {invs:?}"
        );
    });
}

#[test]
fn successive_writers_chain_ownership() {
    both_protocols(|p| {
        let mut c = cluster(p);
        for (node, val) in [(0u8, 10u64), (1, 20), (2, 30), (3, 40)] {
            write(&mut c, node, 500, val);
        }
        assert_eq!(read(&mut c, 0, 500), 40, "{p:?}");
    });
}

#[test]
fn atomic_swap_returns_old_value() {
    both_protocols(|p| {
        let mut c = cluster(p);
        c.poke_word(WordAddr(700), 9);
        let resp = run_op(
            &mut c,
            2,
            ProcReq::Atomic {
                id: 7,
                addr: WordAddr(700),
                value: 1,
            },
        );
        assert_eq!(resp.value, 9, "{p:?}: atomic returns old value");
        assert_eq!(read(&mut c, 0, 700), 1, "{p:?}");
    });
}

#[test]
fn atomics_serialize_across_nodes() {
    both_protocols(|p| {
        let mut c = cluster(p);
        // A chain of swaps: each returns the previous value; together they
        // witness a total order of read-modify-writes.
        let mut seen = Vec::new();
        for (node, val) in [(0u8, 1u64), (1, 2), (2, 3), (3, 4), (0, 5)] {
            let resp = run_op(
                &mut c,
                node,
                ProcReq::Atomic {
                    id: 0,
                    addr: WordAddr(900),
                    value: val,
                },
            );
            seen.push(resp.value);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4], "{p:?}");
    });
}

#[test]
fn capacity_evictions_write_back_dirty_data() {
    both_protocols(|p| {
        let mut cfg = ClusterConfig::paper_default(2, p);
        cfg.node.l2_bytes = 4 * 64; // 4 lines
        cfg.node.l2_ways = 2;
        cfg.node.l1_bytes = 2 * 64;
        cfg.node.l1_ways = 2;
        let mut c = Cluster::new(cfg);
        // Write many distinct blocks to force dirty evictions.
        for i in 0..16u64 {
            write(&mut c, 0, i * 8, 1000 + i);
        }
        assert!(c.run_to_quiescence(200_000), "{p:?}: must drain writebacks");
        // All values visible from the other node afterwards.
        for i in 0..16u64 {
            assert_eq!(read(&mut c, 1, i * 8), 1000 + i, "{p:?}: block {i}");
        }
        let wb = c.cache_stats(NodeId(0)).writebacks;
        assert!(wb >= 10, "{p:?}: expected many writebacks, got {wb}");
    });
}

#[test]
fn correct_execution_raises_no_violations() {
    both_protocols(|p| {
        let mut c = cluster(p);
        for i in 0..20u64 {
            let node = (i % 4) as u8;
            write(&mut c, node, i * 8, i);
            let r = read(&mut c, ((i + 1) % 4) as u8, i * 8);
            assert_eq!(r, i);
        }
        assert!(c.run_to_quiescence(100_000), "{p:?}");
        let violations = c.finish();
        assert!(violations.is_empty(), "{p:?}: {violations:?}");
    });
}

#[test]
fn informs_flow_to_homes() {
    both_protocols(|p| {
        let mut c = cluster(p);
        c.poke_word(WordAddr(0), 1);
        assert_eq!(read(&mut c, 1, 0), 1);
        write(&mut c, 2, 0, 2); // invalidates node 1's RO epoch -> inform
        assert_eq!(read(&mut c, 3, 0), 2); // downgrades node 2 -> inform
        assert!(c.run_to_quiescence(100_000));
        let sent: u64 = (0..4).map(|n| c.cache_stats(NodeId(n)).informs_sent).sum();
        assert!(sent >= 2, "{p:?}: informs sent = {sent}");
        let v = c.finish();
        assert!(v.is_empty(), "{p:?}: {v:?}");
    });
}

#[test]
fn l1_hits_do_not_reaccess_l2() {
    let mut c = cluster(Protocol::Directory);
    c.poke_word(WordAddr(64), 3);
    assert_eq!(read(&mut c, 0, 64), 3);
    let misses_before = c.cache_stats(NodeId(0)).l1_misses;
    for _ in 0..5 {
        assert_eq!(read(&mut c, 0, 64), 3);
    }
    let s = c.cache_stats(NodeId(0));
    assert_eq!(s.l1_misses, misses_before, "repeat reads hit L1");
    assert!(s.l1_hits >= 5);
}

#[test]
fn replay_reads_counted_separately() {
    let mut c = cluster(Protocol::Directory);
    c.poke_word(WordAddr(64), 3);
    assert_eq!(read(&mut c, 0, 64), 3);
    let resp = run_op(
        &mut c,
        0,
        ProcReq::ReplayRead {
            id: 1,
            addr: WordAddr(64),
        },
    );
    assert!(resp.replay);
    assert_eq!(resp.value, 3);
    let s = c.cache_stats(NodeId(0));
    assert_eq!(s.replay_reads, 1);
    assert_eq!(s.replay_l1_misses, 0, "line is L1-resident after the read");
}

#[test]
fn corrupted_cache_line_detected_by_ecc() {
    both_protocols(|p| {
        let mut c = cluster(p);
        write(&mut c, 0, 100, 50);
        let hit = c.node_mut(NodeId(0)).corrupt_l2(0, 13);
        assert!(hit.is_some());
        // The next local read checks ECC.
        let _ = read(&mut c, 0, 100);
        let violations = c.drain_violations();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::Coherence(CoherenceViolation::EccMismatch { .. }))),
            "{p:?}: {violations:?}"
        );
    });
}

#[test]
fn corrupted_line_detected_at_epoch_end_via_hash_chain() {
    both_protocols(|p| {
        let mut c = cluster(p);
        write(&mut c, 0, 100, 50);
        let _ = c.node_mut(NodeId(0)).corrupt_l2(0, 13).unwrap();
        // Remote writer forces the corrupt owner's epoch to end; the next
        // epoch's start hash (actual forwarded data) will not match the
        // chain only if forwarding strips corruption — here the corruption
        // travels with the data, so detection is via ECC at the supply
        // point.
        write(&mut c, 1, 100, 60);
        assert!(c.run_to_quiescence(100_000));
        let violations = c.finish();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::Coherence(_))),
            "{p:?}: {violations:?}"
        );
    });
}

#[test]
fn directory_forget_owner_detected() {
    let mut c = cluster(Protocol::Directory);
    write(&mut c, 0, 100, 50);
    // The directory forgets node 0 owns the block...
    let addr = c.home_mut(WordAddr(100).block().home(4)).corrupt_forget_owner(0);
    assert!(addr.is_some());
    // ...so a new writer is granted stale memory data while node 0 still
    // holds an RW epoch. The epoch hash chain / overlap rules must fire.
    write(&mut c, 1, 100, 60);
    write(&mut c, 0, 100, 70); // old owner writes again, still thinks M
    assert!(c.run_to_quiescence(100_000));
    let violations = c.finish();
    assert!(
        violations.iter().any(|v| matches!(v, Violation::Coherence(_))),
        "{violations:?}"
    );
}

#[test]
fn bogus_local_upgrade_detected_by_cet() {
    both_protocols(|p| {
        let mut c = cluster(p);
        c.poke_word(WordAddr(100), 5);
        assert_eq!(read(&mut c, 0, 100), 5); // node 0 holds S
        // Queue the store, then fault the controller's upgrade decision:
        // the line silently flips S -> M instead of issuing a GetM, and
        // the store performs outside a Read-Write epoch.
        c.submit(
            NodeId(0),
            ProcReq::Write {
                id: 0,
                addr: WordAddr(100),
                value: 6,
            },
        );
        let addr = c.node_mut(NodeId(0)).corrupt_upgrade(0);
        assert!(addr.is_some());
        for _ in 0..10_000 {
            c.tick();
            if c.pop_resp(NodeId(0)).is_some() {
                break;
            }
        }
        let violations = c.drain_violations();
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::Coherence(CoherenceViolation::AccessOutsideEpoch { write: true, .. })
            )),
            "{p:?}: {violations:?}"
        );
    });
}

#[test]
fn memory_corruption_detected_on_next_fetch() {
    both_protocols(|p| {
        let mut c = cluster(p);
        c.poke_word(WordAddr(100), 5);
        // Fetch once so the home has the block resident, then corrupt it.
        assert_eq!(read(&mut c, 0, 100), 5);
        let home = WordAddr(100).block().home(4);
        assert!(c.home_mut(home).corrupt_memory(0, 3).is_some());
        // Force a re-fetch from memory: another node writes (invalidating
        // node 0) and writes back, then a third node reads from memory...
        // simplest: evict nothing, just have a second node read - it is
        // served from memory under snooping (owner none) or via DataS.
        let _ = read(&mut c, 1, 100);
        assert!(c.run_to_quiescence(100_000));
        let violations = c.finish();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::Coherence(_))),
            "{p:?}: {violations:?}"
        );
    });
}

#[test]
fn concurrent_requests_from_all_nodes_converge() {
    both_protocols(|p| {
        let mut c = cluster(p);
        // All four nodes hammer the same block plus private blocks.
        for round in 0..10u64 {
            for n in 0..4u8 {
                c.submit(
                    NodeId(n),
                    ProcReq::Write {
                        id: round * 8 + n as u64,
                        addr: WordAddr(8000),
                        value: round * 100 + n as u64,
                    },
                );
                c.submit(
                    NodeId(n),
                    ProcReq::Read {
                        id: round * 8 + n as u64 + 4,
                        addr: WordAddr(9000 + n as u64 * 8),
                    },
                );
            }
            for _ in 0..5000 {
                c.tick();
            }
            for n in 0..4u8 {
                while c.pop_resp(NodeId(n)).is_some() {}
            }
        }
        assert!(c.run_to_quiescence(200_000), "{p:?}");
        let final_val = read(&mut c, 0, 8000);
        assert!(final_val >= 900, "{p:?}: last round value, got {final_val}");
        let v = c.finish();
        assert!(v.is_empty(), "{p:?}: {v:?}");
    });
}
