//! In-system exercise of the 16-bit logical-time machinery (§4.3): with a
//! fast directory logical clock (1 cycle per tick), timestamps wrap
//! several times within a run; long-held blocks cross their scrub
//! deadlines and must be reported open and later closed — all without a
//! single false positive.

use dvmc_coherence::{Cluster, ClusterConfig, ProcReq, Protocol};
use dvmc_types::{NodeId, WordAddr};

#[test]
fn timestamps_wrap_and_scrubbing_keeps_the_checker_sound() {
    let mut cfg = ClusterConfig::paper_default(2, Protocol::Directory);
    // One logical tick per cycle: Ts16 wraps every 65,536 cycles and the
    // scrub deadline (half window) is 32,768 cycles.
    cfg.node.lt_shift = 0;
    cfg.home.lt_shift = 0;
    let mut c = Cluster::new(cfg);

    // Node 0 takes a block Read-Write and holds it hot for several scrub
    // windows while node 1 churns unrelated blocks to keep time flowing.
    let held = WordAddr(0);
    let mut id = 0u64;
    c.submit(NodeId(0), ProcReq::Write { id, addr: held, value: 1 });
    let total_cycles = 150_000u64;
    for cyc in 0..total_cycles {
        // Keep the held block's epoch alive with periodic local writes.
        if cyc % 5_000 == 0 {
            id += 1;
            c.submit(
                NodeId(0),
                ProcReq::Write {
                    id,
                    addr: held,
                    value: cyc,
                },
            );
        }
        // Unrelated traffic from node 1 (several blocks, some reuse).
        if cyc % 200 == 0 {
            id += 1;
            c.submit(
                NodeId(1),
                ProcReq::Write {
                    id,
                    addr: WordAddr(64 + (cyc / 200) % 256 * 8),
                    value: cyc,
                },
            );
        }
        c.tick();
        while c.pop_resp(NodeId(0)).is_some() {}
        while c.pop_resp(NodeId(1)).is_some() {}
    }
    assert!(c.run_to_quiescence(200_000), "must drain");

    // The held epoch out-lived at least two scrub deadlines.
    let opens: u64 = (0..2)
        .map(|n| c.cache_stats(NodeId(n)).scrub_opens)
        .sum();
    assert!(
        opens >= 2,
        "long epochs must be registered open across wraparounds, got {opens}"
    );

    // Hand the block over so the open epoch closes through the full
    // Inform-Closed path, then audit.
    id += 1;
    c.submit(NodeId(1), ProcReq::Read { id, addr: held });
    for _ in 0..50_000 {
        c.tick();
        if c.pop_resp(NodeId(1)).is_some() {
            break;
        }
    }
    assert!(c.run_to_quiescence(200_000));
    let violations = c.finish();
    assert!(
        violations.is_empty(),
        "wraparound must not cause false positives: {violations:?}"
    );
}

#[test]
fn snooping_order_count_wraps_without_false_positives() {
    // Snooping logical time advances one tick per coherence request; a
    // ping-pong between two nodes generates enough requests to cross the
    // 16-bit wrap within a bounded run.
    let mut c = Cluster::new(ClusterConfig::paper_default(2, Protocol::Snooping));
    let mut id = 0u64;
    let mut outstanding: Vec<(NodeId, u64)> = Vec::new();
    // Each iteration ping-pongs a handful of blocks between the nodes:
    // every write is a GetM (2 per block per round-trip).
    let rounds = 70_000u64;
    for r in 0..rounds {
        for (n, node) in [NodeId(0), NodeId(1)].into_iter().enumerate() {
            id += 1;
            c.submit(
                node,
                ProcReq::Write {
                    id,
                    addr: WordAddr((r % 4) * 8),
                    value: r * 2 + n as u64,
                },
            );
            outstanding.push((node, id));
        }
        // Drain responses lazily.
        for _ in 0..400 {
            c.tick();
            outstanding.retain(|(node, _)| c.pop_resp(*node).is_none());
            if outstanding.is_empty() {
                break;
            }
        }
        assert!(outstanding.is_empty(), "round {r} stuck");
    }
    assert!(c.run_to_quiescence(200_000));
    let requests: u64 = (0..2).map(|n| c.home_stats(NodeId(n)).requests).sum();
    assert!(
        requests > 66_000,
        "need enough coherence requests to wrap the 16-bit order count, got {requests}"
    );
    let violations = c.finish();
    assert!(violations.is_empty(), "{violations:?}");
}
