//! # The out-of-order core model
//!
//! A structural model of the paper's processor (Table 7, Figure 2): a
//! reorder buffer with in-order decode/commit/retire and out-of-order load
//! execution; LSQ store-to-load forwarding; a write buffer (absent for SC,
//! in-order for TSO, out-of-order with write merging for PSO/RMO —
//! Table 5); load-order speculation with invalidation-driven squashes; and
//! the DVMC **verification stage** added before retirement, hosting the
//! Uniprocessor Ordering checker's replay and the Allowable Reordering
//! checker's counters (§4.1–4.2).
//!
//! Programs are supplied by an [`InstrStream`]; the `dvmc-workloads`
//! crate implements the commercial-workload stand-ins, and
//! [`ScriptedStream`] supports unit and litmus tests.

pub mod core;
pub mod stream;

pub use crate::core::{Core, CoreConfig, CoreStats};
pub use stream::{Fetch, Instr, InstrStream, ScriptedStream};
