//! The out-of-order core model with the DVMC verification stage.
//!
//! The pipeline (Figure 2): decode → execute (out-of-order loads with
//! load-order speculation, Table 5 optimizations per model) → commit
//! (in order; DVMC replay begins here, §4.1) → verify → retire (stores
//! enter the write buffer, loads/membars *perform*).
//!
//! The per-processor DVMC checkers are embedded exactly where the paper
//! places them: the Uniprocessor Ordering checker's VC is written at
//! commit and consulted by the verification stage's replay; the Allowable
//! Reordering checker receives commit and perform events; artificial
//! membars are injected periodically for lost-operation detection (§4.2).
//!
//! Perform points (§4.1): stores perform when their write-buffer drain
//! completes at the cache; loads perform at verification-pass (models with
//! load ordering) or at execution (RMO); atomics perform at their cache
//! access; membars perform at retirement after their constrained older
//! stores drained.

use crate::stream::{Fetch, Instr, InstrStream};
use dvmc_coherence::{ProcReq, ProcResp};
use dvmc_consistency::{CommitRecord, MembarMask, Model, OpClass};
use dvmc_core::violation::{UniprocViolation, Violation};
use dvmc_core::{ReorderChecker, ReplayLookup, UniprocChecker, UniprocCheckerConfig};
use dvmc_types::{BlockAddr, Cycle, SeqNum, WordAddr};
use std::collections::{HashMap, VecDeque};

/// Core configuration (Table 7 defaults).
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Consistency model the core runs.
    pub model: Model,
    /// Decode/commit width.
    pub width: u32,
    /// Reorder buffer capacity.
    pub rob_size: usize,
    /// Write buffer capacity (entries).
    pub wb_size: usize,
    /// Maximum outstanding demand loads.
    pub max_loads: u32,
    /// Maximum outstanding write-buffer drains (non-TSO models).
    pub max_drains: u32,
    /// Whether the Uniprocessor Ordering + Allowable Reordering checkers
    /// (and the verification pipeline stage) are active.
    pub dvmc: bool,
    /// Verification-stage depth in cycles (added pipeline stage, §4.1).
    pub verify_latency: u32,
    /// Operations entering verification per cycle.
    pub verify_width: u32,
    /// Verification cache capacity in words (32–256 bytes, §6.3).
    pub vc_words: usize,
    /// Cycles between artificial membar injections (≈100k, §4.2).
    pub membar_injection_period: u64,
    /// Issue exclusive prefetches for decoded stores.
    pub prefetch: bool,
    /// Record every committed operation (sequence, class, value) for
    /// litmus tests and trace-level debugging.
    pub record_commits: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            model: Model::Tso,
            width: 4,
            rob_size: 64,
            wb_size: 32,
            max_loads: 4,
            max_drains: 4,
            dvmc: true,
            verify_latency: 2,
            verify_width: 4,
            vc_words: 32,
            membar_injection_period: 100_000,
            prefetch: true,
            record_commits: false,
        }
    }
}

/// Core statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreStats {
    /// Memory/barrier operations retired.
    pub retired_ops: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Atomics retired.
    pub atomics: u64,
    /// Membars/stbars retired (program ones).
    pub membars: u64,
    /// Load-order mis-speculation squashes.
    pub squashes: u64,
    /// Artificial membars injected.
    pub injected_membars: u64,
    /// Replay mismatches forgiven because a remote write intervened
    /// between the load's perform point and its replay.
    pub forgiven_replays: u64,
    /// Cycles retirement stalled on a full write buffer.
    pub wb_full_stalls: u64,
    /// Cycles commit stalled on a full verification cache.
    pub vc_full_stalls: u64,
    /// Demand-load L1 misses observed.
    pub exec_l1_misses: u64,
    /// Demand-load coherence misses observed.
    pub exec_coherence_misses: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EState {
    Waiting,
    Issued,
    Executed,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VState {
    NotStarted,
    ReplayWait,
    Done,
}

#[derive(Clone, Debug)]
struct RobEntry {
    seq: SeqNum,
    class: OpClass,
    addr: WordAddr,
    store_value: u64,
    /// Open-loop arrival stamp carried by the operation that completes a
    /// service request (its final publish store); commit closes the
    /// arrival→commit queueing-delay measurement.
    arrived_at: Option<Cycle>,
    state: EState,
    committed: bool,
    vstate: VState,
    verify_done_at: Cycle,
    value: u64,
    gen: u64,
    performed: bool,
    remote_write_observed: bool,
    /// The load's value came from LSQ or write-buffer forwarding, not
    /// from the cache: immune to invalidations (forwarding from an own
    /// program-order-earlier store is legal under every model), but its
    /// commit-time replay may legitimately see a newer remote value.
    forwarded: bool,
    /// SC mode: the store's perform-at-retire write has been issued.
    retire_issued: bool,
}

#[derive(Clone, Debug)]
struct WbEntry {
    seqs: Vec<SeqNum>,
    addr: WordAddr,
    value: u64,
    model: Model,
    issued: bool,
}

#[derive(Clone, Copy, Debug)]
enum Purpose {
    Exec,
    AtomicExec,
    Replay,
    Drain,
    /// SC store performing at its commit stall.
    ScStore,
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    purpose: Purpose,
    seq: SeqNum,
    gen: u64,
}

/// The out-of-order core model for one hardware thread.
///
/// `Clone` deep-copies the whole core — ROB, write buffer, checkers,
/// commit log, and the instruction stream (via
/// [`InstrStream::clone_box`]) — which is exactly the per-core state a
/// BER checkpoint snapshots and a rollback restores.
#[derive(Clone)]
pub struct Core {
    cfg: CoreConfig,
    stream: Box<dyn InstrStream + Send>,
    rob: VecDeque<RobEntry>,
    wb: VecDeque<WbEntry>,
    reorder: Option<ReorderChecker>,
    uniproc: Option<UniprocChecker>,
    next_seq: SeqNum,
    next_req: u64,
    pending: HashMap<u64, Pending>,
    out: Vec<ProcReq>,
    decode_delay: u32,
    awaiting: Option<SeqNum>,
    last_mem_seq: Option<SeqNum>,
    recent_values: VecDeque<(SeqNum, u64)>,
    gen_counter: u64,
    outstanding_loads: u32,
    outstanding_drains: u32,
    last_injection: Cycle,
    violations: Vec<Violation>,
    stats: CoreStats,
    commit_log: Vec<CommitRecord>,
    lsq_fault_armed: bool,
    stream_done: bool,
    now: Cycle,
    /// Arrival→commit queueing delays closed since the last drain
    /// (open-loop service latency; drained at window boundaries).
    queue_delays: Vec<Cycle>,
    /// A requested consistency-model switch, applied at the next quiescent
    /// point (service mode switches models mid-run; see DESIGN.md §13).
    pending_model: Option<Model>,
}

impl Core {
    /// Creates a core running `stream` under `cfg`.
    pub fn new(cfg: CoreConfig, stream: Box<dyn InstrStream + Send>) -> Self {
        let uniproc_cfg = UniprocCheckerConfig {
            // The RMO optimization of §4.1: cache load values in the VC.
            cache_load_values: cfg.model == Model::Rmo,
            load_value_capacity: cfg.vc_words,
        };
        Core {
            stream,
            rob: VecDeque::new(),
            wb: VecDeque::new(),
            reorder: cfg.dvmc.then(ReorderChecker::new),
            uniproc: cfg.dvmc.then(|| UniprocChecker::new(uniproc_cfg)),
            next_seq: SeqNum(0),
            next_req: 0,
            pending: HashMap::new(),
            out: Vec::new(),
            decode_delay: 0,
            awaiting: None,
            last_mem_seq: None,
            recent_values: VecDeque::new(),
            gen_counter: 0,
            outstanding_loads: 0,
            outstanding_drains: 0,
            last_injection: 0,
            violations: Vec::new(),
            stats: CoreStats::default(),
            commit_log: Vec::new(),
            lsq_fault_armed: false,
            stream_done: false,
            now: 0,
            queue_delays: Vec::new(),
            pending_model: None,
            cfg,
        }
    }

    /// The consistency model the core currently enforces.
    pub fn model(&self) -> Model {
        self.cfg.model
    }

    /// Requests a switch to `model`, applied at the next cycle where the
    /// ROB, write buffer, and outstanding-request table are all empty. At
    /// that point every prior operation has committed, performed, and been
    /// verified, so the checkers' ordering tables carry no cross-model
    /// state. The one construction-time binding that does NOT follow the
    /// switch is the VC's load-value caching (`cache_load_values`), fixed
    /// at build from the initial model (§4.1 RMO optimization): switching
    /// into RMO later runs without the optimization, which is
    /// conservative, never unsound.
    pub fn request_model_switch(&mut self, model: Model) {
        if model == self.cfg.model && self.pending_model.is_none() {
            return;
        }
        self.pending_model = Some(model);
    }

    fn apply_pending_model(&mut self) {
        let Some(model) = self.pending_model else {
            return;
        };
        if !(self.rob.is_empty() && self.wb.is_empty() && self.pending.is_empty()) {
            return;
        }
        self.pending_model = None;
        self.cfg.model = model;
        self.stream.switch_model(model);
    }

    /// Takes the committed-operation log (requires
    /// [`CoreConfig::record_commits`]).
    pub fn take_commit_log(&mut self) -> Vec<CommitRecord> {
        std::mem::take(&mut self.commit_log)
    }

    /// The committed-operation log, without draining it (requires
    /// [`CoreConfig::record_commits`]). The run report clones this so the
    /// offline oracle can re-verify the execution after the fact.
    pub fn commit_log(&self) -> &[CommitRecord] {
        &self.commit_log
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Replay statistics from the Uniprocessor Ordering checker.
    pub fn replay_stats(&self) -> dvmc_core::UniprocStats {
        self.uniproc.as_ref().map(dvmc_core::UniprocChecker::stats).unwrap_or_default()
    }

    /// Attaches bounded event rings to both per-processor checkers
    /// (observability; disabled by default, no-op without DVMC).
    pub fn enable_obs(&mut self, capacity: usize) {
        if let Some(u) = self.uniproc.as_mut() {
            u.enable_obs(capacity);
        }
        if let Some(r) = self.reorder.as_mut() {
            r.enable_obs(capacity);
        }
    }

    /// The enabled event rings of this core's checkers (uniprocessor
    /// ordering first, then allowable reordering).
    pub fn obs_rings(&self) -> Vec<&dvmc_core::ObsRing> {
        self.uniproc
            .as_ref()
            .and_then(UniprocChecker::obs)
            .into_iter()
            .chain(self.reorder.as_ref().and_then(ReorderChecker::obs))
            .collect()
    }

    /// Transactions completed by the program.
    pub fn transactions(&self) -> u64 {
        self.stream.transactions()
    }

    /// Drains detected violations.
    pub fn drain_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Whether the program finished and the machine drained.
    pub fn is_done(&self) -> bool {
        self.stream_done && self.rob.is_empty() && self.wb.is_empty() && self.pending.is_empty()
    }

    /// One-line internal state dump for debugging stuck systems.
    pub fn dump(&self) -> String {
        format!(
            "rob={} front={:?} wb={:?} pending={} awaiting={:?} done={} decode_delay={}",
            self.rob.len(),
            self.rob.front().map(|e| (e.seq, e.class, e.addr, e.state, e.committed)),
            self.wb.iter().map(|w| (w.addr, w.issued)).collect::<Vec<_>>(),
            self.pending.len(),
            self.awaiting,
            self.stream_done,
            self.decode_delay,
        )
    }

    /// Memory operations retired (progress metric for watchdogs).
    pub fn retired_ops(&self) -> u64 {
        self.stats.retired_ops
    }

    /// Takes the arrival→commit queueing delays closed since the last
    /// drain (open-loop service latency).
    pub fn take_queue_delays(&mut self) -> Vec<Cycle> {
        std::mem::take(&mut self.queue_delays)
    }

    /// Approximate serialized size of the core's architectural state, in
    /// bytes (checkpoint accounting: queued entries are charged per item,
    /// everything else at the struct's resident size).
    pub fn approx_state_bytes(&self) -> u64 {
        let queued = self.rob.len()
            + self.wb.len()
            + self.pending.len()
            + self.recent_values.len()
            + self.commit_log.len()
            + self.queue_delays.len();
        (std::mem::size_of::<Self>() + queued * 48) as u64
    }

    /// Whether a tick at `now` would leave the core bit-identical except
    /// for its clock and decode-delay countdown — no decode, issue,
    /// commit, retire, drain, or membar injection can happen. The
    /// event-scheduled kernel may only skip cycles where every core is
    /// inert.
    pub fn is_inert_at(&self, now: Cycle) -> bool {
        if self.is_done() {
            return true;
        }
        self.rob.is_empty()
            && self.wb.is_empty()
            && self.pending.is_empty()
            && self.pending_model.is_none()
            && (self.stream_done || self.decode_delay > 0)
            && !self.membar_due_at(now)
    }

    /// The earliest cycle at or after `now` at which this core can do
    /// observable work, or `None` if the core is done and will never work
    /// again. Exact for idle cores (the decode-delay countdown and the
    /// membar-injection cadence are the only self-timed wake sources);
    /// `now` for busy ones.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        if self.is_done() {
            return None;
        }
        if !self.rob.is_empty()
            || !self.wb.is_empty()
            || !self.pending.is_empty()
            || self.pending_model.is_some()
            || (self.decode_delay == 0 && !self.stream_done)
        {
            return Some(now);
        }
        // Idle: queues empty, stream not done (else is_done), counting
        // down decode_delay. Wake when the countdown expires or the
        // membar-injection cadence fires, whichever is earlier.
        let mut at = now.saturating_add(u64::from(self.decode_delay));
        if self.cfg.dvmc && self.cfg.membar_injection_period != 0 {
            let due = self
                .last_injection
                .saturating_add(self.cfg.membar_injection_period);
            at = at.min(due.max(now));
        }
        Some(at)
    }

    /// Applies the state change `k` consecutive inert ticks would have
    /// made: the decode-delay countdown advances by `k`. The clock stamp
    /// the skipped ticks would have left is reapplied by the next real
    /// tick before any observable work.
    pub fn catch_up(&mut self, k: u64) {
        self.decode_delay = self
            .decode_delay
            .saturating_sub(u32::try_from(k).unwrap_or(u32::MAX));
    }

    fn membar_due_at(&self, now: Cycle) -> bool {
        self.cfg.dvmc
            && self.cfg.membar_injection_period != 0
            && now.saturating_sub(self.last_injection) >= self.cfg.membar_injection_period
    }

    /// Completes a cache request previously emitted by [`tick`](Self::tick).
    pub fn deliver(&mut self, resp: ProcResp) {
        let Some(p) = self.pending.remove(&resp.id) else {
            return;
        };
        match p.purpose {
            Purpose::Exec => {
                self.outstanding_loads = self.outstanding_loads.saturating_sub(1);
                let model = self.cfg.model;
                let Some(e) = self.rob.iter_mut().find(|e| e.seq == p.seq) else {
                    return;
                };
                if e.gen != p.gen {
                    return; // squashed; stale response
                }
                e.state = EState::Executed;
                e.value = resp.value;
                if resp.l1_miss {
                    self.stats.exec_l1_misses += 1;
                }
                if resp.coherence_miss {
                    self.stats.exec_coherence_misses += 1;
                }
                if model == Model::Rmo {
                    self.perform_load_now(p.seq);
                }
            }
            Purpose::AtomicExec => {
                let seq = p.seq;
                if let Some(e) = self.rob.iter_mut().find(|e| e.seq == seq) {
                    e.state = EState::Executed;
                    e.value = resp.value;
                    e.performed = true;
                }
                if let Some(r) = self.reorder.as_mut() {
                    if let Err(v) = r.op_performed(seq, OpClass::Atomic, self.cfg.model) {
                        self.violations.push(v);
                    }
                }
            }
            Purpose::Replay => {
                let Some(e) = self.rob.iter_mut().find(|e| e.seq == p.seq) else {
                    return;
                };
                e.vstate = VState::Done;
                e.verify_done_at = self.now;
                let forgiven = e.remote_write_observed;
                let (addr, original) = (e.addr, e.value);
                if let Some(u) = self.uniproc.as_mut() {
                    match u.replay_load_from_cache(addr, original, resp.value) {
                        Ok(()) => {}
                        Err(Violation::Uniproc(UniprocViolation::LoadMismatch { .. }))
                            if forgiven =>
                        {
                            // A remote store hit this block after the load
                            // performed; the replayed value is legitimately
                            // newer than the original (§4.1 speculation
                            // window).
                            self.stats.forgiven_replays += 1;
                        }
                        Err(v) => self.violations.push(v),
                    }
                }
            }
            Purpose::Drain => {
                self.outstanding_drains = self.outstanding_drains.saturating_sub(1);
                let idx = self
                    .wb
                    .iter()
                    .position(|w| w.issued && w.seqs.contains(&p.seq));
                let Some(idx) = idx else {
                    return;
                };
                let entry = self.wb.remove(idx).expect("index valid");
                self.store_performed(&entry);
            }
            Purpose::ScStore => {
                // SC store performing at its commit stall. The reorder
                // checker sees the perform now; the VC settles when the
                // (stalled) commit executes its store_committed +
                // store_performed pair.
                if let Some(e) = self.rob.iter_mut().find(|e| e.seq == p.seq) {
                    e.performed = true;
                }
                if let Some(r) = self.reorder.as_mut() {
                    if let Err(v) = r.op_performed(p.seq, OpClass::Store, self.cfg.model) {
                        self.violations.push(v);
                    }
                }
            }
        }
    }

    /// Reports blocks invalidated by remote writers: squashes speculative
    /// loads and marks committed-but-unreplayed loads (§4.1).
    pub fn note_invalidations(&mut self, blocks: &[BlockAddr]) {
        if blocks.is_empty() {
            return;
        }
        let speculative_loads = self.cfg.model.loads_ordered();
        // Mark committed (or RMO-performed, possibly still in-flight)
        // loads whose replay is pending. Forwarded loads are marked even
        // before commit: their value came from an own program-order
        // store, not the invalidated line, so re-executing them is
        // pointless — but their replay may now legitimately read a newer
        // remote value (§4.1 speculation window).
        for e in &mut self.rob {
            if e.class == OpClass::Load
                && matches!(e.state, EState::Executed | EState::Issued)
                && (e.committed || !speculative_loads || e.forwarded)
                && e.vstate != VState::Done
                && blocks.contains(&e.addr.block())
            {
                e.remote_write_observed = true;
            }
        }
        if !speculative_loads {
            return;
        }
        // Squash from the oldest matching uncommitted load whose value is
        // bound or in flight (an issued load's value returns from a
        // pre-invalidation cache read and is equally stale). Forwarded
        // loads are skipped: their binding is invalidation-immune.
        let first = self.rob.iter().position(|e| {
            e.class == OpClass::Load
                && !e.committed
                && !e.forwarded
                && matches!(e.state, EState::Executed | EState::Issued)
                && blocks.contains(&e.addr.block())
        });
        if let Some(idx) = first {
            self.squash_from(idx);
        }
    }

    fn squash_from(&mut self, idx: usize) {
        self.stats.squashes += 1;
        self.gen_counter += 1;
        let gen = self.gen_counter;
        for e in self.rob.iter_mut().skip(idx) {
            debug_assert!(!e.committed, "cannot squash committed operations");
            e.gen = gen;
            e.remote_write_observed = false;
            match e.class {
                OpClass::Load => {
                    if e.state == EState::Issued {
                        self.outstanding_loads = self.outstanding_loads.saturating_sub(1);
                    }
                    e.state = EState::Waiting;
                    e.value = 0;
                    e.performed = false;
                    e.forwarded = false;
                }
                OpClass::Atomic => {
                    // Atomics only issue at the ROB head and are never
                    // younger than a squashing load in flight.
                    e.state = if e.state == EState::Issued {
                        e.state
                    } else {
                        EState::Waiting
                    };
                }
                _ => {
                    e.state = EState::Executed;
                }
            }
        }
    }

    /// Advances one cycle; returns the cache requests to submit.
    pub fn tick(&mut self, now: Cycle) -> Vec<ProcReq> {
        self.now = now;
        // Stamp the checkers' event rings: checkers never learn physical
        // time themselves.
        if let Some(o) = self.uniproc.as_mut().and_then(UniprocChecker::obs_mut) {
            o.set_now(now);
        }
        if let Some(o) = self.reorder.as_mut().and_then(ReorderChecker::obs_mut) {
            o.set_now(now);
        }
        self.apply_pending_model();
        self.retire();
        self.drain_wb();
        self.commit();
        self.execute();
        self.decode();
        self.inject_membar();
        std::mem::take(&mut self.out)
    }

    // ----- decode --------------------------------------------------------

    fn decode(&mut self) {
        if self.decode_delay > 0 {
            self.decode_delay -= 1;
            return;
        }
        for _ in 0..self.cfg.width {
            if self.stream_done || self.awaiting.is_some() || self.rob.len() >= self.cfg.rob_size {
                break;
            }
            match self.stream.next_at(self.now) {
                Fetch::Instr(Instr::Delay(d)) => {
                    self.decode_delay = d;
                    break;
                }
                Fetch::Instr(Instr::Mem {
                    class,
                    addr,
                    store_value,
                }) => {
                    let arrived_at = self.stream.last_arrival();
                    self.push_entry(class, addr, store_value, arrived_at);
                }
                Fetch::AwaitLast => {
                    // Nothing to await if no memory op was ever emitted.
                    if let Some(seq) = self.last_mem_seq {
                        if let Some(&(_, v)) =
                            self.recent_values.iter().find(|&&(s, _)| s == seq)
                        {
                            self.stream.deliver(seq, v);
                        } else {
                            self.awaiting = Some(seq);
                            break;
                        }
                    }
                }
                Fetch::Done => {
                    self.stream_done = true;
                    break;
                }
            }
        }
    }

    fn push_entry(
        &mut self,
        class: OpClass,
        addr: WordAddr,
        store_value: u64,
        arrived_at: Option<Cycle>,
    ) {
        let seq = self.next_seq;
        self.next_seq = seq.next();
        self.last_mem_seq = Some(seq);
        let state = match class {
            OpClass::Load | OpClass::Atomic => EState::Waiting,
            // Stores and barriers are "executed" as soon as decoded: their
            // effects happen at or after commit.
            OpClass::Store | OpClass::Membar(_) | OpClass::Stbar => EState::Executed,
        };
        if self.cfg.prefetch && class.writes() {
            self.out.push(ProcReq::Prefetch {
                addr,
                exclusive: true,
            });
        }
        self.rob.push_back(RobEntry {
            seq,
            class,
            addr,
            store_value,
            arrived_at,
            state,
            committed: false,
            vstate: VState::NotStarted,
            verify_done_at: 0,
            value: 0,
            gen: self.gen_counter,
            performed: false,
            remote_write_observed: false,
            forwarded: false,
            retire_issued: false,
        });
    }

    fn inject_membar(&mut self) {
        // Inject while any work remains (including a drained stream with
        // stores still in flight — exactly when a lost store needs
        // flushing out, §4.2).
        if !self.cfg.dvmc
            || self.cfg.membar_injection_period == 0
            || self.now - self.last_injection < self.cfg.membar_injection_period
            || self.rob.len() >= self.cfg.rob_size
            || self.is_done()
        {
            return;
        }
        self.last_injection = self.now;
        self.stats.injected_membars += 1;
        self.push_entry(OpClass::Membar(MembarMask::ALL), WordAddr(0), 0, None);
    }

    // ----- execute -------------------------------------------------------

    fn execute(&mut self) {
        // Atomic at the ROB head: issue when the machine ahead of it is
        // drained (its store half must not bypass buffered stores under
        // SC/TSO).
        let issue_atomic = match self.rob.front() {
            Some(e) if e.class == OpClass::Atomic && e.state == EState::Waiting => {
                match self.cfg.model {
                    // The atomic's store half must not bypass buffered
                    // stores under store-store-ordered models...
                    Model::Sc | Model::Tso | Model::Pc => self.wb.is_empty(),
                    // ...and must never bypass a buffered store to the
                    // same word (uniprocessor ordering).
                    Model::Pso | Model::Rmo => {
                        let a = e.addr;
                        !self.wb.iter().any(|w| w.addr == a)
                    }
                }
            }
            _ => false,
        };
        if issue_atomic {
            let (seq, addr, value, gen) = {
                let e = self.rob.front_mut().expect("checked");
                e.state = EState::Issued;
                (e.seq, e.addr, e.store_value, e.gen)
            };
            let id = self.alloc_req(Purpose::AtomicExec, seq, gen);
            self.out.push(ProcReq::Atomic { id, addr, value });
        }

        // Loads issue out of order.
        let mut to_issue: Vec<usize> = Vec::new();
        let mut membar_block = false;
        for (i, e) in self.rob.iter().enumerate() {
            if e.class.is_barrier() && self.cfg.model == Model::Rmo {
                // Under RMO loads perform at execution, so a membar with
                // #LL or #SL holds younger loads at issue (Table 4).
                let holds_loads = e
                    .class
                    .membar_mask()
                    .intersects(MembarMask::LL | MembarMask::SL);
                if holds_loads && !e.performed {
                    membar_block = true;
                }
            }
            if membar_block {
                continue;
            }
            if e.class == OpClass::Load && e.state == EState::Waiting {
                to_issue.push(i);
            }
        }
        for i in to_issue {
            if self.outstanding_loads >= self.cfg.max_loads {
                break;
            }
            self.issue_load(i);
        }
    }

    fn issue_load(&mut self, idx: usize) {
        let (seq, addr, gen) = {
            let e = &self.rob[idx];
            (e.seq, e.addr, e.gen)
        };
        // LSQ forwarding: youngest older store/atomic to the same word.
        // A write that has already performed no longer forwards — its
        // value drained to the coherent cache, which a remote writer may
        // since have overwritten, and the load would carry the stale
        // value with no invalidation left to set its
        // `remote_write_observed` mark (the §4.1 forgiveness window opens
        // at execution). Once performed, the cache is the authority.
        let lsq = self.rob.iter().take(idx).rev().find_map(|e| {
            let perform_in_flight = e.retire_issued
                || (e.class == OpClass::Atomic && e.state == EState::Issued);
            (e.class.writes() && e.addr == addr)
                .then_some((e.store_value, e.performed, perform_in_flight))
        });
        let forwarded = match lsq {
            Some((_, true, _)) => None, // performed: read the coherent cache
            // The write's cache access is in flight (SC commit-stall store
            // or executing atomic): it may or may not have reached the
            // cache yet, so neither forwarding nor a cache read is safe.
            // Hold the load until the perform acknowledges.
            Some((_, false, true)) => return,
            Some((value, false, false)) => Some(value),
            // Write-buffer forwarding: youngest entry for the word. An
            // entry whose drain is in flight is unsafe the same way — hold
            // the load until the drain acknowledges.
            None => match self.wb.iter().rev().find(|w| w.addr == addr) {
                Some(w) if w.issued => return,
                Some(w) => Some(w.value),
                None => None,
            },
        };
        if let Some(mut value) = forwarded {
            if self.lsq_fault_armed {
                // Injected fault: incorrect LSQ forwarding (§6.1).
                self.lsq_fault_armed = false;
                value ^= 1;
            }
            let model = self.cfg.model;
            let e = &mut self.rob[idx];
            e.state = EState::Executed;
            e.value = value;
            e.forwarded = true;
            if model == Model::Rmo {
                self.perform_load_now(seq);
            }
            return;
        }
        let id = self.alloc_req(Purpose::Exec, seq, gen);
        self.outstanding_loads += 1;
        self.rob[idx].state = EState::Issued;
        self.out.push(ProcReq::Read { id, addr });
    }

    /// RMO: a load performs at execution (§4.1).
    fn perform_load_now(&mut self, seq: SeqNum) {
        let Some(e) = self.rob.iter_mut().find(|e| e.seq == seq) else {
            return;
        };
        e.performed = true;
        let (addr, value) = (e.addr, e.value);
        if let Some(r) = self.reorder.as_mut() {
            if let Err(v) = r.op_performed(seq, OpClass::Load, self.cfg.model) {
                self.violations.push(v);
            }
        }
        if let Some(u) = self.uniproc.as_mut() {
            u.load_executed(addr, value);
        }
    }

    // ----- commit --------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.width {
            let idx = self.rob.iter().position(|e| !e.committed);
            let Some(idx) = idx else { break };
            let (class, state) = (self.rob[idx].class, self.rob[idx].state);
            if state != EState::Executed {
                break;
            }
            // VC capacity: commit stalls rather than overflowing (§4.1).
            if class == OpClass::Store {
                if let Some(u) = self.uniproc.as_ref() {
                    if u.store_entries() >= self.cfg.vc_words {
                        self.stats.vc_full_stalls += 1;
                        break;
                    }
                }
            }
            // SC: every operation performs at commit, so commit order is
            // the global memory order. A store therefore stalls commit
            // until its cache write completes (the classic SC store cost
            // that the TSO write buffer removes, §6.2.1).
            if self.cfg.model == Model::Sc && class == OpClass::Store {
                if !self.rob[idx].retire_issued {
                    let (seq, addr, value, gen) =
                        (self.rob[idx].seq, self.rob[idx].addr, self.rob[idx].store_value, self.rob[idx].gen);
                    let id = self.alloc_req(Purpose::ScStore, seq, gen);
                    self.out.push(ProcReq::Write { id, addr, value });
                    self.rob[idx].retire_issued = true;
                }
                if !self.rob[idx].performed {
                    break;
                }
            }
            // A membar performs at commit, after every older constrained
            // store has performed; it stalls commit (fencing younger
            // operations' perform points) until then. The gate consults
            // the *hardware* structures (ROB store queue + write buffer):
            // if a faulty write buffer silently loses a store, the gate
            // opens and the Allowable Reordering checker's independent
            // counters catch the lost operation (§4.2).
            if class.is_barrier() {
                let seq = self.rob[idx].seq;
                let required = self.cfg.model.table().requires(OpClass::Store, class);
                if required && self.cfg.model != Model::Sc {
                    let store_awaiting_wb = self
                        .rob
                        .iter()
                        .take(idx)
                        .any(|e| e.class == OpClass::Store);
                    let store_in_wb = self.wb.iter().any(|w| w.seqs.iter().any(|&s| s < seq));
                    if store_awaiting_wb || store_in_wb {
                        break;
                    }
                }
            }
            let (seq, addr, store_value, value, gen) = {
                let e = &mut self.rob[idx];
                e.committed = true;
                e.verify_done_at = self.now + self.cfg.verify_latency as u64;
                e.vstate = VState::Done;
                if let Some(a) = e.arrived_at {
                    self.queue_delays.push(self.now.saturating_sub(a));
                }
                (e.seq, e.addr, e.store_value, e.value, e.gen)
            };
            if let Some(r) = self.reorder.as_mut() {
                r.op_committed(seq, class, self.cfg.model);
            }
            if class == OpClass::Store {
                if let Some(u) = self.uniproc.as_mut() {
                    u.store_committed(addr, store_value);
                }
            }
            if class == OpClass::Atomic {
                // The atomic's store half already performed at the cache
                // (it executes at the ROB head); record it in the VC so
                // younger replays see the new value, and settle it
                // immediately.
                if let Some(u) = self.uniproc.as_mut() {
                    u.store_committed(addr, store_value);
                    if let Err(v) = u.store_performed(addr, store_value) {
                        self.violations.push(v);
                    }
                }
            }
            // Perform points at commit: loads (except RMO, which performs
            // at execution) and membars; SC stores performed during the
            // commit stall above and settle their VC entry here. Buffered
            // stores start their committed-but-unperformed life.
            match class {
                OpClass::Store => {
                    if self.cfg.model == Model::Sc {
                        if let Some(u) = self.uniproc.as_mut() {
                            if let Err(v) = u.store_performed(addr, store_value) {
                                self.violations.push(v);
                            }
                        }
                    }
                }
                OpClass::Load | OpClass::Membar(_) | OpClass::Stbar => {
                    if !self.rob[idx].performed {
                        self.rob[idx].performed = true;
                        if let Some(r) = self.reorder.as_mut() {
                            if let Err(v) = r.op_performed(seq, class, self.cfg.model) {
                                self.violations.push(v);
                            }
                        }
                    }
                }
                OpClass::Atomic => {}
            }
            // Replay happens *at* commit (§4.1: "results of sequential
            // execution can be obtained by replaying all memory operations
            // when they commit") — interleaved in program order with the
            // VC writes of committing stores.
            if class == OpClass::Load && self.cfg.dvmc {
                match self
                    .uniproc
                    .as_mut()
                    .expect("dvmc on")
                    .replay_load(addr, value)
                {
                    Ok(ReplayLookup::VcHit) => {}
                    Ok(ReplayLookup::NeedCache) => {
                        // Replay reads the highest cache level, bypassing
                        // the write buffer (§4.1).
                        let id = self.alloc_req(Purpose::Replay, seq, gen);
                        self.rob[idx].vstate = VState::ReplayWait;
                        self.out.push(ProcReq::ReplayRead { id, addr });
                    }
                    Err(v) => {
                        if self.rob[idx].remote_write_observed {
                            self.stats.forgiven_replays += 1;
                        } else {
                            self.violations.push(v);
                        }
                    }
                }
            }
            // Record the committed value for control dependencies.
            let committed_value = match class {
                OpClass::Load | OpClass::Atomic => value,
                _ => store_value,
            };
            self.recent_values.push_back((seq, committed_value));
            if self.recent_values.len() > 2 * self.cfg.rob_size {
                self.recent_values.pop_front();
            }
            if self.cfg.record_commits {
                self.commit_log.push(CommitRecord {
                    seq,
                    class,
                    addr,
                    value: committed_value,
                    store_value: if class.writes() { store_value } else { 0 },
                });
            }
            if self.awaiting == Some(seq) {
                self.awaiting = None;
                self.stream.deliver(seq, committed_value);
            }
        }
    }

    // ----- retire --------------------------------------------------------

    fn retire(&mut self) {
        for _ in 0..self.cfg.width {
            let (seq, class, addr, store_value, performed) = match self.rob.front() {
                Some(e)
                    if e.committed
                        && e.vstate == VState::Done
                        && e.verify_done_at <= self.now =>
                {
                    (e.seq, e.class, e.addr, e.store_value, e.performed)
                }
                _ => break,
            };
            let _ = performed;
            match class {
                OpClass::Load => {
                    self.stats.loads += 1;
                }
                OpClass::Store => {
                    if self.cfg.model == Model::Sc {
                        // Already performed during its commit stall.
                    } else {
                        if self.wb.len() >= self.cfg.wb_size {
                            self.stats.wb_full_stalls += 1;
                            break;
                        }
                        self.enqueue_wb(seq, addr, store_value);
                    }
                    self.stats.stores += 1;
                }
                OpClass::Atomic => {
                    // Performed at execution; uniprocessor-ordering effects
                    // of the store half are covered by LSQ forwarding and
                    // the coherence checker at the cache (see DESIGN.md).
                    self.stats.atomics += 1;
                }
                OpClass::Membar(_) | OpClass::Stbar => {
                    // Performed at commit, after its fence condition held.
                    self.stats.membars += 1;
                }
            }
            self.stats.retired_ops += 1;
            self.rob.pop_front();
        }
    }

    // ----- write buffer ----------------------------------------------------

    fn enqueue_wb(&mut self, seq: SeqNum, addr: WordAddr, value: u64) {
        // PSO/RMO: merge into an un-issued entry for the same word
        // (Table 5's optimized write buffer, reducing coherence traffic).
        if self.cfg.model.store_store_relaxed() {
            if let Some(w) = self
                .wb
                .iter_mut()
                .find(|w| !w.issued && w.addr == addr)
            {
                w.seqs.push(seq);
                w.value = value;
                return;
            }
        }
        self.wb.push_back(WbEntry {
            seqs: vec![seq],
            addr,
            value,
            model: self.cfg.model,
            issued: false,
        });
    }

    fn drain_wb(&mut self) {
        let in_order = !self.cfg.model.store_store_relaxed();
        if in_order {
            // TSO (and PC): head only, one outstanding drain.
            if self.outstanding_drains > 0 {
                return;
            }
            let Some(w) = self.wb.front_mut() else { return };
            if w.issued {
                return;
            }
            w.issued = true;
            let (seq, addr, value) = (w.seqs[0], w.addr, w.value);
            let id = self.alloc_req(Purpose::Drain, seq, 0);
            self.outstanding_drains += 1;
            self.out.push(ProcReq::Write { id, addr, value });
        } else {
            // PSO/RMO: multiple outstanding drains, oldest-first issue,
            // same-word entries drain in order (uniprocessor ordering).
            for i in 0..self.wb.len() {
                if self.outstanding_drains >= self.cfg.max_drains {
                    break;
                }
                if self.wb[i].issued {
                    continue;
                }
                let addr = self.wb[i].addr;
                let older_same_word = self.wb.iter().take(i).any(|w| w.addr == addr);
                if older_same_word {
                    continue;
                }
                self.wb[i].issued = true;
                let (seq, value) = (self.wb[i].seqs[0], self.wb[i].value);
                let id = self.alloc_req(Purpose::Drain, seq, 0);
                self.outstanding_drains += 1;
                self.out.push(ProcReq::Write { id, addr, value });
            }
        }
    }

    fn store_performed(&mut self, entry: &WbEntry) {
        for &seq in &entry.seqs {
            if let Some(u) = self.uniproc.as_mut() {
                if let Err(v) = u.store_performed(entry.addr, entry.value) {
                    self.violations.push(v);
                }
            }
            if let Some(r) = self.reorder.as_mut() {
                if let Err(v) = r.op_performed(seq, OpClass::Store, entry.model) {
                    self.violations.push(v);
                }
            }
        }
    }

    fn alloc_req(&mut self, purpose: Purpose, seq: SeqNum, gen: u64) -> u64 {
        let id = self.next_req;
        self.next_req += 1;
        self.pending.insert(id, Pending { purpose, seq, gen });
        id
    }

    // ----- fault-injection hooks (§6.1) ------------------------------------

    /// Fault: the write buffer silently loses an un-issued store. Returns
    /// whether an entry was available to drop.
    pub fn inject_wb_drop(&mut self) -> bool {
        match self.wb.iter().position(|w| !w.issued) {
            Some(i) => {
                self.wb.remove(i);
                true
            }
            None => false,
        }
    }

    /// Fault: swap the drain order of the first two un-issued write-buffer
    /// entries (a Store→Store reordering under in-order models). Returns
    /// whether two entries were available.
    pub fn inject_wb_reorder(&mut self) -> bool {
        let idx: Vec<usize> = self
            .wb
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.issued)
            .map(|(i, _)| i)
            .take(2)
            .collect();
        if idx.len() < 2 {
            return false;
        }
        self.wb.swap(idx[0], idx[1]);
        true
    }

    /// Fault: flip a bit of an un-issued write-buffer entry's data.
    pub fn inject_wb_corrupt(&mut self, bit: u32) -> bool {
        match self.wb.iter_mut().find(|w| !w.issued) {
            Some(w) => {
                w.value ^= 1u64 << (bit % 64);
                true
            }
            None => false,
        }
    }

    /// Fault: flip a bit of an un-issued write-buffer entry's address —
    /// the store drains to the wrong word.
    pub fn inject_wb_addr_flip(&mut self, bit: u32) -> bool {
        match self.wb.iter_mut().find(|w| !w.issued) {
            Some(w) => {
                w.addr = WordAddr(w.addr.0 ^ (1u64 << (bit % 8)));
                true
            }
            None => false,
        }
    }

    /// Fault: arm the LSQ so the next store-to-load forwarding supplies a
    /// corrupted value.
    pub fn arm_lsq_wrong_forward(&mut self) {
        self.lsq_fault_armed = true;
    }

    /// Whether a previously armed LSQ fault is still pending (no
    /// forwarding happened yet).
    pub fn lsq_fault_pending(&self) -> bool {
        self.lsq_fault_armed
    }
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("model", &self.cfg.model)
            .field("rob", &self.rob.len())
            .field("wb", &self.wb.len())
            .field("retired", &self.stats.retired_ops)
            .finish_non_exhaustive()
    }
}
