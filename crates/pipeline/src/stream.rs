//! The instruction supply: how programs feed the core model.
//!
//! Workloads implement [`InstrStream`]; the core pulls one instruction at
//! a time in program order. Control dependencies (spin locks, barriers)
//! are expressed with [`Fetch::AwaitLast`]: decode stalls until that
//! memory operation *commits*, and its committed value is handed back
//! through [`InstrStream::deliver`] — modelling a branch that resolves at
//! commit.
//!
//! Sequence numbers: every memory/barrier instruction receives the next
//! [`SeqNum`] in decode order (delays do not consume sequence numbers), so
//! a stream can predict the seq of each instruction it emits by counting.

use dvmc_consistency::{Model, OpClass};
use dvmc_types::{Cycle, SeqNum, WordAddr};

/// One instruction of the abstract ISA (see DESIGN.md: SPARC v9 is
/// abstracted to memory operations plus compute delays).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instr {
    /// A memory or barrier operation.
    Mem {
        /// Load, Store, Atomic, Membar, or Stbar.
        class: OpClass,
        /// The word accessed (ignored for barriers).
        addr: WordAddr,
        /// The value stored / swapped in (ignored for loads and barriers).
        store_value: u64,
    },
    /// `cycles` of non-memory work: decode stalls for that long.
    Delay(u32),
}

impl Instr {
    /// Convenience constructor for a load.
    pub fn load(addr: u64) -> Instr {
        Instr::Mem {
            class: OpClass::Load,
            addr: WordAddr(addr),
            store_value: 0,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(addr: u64, value: u64) -> Instr {
        Instr::Mem {
            class: OpClass::Store,
            addr: WordAddr(addr),
            store_value: value,
        }
    }

    /// Convenience constructor for an atomic swap.
    pub fn swap(addr: u64, value: u64) -> Instr {
        Instr::Mem {
            class: OpClass::Atomic,
            addr: WordAddr(addr),
            store_value: value,
        }
    }

    /// Convenience constructor for a membar with the given mask.
    pub fn membar(mask: dvmc_consistency::MembarMask) -> Instr {
        Instr::Mem {
            class: OpClass::Membar(mask),
            addr: WordAddr(0),
            store_value: 0,
        }
    }
}

/// What the stream produces when the core asks for the next instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fetch {
    /// The next instruction in program order.
    Instr(Instr),
    /// Decode must stall until the most recently emitted memory operation
    /// commits; its committed value arrives via [`InstrStream::deliver`].
    /// This is how spin-lock control dependencies are expressed, and it
    /// stays correct even when the pipeline injects artificial membars
    /// between stream instructions.
    AwaitLast,
    /// The program has finished.
    Done,
}

/// A program source for one hardware thread.
pub trait InstrStream {
    /// Produces the next fetch in program order. Called repeatedly; after
    /// [`Fetch::AwaitLast`], it is called again only once the awaited value
    /// has been delivered.
    fn next(&mut self) -> Fetch;

    /// Like [`next`](Self::next), but told the current cycle. Decode calls
    /// this; the default ignores the clock, so closed-loop streams (which
    /// express think time as [`Instr::Delay`] relative to their own
    /// progress) need not care. *Open-loop* streams override it to
    /// schedule arrivals against wall-clock time, independent of how fast
    /// the machine drains them.
    fn next_at(&mut self, now: Cycle) -> Fetch {
        let _ = now;
        self.next()
    }

    /// The open-loop arrival cycle of the most recently emitted
    /// instruction, if that instruction completes a timed request
    /// (arrival→commit queueing-delay measurement). Closed-loop streams
    /// have no arrival process and keep the default `None`.
    fn last_arrival(&self) -> Option<Cycle> {
        None
    }

    /// Delivers the committed value of the awaited operation `seq`.
    fn deliver(&mut self, seq: SeqNum, value: u64);

    /// Retargets the stream's fence vocabulary to `model` (dynamic
    /// consistency-model switching, applied by the core at a quiescent
    /// point). Most programs are compiled for one model and ignore this.
    fn switch_model(&mut self, model: Model) {
        let _ = model;
    }

    /// Completed transactions (workload progress metric; §6.2 runs each
    /// benchmark for a fixed number of transactions).
    fn transactions(&self) -> u64 {
        0
    }

    /// A boxed deep copy of the stream, position included. Backward error
    /// recovery snapshots whole cores; the stream is part of the
    /// architectural state a rollback must restore (program counter,
    /// pending polls, RNG state), so every stream must be cloneable.
    fn clone_box(&self) -> Box<dyn InstrStream + Send>;
}

impl Clone for Box<dyn InstrStream + Send> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A fixed, scripted program — the building block for unit tests and
/// litmus tests.
///
/// # Examples
///
/// ```rust
/// use dvmc_pipeline::{Instr, InstrStream, Fetch, ScriptedStream};
///
/// let mut s = ScriptedStream::new(vec![Instr::store(8, 1), Instr::load(16)]);
/// assert!(matches!(s.next(), Fetch::Instr(_)));
/// assert!(matches!(s.next(), Fetch::Instr(_)));
/// assert!(matches!(s.next(), Fetch::Done));
/// ```
#[derive(Clone, Debug)]
pub struct ScriptedStream {
    instrs: Vec<Instr>,
    pos: usize,
    values: Vec<(SeqNum, u64)>,
}

impl ScriptedStream {
    /// Creates a stream that plays `instrs` once.
    pub fn new(instrs: Vec<Instr>) -> Self {
        ScriptedStream {
            instrs,
            pos: 0,
            values: Vec::new(),
        }
    }

    /// The committed values delivered so far (none unless the script is
    /// wrapped by an awaiting adapter; kept for test introspection).
    pub fn delivered(&self) -> &[(SeqNum, u64)] {
        &self.values
    }
}

impl InstrStream for ScriptedStream {
    fn next(&mut self) -> Fetch {
        match self.instrs.get(self.pos) {
            Some(&i) => {
                self.pos += 1;
                Fetch::Instr(i)
            }
            None => Fetch::Done,
        }
    }

    fn deliver(&mut self, seq: SeqNum, value: u64) {
        self.values.push((seq, value));
    }

    fn transactions(&self) -> u64 {
        if self.pos == self.instrs.len() {
            1
        } else {
            0
        }
    }

    fn clone_box(&self) -> Box<dyn InstrStream + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_stream_plays_in_order() {
        let mut s = ScriptedStream::new(vec![Instr::load(0), Instr::Delay(3)]);
        assert_eq!(s.next(), Fetch::Instr(Instr::load(0)));
        assert_eq!(s.next(), Fetch::Instr(Instr::Delay(3)));
        assert_eq!(s.next(), Fetch::Done);
        assert_eq!(s.next(), Fetch::Done);
        assert_eq!(s.transactions(), 1);
    }

    #[test]
    fn constructors_build_expected_classes() {
        assert!(matches!(
            Instr::swap(8, 2),
            Instr::Mem {
                class: OpClass::Atomic,
                ..
            }
        ));
        assert!(matches!(
            Instr::membar(dvmc_consistency::MembarMask::ALL),
            Instr::Mem {
                class: OpClass::Membar(_),
                ..
            }
        ));
    }
}
