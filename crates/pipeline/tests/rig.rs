//! Core-plus-memory-system tests: single- and dual-core programs driven
//! through the real coherence substrate, including the classic litmus
//! patterns that distinguish the consistency models.

use dvmc_coherence::{Cluster, ClusterConfig, Protocol};
use dvmc_consistency::{MembarMask, Model, OpClass};
use dvmc_pipeline::{Core, CoreConfig, Instr, ScriptedStream};
use dvmc_types::NodeId;

struct Rig {
    cores: Vec<Core>,
    cluster: Cluster,
}

impl Rig {
    fn new(model: Model, protocol: Protocol, dvmc: bool, scripts: Vec<Vec<Instr>>) -> Rig {
        let nodes = scripts.len().max(2);
        let mut ccfg = ClusterConfig::paper_default(nodes, protocol);
        if !dvmc {
            ccfg = ccfg.without_verification();
        }
        let cluster = Cluster::new(ccfg);
        let cores = scripts
            .into_iter()
            .map(|s| {
                let cfg = CoreConfig {
                    model,
                    dvmc,
                    record_commits: true,
                    membar_injection_period: 10_000,
                    ..CoreConfig::default()
                };
                Core::new(cfg, Box::new(ScriptedStream::new(s)))
            })
            .collect();
        Rig { cores, cluster }
    }

    /// Runs until every core drains; panics on timeout.
    fn run(&mut self, max_cycles: u64) {
        for _ in 0..max_cycles {
            let now = self.cluster.now();
            for (i, core) in self.cores.iter_mut().enumerate() {
                let id = NodeId(i as u8);
                let inv = self.cluster.drain_invalidated(id);
                core.note_invalidations(&inv);
                while let Some(resp) = self.cluster.pop_resp(id) {
                    core.deliver(resp);
                }
                for req in core.tick(now) {
                    self.cluster.submit(id, req);
                }
            }
            self.cluster.tick();
            if self.cores.iter().all(Core::is_done) {
                return;
            }
        }
        panic!(
            "cores did not drain: {:?}",
            self.cores.iter().map(|c| format!("{c:?}")).collect::<Vec<_>>()
        );
    }

    fn violations(&mut self) -> Vec<dvmc_core::Violation> {
        let mut v = self.cluster.finish();
        for c in &mut self.cores {
            v.extend(c.drain_violations());
        }
        v
    }

    /// Committed values of the loads of core `i`, in program order.
    fn load_values(&mut self, i: usize) -> Vec<u64> {
        self.cores[i]
            .take_commit_log()
            .into_iter()
            .filter(|r| r.class == OpClass::Load)
            .map(|r| r.value)
            .collect()
    }
}

fn all_models() -> [Model; 4] {
    [Model::Sc, Model::Tso, Model::Pso, Model::Rmo]
}

#[test]
fn single_core_store_load_roundtrip_all_models() {
    for model in all_models() {
        for protocol in [Protocol::Directory, Protocol::Snooping] {
            let script = vec![
                Instr::store(8, 11),
                Instr::load(8),
                Instr::store(8, 12),
                Instr::load(8),
                Instr::store(16, 7),
                Instr::load(16),
            ];
            let mut rig = Rig::new(model, protocol, true, vec![script]);
            rig.run(100_000);
            assert_eq!(
                rig.load_values(0),
                vec![11, 12, 7],
                "{model} {protocol:?}: loads must see program-order stores"
            );
            let v = rig.violations();
            assert!(v.is_empty(), "{model} {protocol:?}: {v:?}");
        }
    }
}

#[test]
fn lsq_forwarding_covers_buffered_stores() {
    // A load immediately after a store to the same word must see it even
    // though the store has not drained.
    for model in all_models() {
        let script = vec![
            Instr::store(64, 1),
            Instr::store(64, 2),
            Instr::load(64),
            Instr::store(72, 3),
            Instr::load(72),
            Instr::load(64),
        ];
        let mut rig = Rig::new(model, Protocol::Directory, true, vec![script]);
        rig.run(100_000);
        assert_eq!(rig.load_values(0), vec![2, 3, 2], "{model}");
        assert!(rig.violations().is_empty(), "{model}");
    }
}

#[test]
fn delays_and_membars_drain_cleanly() {
    for model in all_models() {
        let script = vec![
            Instr::store(8, 1),
            Instr::Delay(20),
            Instr::membar(MembarMask::ALL),
            Instr::store(8, 2),
            Instr::Delay(5),
            Instr::load(8),
        ];
        let mut rig = Rig::new(model, Protocol::Directory, true, vec![script]);
        rig.run(100_000);
        assert_eq!(rig.load_values(0), vec![2], "{model}");
        assert!(rig.violations().is_empty(), "{model}");
    }
}

#[test]
fn atomic_swap_sequences_correctly() {
    for model in all_models() {
        let script = vec![
            Instr::store(8, 5),
            Instr::swap(8, 9), // returns 5
            Instr::load(8),    // sees 9
        ];
        let mut rig = Rig::new(model, Protocol::Directory, true, vec![script]);
        rig.run(100_000);
        let log = rig.cores[0].stats();
        assert_eq!(log.atomics, 1, "{model}");
        assert_eq!(rig.load_values(0), vec![9], "{model}");
        assert!(rig.violations().is_empty(), "{model}");
    }
}

#[test]
fn two_cores_communicate_through_memory() {
    for model in all_models() {
        for protocol in [Protocol::Directory, Protocol::Snooping] {
            let writer = vec![Instr::store(128, 42), Instr::membar(MembarMask::ALL)];
            // The reader polls; with a scripted stream we just read many
            // times and check the last value.
            let reader = (0..50).map(|_| Instr::load(128)).collect();
            let mut rig = Rig::new(model, protocol, true, vec![writer, reader]);
            rig.run(200_000);
            let vals = rig.load_values(1);
            assert_eq!(*vals.last().expect("fifty loads"), 42, "{model} {protocol:?}");
            let v = rig.violations();
            assert!(v.is_empty(), "{model} {protocol:?}: {v:?}");
        }
    }
}

/// Store-buffering litmus (SB): both threads store then load the other
/// variable. TSO and weaker permit both loads to read 0; our pipeline's
/// write buffer makes that the common outcome.
#[test]
fn litmus_store_buffering_tso_sees_relaxed_outcome() {
    let x = 1024;
    let y = 2048;
    // Warm both variables into each cache (shared) so the SB loads hit
    // locally while the stores' GetM transactions are still in flight —
    // the canonical store-buffering interleaving.
    let warm = |a, b| vec![Instr::load(a), Instr::load(b), Instr::Delay(400)];
    let mut t0 = warm(x, y);
    t0.extend([Instr::store(x, 1), Instr::load(y)]);
    let mut t1 = warm(y, x);
    t1.extend([Instr::store(y, 1), Instr::load(x)]);
    let mut rig = Rig::new(Model::Tso, Protocol::Directory, true, vec![t0, t1]);
    rig.run(200_000);
    let r0 = *rig.load_values(0).last().expect("loads");
    let r1 = *rig.load_values(1).last().expect("loads");
    assert_eq!(
        (r0, r1),
        (0, 0),
        "with store misses buffered, both loads beat the remote stores"
    );
    assert!(rig.violations().is_empty());
}

/// SB with full fences forbids the both-zero outcome under every model.
#[test]
fn litmus_store_buffering_fenced_forbids_both_zero() {
    for model in all_models() {
        let x = 1024;
        let y = 2048;
        let t0 = vec![
            Instr::store(x, 1),
            Instr::membar(MembarMask::ALL),
            Instr::load(y),
        ];
        let t1 = vec![
            Instr::store(y, 1),
            Instr::membar(MembarMask::ALL),
            Instr::load(x),
        ];
        let mut rig = Rig::new(model, Protocol::Directory, true, vec![t0, t1]);
        rig.run(200_000);
        let r0 = rig.load_values(0)[0];
        let r1 = rig.load_values(1)[0];
        assert!(
            r0 == 1 || r1 == 1,
            "{model}: fenced SB must not observe (0, 0), got ({r0}, {r1})"
        );
        let v = rig.violations();
        assert!(v.is_empty(), "{model}: {v:?}");
    }
}

/// SC forbids the both-zero SB outcome even without fences: stores perform
/// before retirement, ahead of any younger load's perform point.
#[test]
fn litmus_store_buffering_sc_forbids_both_zero() {
    let x = 1024;
    let y = 2048;
    let t0 = vec![Instr::store(x, 1), Instr::load(y)];
    let t1 = vec![Instr::store(y, 1), Instr::load(x)];
    let mut rig = Rig::new(Model::Sc, Protocol::Directory, true, vec![t0, t1]);
    rig.run(200_000);
    let r0 = rig.load_values(0)[0];
    let r1 = rig.load_values(1)[0];
    assert!(r0 == 1 || r1 == 1, "SC SB observed ({r0}, {r1})");
    assert!(rig.violations().is_empty());
}

/// Message-passing litmus (MP): writer stores data then flag; reader polls
/// the flag then reads data. TSO's ordered stores and ordered loads make
/// stale data unobservable; under PSO/RMO the store reordering is real but
/// requires the right interleaving — here we assert the fenced variant is
/// always safe on every model.
#[test]
fn litmus_message_passing_fenced_safe_everywhere() {
    for model in all_models() {
        for protocol in [Protocol::Directory, Protocol::Snooping] {
            let data = 4096;
            let flag = 8192;
            let writer = vec![
                Instr::store(data, 77),
                Instr::membar(MembarMask::SS),
                Instr::store(flag, 1),
            ];
            // Reader: poll flag enough times, then read data. (A scripted
            // reader cannot branch; 60 polls exceed the writer's drain
            // time under every configuration tested.)
            let mut reader: Vec<Instr> = (0..60).map(|_| Instr::load(flag)).collect();
            reader.push(Instr::membar(MembarMask::LL));
            reader.push(Instr::load(data));
            let mut rig = Rig::new(model, protocol, true, vec![writer, reader]);
            rig.run(400_000);
            let vals = rig.load_values(1);
            let flag_seen = vals[vals.len() - 2];
            let data_seen = *vals.last().expect("loads");
            if flag_seen == 1 {
                assert_eq!(
                    data_seen, 77,
                    "{model} {protocol:?}: fenced MP must never see stale data"
                );
            }
            let v = rig.violations();
            assert!(v.is_empty(), "{model} {protocol:?}: {v:?}");
        }
    }
}

#[test]
fn dvmc_off_still_executes_correctly() {
    for model in all_models() {
        let script = vec![
            Instr::store(8, 3),
            Instr::load(8),
            Instr::swap(8, 4),
            Instr::load(8),
        ];
        let mut rig = Rig::new(model, Protocol::Directory, false, vec![script]);
        rig.run(100_000);
        assert_eq!(rig.load_values(0), vec![3, 4], "{model}");
    }
}

#[test]
fn injected_membars_pass_on_correct_hardware() {
    // Long program with aggressive injection: no false positives.
    let script: Vec<Instr> = (0..200)
        .flat_map(|i| [Instr::store(8 * (i % 16), i), Instr::load(8 * (i % 16))])
        .collect();
    let mut rig = Rig::new(Model::Tso, Protocol::Directory, true, vec![script]);
    // run() uses injection period 10k; shrink further by ticking longer
    // programs is unnecessary — assert at least one injection happened.
    rig.run(400_000);
    assert!(rig.violations().is_empty());
}

#[test]
fn pso_merges_write_buffer_stores() {
    let script: Vec<Instr> = (0..32).map(|i| Instr::store(64, i)).collect();
    let mut rig = Rig::new(Model::Pso, Protocol::Directory, true, vec![script.clone()]);
    rig.run(200_000);
    assert!(rig.violations().is_empty());
    let pso_wb = rig.cores[0].stats();
    assert_eq!(pso_wb.stores, 32);

    let mut rig_tso = Rig::new(Model::Tso, Protocol::Directory, true, vec![script]);
    rig_tso.run(200_000);
    assert!(rig_tso.violations().is_empty());
}

#[test]
fn replay_statistics_are_collected() {
    let script = vec![
        Instr::store(8, 1),
        Instr::load(8),
        Instr::load(16),
        Instr::load(24),
    ];
    let mut rig = Rig::new(Model::Tso, Protocol::Directory, true, vec![script]);
    rig.run(100_000);
    let rs = rig.cores[0].replay_stats();
    assert_eq!(rs.replays, 3, "every load is replayed");
    assert!(rs.vc_hits >= 1, "the store-forwarded load hits the VC");
    assert!(rig.violations().is_empty());
}
