//! Unit-level tests of the pipeline fault hooks (§6.1): each injected
//! write-buffer / LSQ error is caught by the per-processor checkers —
//! without any memory system attached (cache responses simply never
//! arrive, which is irrelevant to these structures).

use dvmc_consistency::{Model, OpClass};
use dvmc_core::Violation;
use dvmc_pipeline::{Core, CoreConfig, Instr, ScriptedStream};

fn core_with(script: Vec<Instr>, model: Model) -> Core {
    Core::new(
        CoreConfig {
            model,
            // Aggressive injection so lost-op checks fire quickly.
            membar_injection_period: 50,
            prefetch: false,
            ..CoreConfig::default()
        },
        Box::new(ScriptedStream::new(script)),
    )
}

fn tick_until_violation(core: &mut Core, cycles: u64) -> Option<Violation> {
    for now in 0..cycles {
        let _ = core.tick(now);
        let v = core.drain_violations();
        if let Some(first) = v.into_iter().next() {
            return Some(first);
        }
    }
    None
}

/// Drives a core while answering every drain request after `delay`
/// cycles, with an optional one-shot injection callback.
fn drive(
    core: &mut Core,
    cycles: u64,
    inject_at: u64,
    mut inject: impl FnMut(&mut Core) -> bool,
) -> (bool, Option<Violation>) {
    let mut pending: Vec<(u64, dvmc_coherence::ProcReq)> = Vec::new();
    let mut injected = false;
    for now in 0..cycles {
        for req in core.tick(now) {
            pending.push((now + 12, req));
        }
        if !injected && now >= inject_at {
            injected = inject(core);
        }
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 <= now {
                let (_, req) = pending.swap_remove(i);
                if let dvmc_coherence::ProcReq::Write { id, value, .. } = req {
                    core.deliver(dvmc_coherence::ProcResp {
                        id,
                        value,
                        l1_miss: false,
                        coherence_miss: false,
                        replay: false,
                    });
                }
            } else {
                i += 1;
            }
        }
        if let Some(v) = core.drain_violations().into_iter().next() {
            return (injected, Some(v));
        }
    }
    (injected, None)
}

#[test]
fn wb_drop_is_caught_by_an_injected_membar() {
    // Stores retire into the write buffer and drain normally — except one
    // that the (faulty) buffer silently loses. Once its siblings drain,
    // an artificial membar passes the hardware-view gate and the
    // Allowable Reordering checker's independent counters expose the
    // lost store.
    let script: Vec<Instr> = (0..6).map(|i| Instr::store(8 * i, i)).collect();
    let mut core = core_with(script, Model::Tso);
    let (injected, violation) = drive(&mut core, 2_000, 14, dvmc_pipeline::Core::inject_wb_drop);
    assert!(injected, "an un-issued WB entry must exist at cycle 14");
    let v = violation.expect("lost store detected");
    assert!(matches!(v, Violation::LostOp(_)), "{v}");
}

#[test]
fn wb_reorder_is_caught_at_drain_under_tso() {
    // Two buffered stores swapped: under TSO the drain performs them out
    // of program order and the Allowable Reordering checker fires at the
    // second perform. Drains need completions, so emulate the cache by
    // answering the drain requests in order of issue.
    let script = vec![Instr::store(8, 1), Instr::store(16, 2)];
    let mut core = core_with(script, Model::Tso);
    let mut pending = Vec::new();
    let mut swapped = false;
    let mut violation = None;
    for now in 0..400 {
        for req in core.tick(now) {
            pending.push(req);
        }
        if !swapped && now == 20 {
            // Stores are committed but the first drain may already be in
            // flight; swap the remaining buffer entries if possible.
            swapped = core.inject_wb_reorder();
        }
        // Answer one pending drain per cycle.
        if let Some(req) = pending.first().cloned() {
            if let dvmc_coherence::ProcReq::Write { id, value, .. } = req {
                pending.remove(0);
                core.deliver(dvmc_coherence::ProcResp {
                    id,
                    value,
                    l1_miss: false,
                    coherence_miss: false,
                    replay: false,
                });
            } else {
                pending.remove(0);
            }
        }
        if let Some(v) = core.drain_violations().into_iter().next() {
            violation = Some(v);
            break;
        }
    }
    if swapped {
        let v = violation.expect("reordered drain detected");
        assert!(
            matches!(v, Violation::Reorder(_) | Violation::Uniproc(_)),
            "{v}"
        );
    }
}

#[test]
fn wb_value_corruption_is_caught_at_dealloc() {
    // Two stores so an un-issued entry exists when the fault fires (TSO
    // drains the head eagerly).
    let script = vec![Instr::store(8, 1), Instr::store(16, 2), Instr::store(24, 3)];
    let mut core = core_with(script, Model::Tso);
    let (corrupted, violation) = drive(&mut core, 2_000, 14, |c| c.inject_wb_corrupt(5));
    assert!(corrupted, "an un-issued WB entry must exist at cycle 14");
    let v = violation.expect("corrupt drain detected");
    assert!(matches!(v, Violation::Uniproc(_)), "{v}");
}

#[test]
fn wb_address_flip_is_caught_immediately() {
    let script = vec![Instr::store(8, 1), Instr::store(16, 2), Instr::store(24, 3)];
    let mut core = core_with(script, Model::Tso);
    let (flipped, violation) = drive(&mut core, 2_000, 14, |c| c.inject_wb_addr_flip(1));
    assert!(flipped, "an un-issued WB entry must exist at cycle 14");
    // The drain performs at a word with no committed VC entry.
    let v = violation.expect("address-flipped drain detected");
    assert!(matches!(v, Violation::Uniproc(_)), "{v}");
}

#[test]
fn lsq_wrong_forward_is_caught_by_replay() {
    // A store followed by a load of the same word: the load forwards from
    // the LSQ; the armed fault corrupts the forwarded value; the commit
    // replay compares against the (correct) VC entry.
    let script = vec![Instr::store(8, 42), Instr::load(8)];
    let mut core = core_with(script, Model::Tso);
    core.arm_lsq_wrong_forward();
    let v = tick_until_violation(&mut core, 200).expect("bad forward detected");
    assert!(matches!(v, Violation::Uniproc(_)), "{v}");
    assert!(!core.lsq_fault_pending(), "fault consumed");
}

#[test]
fn fault_hooks_report_availability() {
    let mut core = core_with(vec![], Model::Tso);
    assert!(!core.inject_wb_drop(), "empty WB has nothing to drop");
    assert!(!core.inject_wb_reorder());
    assert!(!core.inject_wb_corrupt(0));
    assert!(!core.inject_wb_addr_flip(0));
}

#[test]
fn membar_injection_respects_quiescence() {
    // On a correct machine, aggressive injection must never false-positive
    // even while stores are genuinely outstanding.
    let script: Vec<Instr> = (0..10)
        .flat_map(|i| [Instr::store(8 * i, i), Instr::Mem {
            class: OpClass::Stbar,
            addr: dvmc_types::WordAddr(0),
            store_value: 0,
        }])
        .collect();
    let mut core = core_with(script, Model::Pso);
    let mut pending = Vec::new();
    for now in 0..2_000 {
        for req in core.tick(now) {
            pending.push(req);
        }
        // Slow cache: answer a drain every 7 cycles.
        if now % 7 == 0 {
            if let Some(dvmc_coherence::ProcReq::Write { id, value, .. }) = pending.first().cloned()
            {
                pending.remove(0);
                core.deliver(dvmc_coherence::ProcResp {
                    id,
                    value,
                    l1_miss: true,
                    coherence_miss: true,
                    replay: false,
                });
            }
        }
        let v = core.drain_violations();
        assert!(v.is_empty(), "false positive at cycle {now}: {v:?}");
        if core.is_done() {
            return;
        }
    }
    panic!("core did not drain");
}
