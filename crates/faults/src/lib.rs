//! # Fault injection (§6.1)
//!
//! The paper tests DVMC's error-detection capability by injecting errors
//! "into all components related to the memory system: the load/store
//! queue (LSQ), write buffer, caches, interconnect switches and links,
//! and memory and cache controllers. The injected errors included data and
//! address bit flips; dropped, reordered, mis-routed, and duplicated
//! messages; and reorderings and incorrect forwarding in the LSQ and
//! write buffer."
//!
//! This crate defines the corresponding fault vocabulary and deterministic
//! random fault-plan generation (error time, type, and location chosen at
//! random per trial). The simulator executes the plan through the fault
//! hooks exposed by the pipeline, cache, home, and network components.

use dvmc_types::rng::DetRng;
use dvmc_types::{Cycle, NodeId};
use rand::Rng;
use std::fmt;

/// A concrete injectable error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Flip a data bit in a resident L2 line (cache data error).
    CacheBitFlip {
        /// The node whose cache is corrupted.
        node: NodeId,
    },
    /// Flip a data bit in a resident memory block (memory data error).
    MemoryBitFlip {
        /// The home node whose memory is corrupted.
        node: NodeId,
    },
    /// Drop the next point-to-point message (interconnect error).
    DropMessage,
    /// Deliver the next point-to-point message twice.
    DuplicateMessage,
    /// Send the next point-to-point message to the wrong node.
    MisrouteMessage {
        /// The wrong destination.
        to: NodeId,
    },
    /// Hold the next message so it reorders behind later traffic.
    ReorderMessage {
        /// Extra delay in cycles.
        delay: u32,
    },
    /// The write buffer silently loses a committed store.
    WbDropStore {
        /// The affected processor.
        node: NodeId,
    },
    /// The write buffer drains two stores out of order.
    WbReorderStores {
        /// The affected processor.
        node: NodeId,
    },
    /// A write-buffer entry's data is corrupted before draining.
    WbCorruptValue {
        /// The affected processor.
        node: NodeId,
    },
    /// A write-buffer entry's address is corrupted (address bit flip).
    WbAddressFlip {
        /// The affected processor.
        node: NodeId,
    },
    /// The LSQ forwards a wrong value to the next forwarded load.
    LsqWrongForward {
        /// The affected processor.
        node: NodeId,
    },
    /// Cache-controller state error: a Shared line silently becomes
    /// Modified (SWMR break).
    CacheCtrlBogusUpgrade {
        /// The affected node.
        node: NodeId,
    },
    /// Memory-controller state error: the directory forgets a block's
    /// owner (stale-data / SWMR hazard).
    MemCtrlForgetOwner {
        /// The affected home node.
        node: NodeId,
    },
    /// A *persistent* cache data error: a stuck-at bit in an L2 data
    /// array. Injection looks like [`Fault::CacheBitFlip`], but the
    /// defect survives rollback — recovery replays straight back into it,
    /// so retries must escalate and ultimately report the run
    /// unrecoverable (BER handles transients; hard faults need repair).
    CacheStuckBit {
        /// The node whose cache has the stuck bit.
        node: NodeId,
    },
}

impl Fault {
    /// A short category label for reporting.
    pub fn category(&self) -> &'static str {
        match self {
            Fault::CacheBitFlip { .. } => "cache-data",
            Fault::MemoryBitFlip { .. } => "memory-data",
            Fault::DropMessage => "net-drop",
            Fault::DuplicateMessage => "net-duplicate",
            Fault::MisrouteMessage { .. } => "net-misroute",
            Fault::ReorderMessage { .. } => "net-reorder",
            Fault::WbDropStore { .. } => "wb-drop",
            Fault::WbReorderStores { .. } => "wb-reorder",
            Fault::WbCorruptValue { .. } => "wb-data",
            Fault::WbAddressFlip { .. } => "wb-address",
            Fault::LsqWrongForward { .. } => "lsq-forward",
            Fault::CacheCtrlBogusUpgrade { .. } => "cachectrl-state",
            Fault::MemCtrlForgetOwner { .. } => "memctrl-state",
            Fault::CacheStuckBit { .. } => "cache-stuck",
        }
    }

    /// The node the fault is located at, for faults tied to one node
    /// (`None` for network faults, which act on links).
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Fault::CacheBitFlip { node }
            | Fault::MemoryBitFlip { node }
            | Fault::WbDropStore { node }
            | Fault::WbReorderStores { node }
            | Fault::WbCorruptValue { node }
            | Fault::WbAddressFlip { node }
            | Fault::LsqWrongForward { node }
            | Fault::CacheCtrlBogusUpgrade { node }
            | Fault::MemCtrlForgetOwner { node }
            | Fault::CacheStuckBit { node } => Some(*node),
            Fault::DropMessage
            | Fault::DuplicateMessage
            | Fault::MisrouteMessage { .. }
            | Fault::ReorderMessage { .. } => None,
        }
    }

    /// Whether the fault is a transient (soft) error that disappears once
    /// its effects are rolled back. §6.1 injects transients — BER recovers
    /// them by replaying from a pre-error checkpoint. A persistent fault
    /// re-manifests on every replay; recovery must bound its retries and
    /// escalate to an unrecoverable verdict instead of looping forever.
    pub fn is_transient(&self) -> bool {
        match self {
            Fault::CacheBitFlip { .. }
            | Fault::MemoryBitFlip { .. }
            | Fault::DropMessage
            | Fault::DuplicateMessage
            | Fault::MisrouteMessage { .. }
            | Fault::ReorderMessage { .. }
            | Fault::WbDropStore { .. }
            | Fault::WbReorderStores { .. }
            | Fault::WbCorruptValue { .. }
            | Fault::WbAddressFlip { .. }
            | Fault::LsqWrongForward { .. }
            | Fault::CacheCtrlBogusUpgrade { .. }
            | Fault::MemCtrlForgetOwner { .. } => true,
            Fault::CacheStuckBit { .. } => false,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.category())?;
        match self {
            Fault::CacheBitFlip { node }
            | Fault::MemoryBitFlip { node }
            | Fault::WbDropStore { node }
            | Fault::WbReorderStores { node }
            | Fault::WbCorruptValue { node }
            | Fault::WbAddressFlip { node }
            | Fault::LsqWrongForward { node }
            | Fault::CacheCtrlBogusUpgrade { node }
            | Fault::MemCtrlForgetOwner { node }
            | Fault::CacheStuckBit { node } => write!(f, "@{node}"),
            Fault::MisrouteMessage { to } => write!(f, "->{to}"),
            Fault::ReorderMessage { delay } => write!(f, "+{delay}"),
            _ => Ok(()),
        }
    }
}

/// A scheduled fault: inject `fault` at `at_cycle`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Injection time.
    pub at_cycle: Cycle,
    /// What to inject.
    pub fault: Fault,
}

/// Draws a random fault plan: error time within `(warmup, horizon)`,
/// random type, random location — mirroring §6.1's methodology. Only the
/// 13 *transient* categories are drawn (§6.1 injects soft errors); the
/// persistent [`Fault::CacheStuckBit`] is reached through [`all_faults`]
/// coverage sweeps, where the recovery experiment exercises retry
/// escalation deliberately.
pub fn random_plan(rng: &mut DetRng, nodes: usize, warmup: Cycle, horizon: Cycle) -> FaultPlan {
    let at_cycle = rng.gen_range(warmup..horizon);
    let node = NodeId(rng.gen_range(0..nodes) as u8);
    let other = NodeId(rng.gen_range(0..nodes) as u8);
    let fault = match rng.gen_range(0..13u32) {
        0 => Fault::CacheBitFlip { node },
        1 => Fault::MemoryBitFlip { node },
        2 => Fault::DropMessage,
        3 => Fault::DuplicateMessage,
        4 => Fault::MisrouteMessage { to: other },
        5 => Fault::ReorderMessage {
            delay: rng.gen_range(50..500),
        },
        6 => Fault::WbDropStore { node },
        7 => Fault::WbReorderStores { node },
        8 => Fault::WbCorruptValue { node },
        9 => Fault::WbAddressFlip { node },
        10 => Fault::LsqWrongForward { node },
        11 => Fault::CacheCtrlBogusUpgrade { node },
        _ => Fault::MemCtrlForgetOwner { node },
    };
    FaultPlan { at_cycle, fault }
}

/// Shape of a fault *storm*: bursts of faults arriving throughout a soak
/// run, rather than §6.1's single fault per trial (DESIGN.md §13).
///
/// Bursts arrive as a Poisson process (exponential gaps of the given
/// mean); each burst injects several faults within a short spread, so
/// that transients genuinely *overlap* — a second fault lands while the
/// first is still latent or mid-recovery. Optionally every Nth burst
/// carries a persistent [`Fault::CacheStuckBit`], driving the retry /
/// backoff / escalation path.
#[derive(Clone, Copy, Debug)]
pub struct StormConfig {
    /// Mean gap between bursts, in cycles.
    pub mean_gap: Cycle,
    /// Faults per burst (inclusive range).
    pub burst: (u32, u32),
    /// Burst members land within `[0, burst_spread]` cycles of the burst
    /// start — the overlap window.
    pub burst_spread: Cycle,
    /// Every Nth burst also carries a persistent cache-stuck-bit fault
    /// (`0` = transients only, the §6.1 soft-error regime).
    pub persistent_every: u32,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            mean_gap: 400_000,
            burst: (1, 3),
            burst_spread: 2_000,
            persistent_every: 0,
        }
    }
}

/// Draws a full storm schedule over `(warmup, horizon)`: burst times from
/// exponential gaps, each burst's members from [`random_plan`]'s transient
/// vocabulary at offsets within the configured spread. The result is
/// sorted by injection time. Deterministic in `rng`.
pub fn storm_plan(
    rng: &mut DetRng,
    nodes: usize,
    warmup: Cycle,
    horizon: Cycle,
    cfg: &StormConfig,
) -> Vec<FaultPlan> {
    assert!(horizon > warmup, "storm horizon must follow warmup");
    let mut plans = Vec::new();
    let mut t = warmup;
    let mut bursts = 0u32;
    loop {
        // Top 53 bits → uniform [0,1) (the vendored `rand` only samples
        // integer ranges); inverse-CDF exponential gap.
        let u = (rng.gen::<u64>() >> 11) as f64 / (1u64 << 53) as f64;
        let gap = ((-(1.0 - u).ln() * cfg.mean_gap as f64) as Cycle).max(1);
        t += gap;
        if t >= horizon {
            break;
        }
        bursts += 1;
        let members = if cfg.burst.1 <= cfg.burst.0 {
            cfg.burst.0
        } else {
            rng.gen_range(cfg.burst.0..=cfg.burst.1)
        };
        for _ in 0..members {
            let at = t + rng.gen_range(0..=cfg.burst_spread);
            // random_plan with a one-cycle window pins the time; the
            // fault type and location draws are what we want from it.
            plans.push(random_plan(rng, nodes, at, at + 1));
        }
        if cfg.persistent_every > 0 && bursts.is_multiple_of(cfg.persistent_every) {
            let node = NodeId(rng.gen_range(0..nodes) as u8);
            plans.push(FaultPlan {
                at_cycle: t,
                fault: Fault::CacheStuckBit { node },
            });
        }
    }
    plans.sort_by_key(|p| p.at_cycle);
    plans
}

/// Counts plan pairs scheduled within `window` cycles of each other — the
/// storm's overlap pressure (how often a fault lands while another is
/// still latent or being recovered).
pub fn overlapping_pairs(plans: &[FaultPlan], window: Cycle) -> usize {
    let mut times: Vec<Cycle> = plans.iter().map(|p| p.at_cycle).collect();
    times.sort_unstable();
    let mut pairs = 0;
    for (i, &a) in times.iter().enumerate() {
        pairs += times[i + 1..].iter().take_while(|&&b| b - a <= window).count();
    }
    pairs
}

/// One fault of every category (for coverage sweeps), transient and
/// persistent alike.
pub fn all_faults(node: NodeId, other: NodeId) -> Vec<Fault> {
    vec![
        Fault::CacheBitFlip { node },
        Fault::MemoryBitFlip { node },
        Fault::DropMessage,
        Fault::DuplicateMessage,
        Fault::MisrouteMessage { to: other },
        Fault::ReorderMessage { delay: 200 },
        Fault::WbDropStore { node },
        Fault::WbReorderStores { node },
        Fault::WbCorruptValue { node },
        Fault::WbAddressFlip { node },
        Fault::LsqWrongForward { node },
        Fault::CacheCtrlBogusUpgrade { node },
        Fault::MemCtrlForgetOwner { node },
        Fault::CacheStuckBit { node },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvmc_types::rng::det_rng;

    #[test]
    fn random_plans_are_deterministic() {
        let mut a = det_rng(1);
        let mut b = det_rng(1);
        for _ in 0..50 {
            assert_eq!(
                random_plan(&mut a, 8, 1000, 50_000),
                random_plan(&mut b, 8, 1000, 50_000)
            );
        }
    }

    #[test]
    fn plans_respect_bounds() {
        let mut rng = det_rng(7);
        for _ in 0..200 {
            let p = random_plan(&mut rng, 4, 500, 2_000);
            assert!((500..2_000).contains(&p.at_cycle));
        }
    }

    #[test]
    fn all_categories_generated() {
        let mut rng = det_rng(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(random_plan(&mut rng, 8, 0, 10).fault.category());
        }
        // random_plan draws transients only; the persistent cache-stuck
        // category is coverage-swept, never drawn.
        assert_eq!(seen.len(), 13, "{seen:?}");
        assert!(!seen.contains("cache-stuck"));
    }

    #[test]
    fn display_includes_location() {
        let f = Fault::CacheBitFlip { node: NodeId(3) };
        assert_eq!(f.to_string(), "cache-data@n3");
        assert_eq!(Fault::DropMessage.to_string(), "net-drop");
        assert_eq!(
            Fault::MisrouteMessage { to: NodeId(1) }.to_string(),
            "net-misroute->n1"
        );
    }

    #[test]
    fn coverage_list_matches_categories() {
        let faults = all_faults(NodeId(0), NodeId(1));
        let cats: std::collections::HashSet<_> = faults.iter().map(super::Fault::category).collect();
        assert_eq!(cats.len(), faults.len(), "one entry per category");
    }

    /// `exp_error_detection`'s per-category table is generated from
    /// [`all_faults`], so a variant missing there silently vanishes from
    /// the experiment. The wildcard-free match below stops compiling when a
    /// variant is added, forcing this list — and through it the coverage
    /// sweep — to be extended.
    #[test]
    fn every_variant_reaches_the_error_detection_table() {
        let node = NodeId(1);
        let variants = [
            Fault::CacheBitFlip { node },
            Fault::MemoryBitFlip { node },
            Fault::DropMessage,
            Fault::DuplicateMessage,
            Fault::MisrouteMessage { to: NodeId(2) },
            Fault::ReorderMessage { delay: 200 },
            Fault::WbDropStore { node },
            Fault::WbReorderStores { node },
            Fault::WbCorruptValue { node },
            Fault::WbAddressFlip { node },
            Fault::LsqWrongForward { node },
            Fault::CacheCtrlBogusUpgrade { node },
            Fault::MemCtrlForgetOwner { node },
            Fault::CacheStuckBit { node },
        ];
        for f in &variants {
            match f {
                Fault::CacheBitFlip { .. }
                | Fault::MemoryBitFlip { .. }
                | Fault::DropMessage
                | Fault::DuplicateMessage
                | Fault::MisrouteMessage { .. }
                | Fault::ReorderMessage { .. }
                | Fault::WbDropStore { .. }
                | Fault::WbReorderStores { .. }
                | Fault::WbCorruptValue { .. }
                | Fault::WbAddressFlip { .. }
                | Fault::LsqWrongForward { .. }
                | Fault::CacheCtrlBogusUpgrade { .. }
                | Fault::MemCtrlForgetOwner { .. }
                | Fault::CacheStuckBit { .. } => {}
            }
        }
        let table: std::collections::HashSet<&str> = all_faults(NodeId(1), NodeId(2))
            .iter()
            .map(super::Fault::category)
            .collect();
        for f in &variants {
            assert!(
                table.contains(f.category()),
                "{} missing from the all_faults coverage sweep",
                f.category()
            );
            // The experiment's table rows are Display strings; each must
            // carry its category label so results stay attributable.
            assert!(
                f.to_string().starts_with(f.category()),
                "{f} does not name its category"
            );
        }
        assert_eq!(table.len(), variants.len(), "one sweep entry per variant");
    }

    #[test]
    fn storm_plans_are_sorted_deterministic_and_bursty() {
        let cfg = StormConfig {
            mean_gap: 10_000,
            burst: (2, 4),
            burst_spread: 500,
            persistent_every: 0,
        };
        let mut a = det_rng(9);
        let mut b = det_rng(9);
        let plan_a = storm_plan(&mut a, 8, 1_000, 500_000, &cfg);
        let plan_b = storm_plan(&mut b, 8, 1_000, 500_000, &cfg);
        assert_eq!(plan_a, plan_b);
        assert!(plan_a.len() > 20, "expected a real storm, got {}", plan_a.len());
        assert!(plan_a.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle));
        assert!(plan_a.iter().all(|p| p.fault.is_transient()));
        assert!(plan_a.iter().all(|p| (1_000..501_000).contains(&p.at_cycle)));
        // Burst members land within the spread of each other, so the
        // storm must show far more overlap than a uniform scatter would.
        assert!(overlapping_pairs(&plan_a, cfg.burst_spread) > plan_a.len() / 4);
    }

    #[test]
    fn storms_can_carry_persistent_episodes() {
        let cfg = StormConfig {
            mean_gap: 20_000,
            burst: (1, 2),
            burst_spread: 1_000,
            persistent_every: 3,
        };
        let mut rng = det_rng(4);
        let plan = storm_plan(&mut rng, 4, 0, 600_000, &cfg);
        let stuck = plan.iter().filter(|p| !p.fault.is_transient()).count();
        assert!(stuck >= 2, "every 3rd burst must carry a stuck bit");
    }

    #[test]
    fn overlap_counting_uses_the_window() {
        let f = Fault::DropMessage;
        let plans: Vec<FaultPlan> = [0u64, 50, 60, 1_000]
            .iter()
            .map(|&t| FaultPlan { at_cycle: t, fault: f })
            .collect();
        assert_eq!(overlapping_pairs(&plans, 100), 3); // (0,50) (0,60) (50,60)
        assert_eq!(overlapping_pairs(&plans, 10), 1); // (50,60)
        assert_eq!(overlapping_pairs(&plans, 2_000), 6);
    }

    /// Recovery's retry policy keys off [`Fault::is_transient`]; a new
    /// variant that forgets to declare its persistence class would either
    /// loop forever (persistent marked transient) or give up on a
    /// recoverable soft error. Exactly one persistent category exists
    /// today, and every plan [`random_plan`] draws is transient.
    #[test]
    fn every_variant_declares_persistence() {
        let persistent: Vec<_> = all_faults(NodeId(0), NodeId(1))
            .into_iter()
            .filter(|f| !f.is_transient())
            .collect();
        assert_eq!(persistent, vec![Fault::CacheStuckBit { node: NodeId(0) }]);
        let mut rng = det_rng(11);
        for _ in 0..500 {
            assert!(random_plan(&mut rng, 8, 0, 100).fault.is_transient());
        }
    }
}
