//! Commit-log well-formedness: the per-core logs the pipeline records for
//! the offline oracle (`record_commits`) are the oracle's *entire* view of
//! a run, so their integrity is load-bearing for every `exp_fuzz` verdict.
//! Under randomized workloads the logs must have strictly monotone
//! per-core sequence numbers, every committed load value must be
//! attributable to a committed write (memory starts zeroed), and rerunning
//! the identical configuration — including on another thread — must
//! reproduce the logs exactly: the property that makes the fuzz campaign's
//! artifact byte-identical at any `--jobs`.

use dvmc_consistency::{CommitRecord, Model};
use dvmc_sim::{Protection, Protocol, SystemBuilder};
use dvmc_workloads::spec::WorkloadKind;
use proptest::prelude::*;
use std::collections::HashSet;

fn run_logs(
    seed: u64,
    model: Model,
    protocol: Protocol,
    kind: WorkloadKind,
    nodes: usize,
    txns: u64,
) -> Vec<Vec<CommitRecord>> {
    let mut sys = SystemBuilder::new()
        .nodes(nodes)
        .model(model)
        .protocol(protocol)
        .workload(kind, txns)
        .seed(seed)
        .record_commits(true)
        .build();
    let report = sys.run_to_completion(10_000_000);
    assert!(report.completed, "{kind} seed {seed:#x} did not complete");
    assert!(!report.hung, "{kind} seed {seed:#x} hung");
    report.commit_logs
}

/// Asserts the structural contract on one run's logs.
fn assert_well_formed(logs: &[Vec<CommitRecord>], nodes: usize) {
    assert_eq!(logs.len(), nodes);
    assert!(
        logs.iter().any(|l| !l.is_empty()),
        "a completed run must commit something"
    );
    // Strictly monotone per-core sequence numbers: commit order is decode
    // order, with no duplicates and no rewinds (a rollback that replays
    // ops must not leak pre-rollback records).
    for (tid, log) in logs.iter().enumerate() {
        for w in log.windows(2) {
            assert!(
                w[1].seq > w[0].seq,
                "core {tid}: seq {:?} then {:?}",
                w[0].seq,
                w[1].seq
            );
        }
    }
    // Every committed load value is attributable: memory starts zeroed,
    // so a non-zero load must return some committed write's value to the
    // same address (its own core's or a remote one's).
    let written: HashSet<(u64, u64)> = logs
        .iter()
        .flatten()
        .filter(|r| r.class.writes())
        .map(|r| (r.addr.0, r.store_value))
        .collect();
    for (tid, log) in logs.iter().enumerate() {
        for (i, r) in log.iter().enumerate() {
            if r.class.reads() && r.value != 0 {
                assert!(
                    written.contains(&(r.addr.0, r.value)),
                    "core {tid} op {i}: load of {:?} returned {} which no one wrote",
                    r.addr,
                    r.value
                );
            }
        }
    }
}

proptest! {
    /// Random configurations across all models, both protocols, and both
    /// the paper workloads and fuzz programs.
    #[test]
    fn commit_logs_are_well_formed_and_reproducible(
        seed in any::<u64>(),
        model_idx in 0usize..4,
        snooping in any::<bool>(),
        fuzz in any::<bool>(),
        nodes in 2usize..4,
    ) {
        let model = [Model::Sc, Model::Tso, Model::Pso, Model::Rmo][model_idx];
        let protocol = if snooping { Protocol::Snooping } else { Protocol::Directory };
        let (kind, txns) = if fuzz {
            (WorkloadKind::Fuzz(seed), 1)
        } else {
            (WorkloadKind::ALL[(seed % 5) as usize], 2)
        };
        let logs = run_logs(seed, model, protocol, kind, nodes, txns);
        assert_well_formed(&logs, nodes);
        // Same configuration, fresh system, different OS thread: the logs
        // must come back identical — record-for-record, value-for-value.
        let again = std::thread::spawn(move || run_logs(seed, model, protocol, kind, nodes, txns))
            .join()
            .expect("rerun thread");
        prop_assert_eq!(logs, again, "commit logs must be reproducible");
    }
}

/// `Protection` tiers that omit the uniproc checker still record the same
/// commit stream: logging rides the commit path, not the checker.
#[test]
fn logging_is_independent_of_protection() {
    let kind = WorkloadKind::Fuzz(0xD1CE);
    let full = run_logs(7, Model::Tso, Protocol::Directory, kind, 3, 1);
    let mut sys = SystemBuilder::new()
        .nodes(3)
        .model(Model::Tso)
        .protocol(Protocol::Directory)
        .protection(Protection::BASE)
        .workload(kind, 1)
        .seed(7)
        .record_commits(true)
        .build();
    let report = sys.run_to_completion(10_000_000);
    assert!(report.completed && !report.hung);
    assert_eq!(full, report.commit_logs);
}
