//! Full-system integration tests: every workload/model/protocol
//! combination runs clean, fault injections are detected, and the
//! protection configurations behave sanely.

use dvmc_consistency::Model;
use dvmc_faults::{Fault, FaultPlan};
use dvmc_sim::{Protection, Protocol, SystemBuilder};
use dvmc_types::NodeId;
use dvmc_workloads::spec::WorkloadKind;

#[test]
fn all_workloads_run_clean_under_full_dvmc_tso_directory() {
    for kind in WorkloadKind::ALL {
        let mut sys = SystemBuilder::new()
            .nodes(4)
            .workload(kind, 6)
            .seed(11)
            .build();
        let report = sys.run_to_completion(10_000_000);
        assert!(report.completed, "{kind}: {report:?}");
        assert!(!report.hung, "{kind} hung");
        assert!(
            report.violations.is_empty(),
            "{kind}: {:?}",
            report.violations
        );
        assert_eq!(report.transactions, 4 * 6, "{kind}");
        assert!(report.retired_ops() > 0);
    }
}

#[test]
fn all_models_and_protocols_run_clean() {
    for model in [Model::Sc, Model::Tso, Model::Pso, Model::Rmo] {
        for protocol in [Protocol::Directory, Protocol::Snooping] {
            let mut sys = SystemBuilder::new()
                .nodes(4)
                .model(model)
                .protocol(protocol)
                .workload(WorkloadKind::Oltp, 5)
                .seed(3)
                .build();
            let report = sys.run_to_completion(10_000_000);
            assert!(report.completed, "{model} {protocol:?}: {report:?}");
            assert!(
                report.violations.is_empty(),
                "{model} {protocol:?}: {:?}",
                report.violations
            );
        }
    }
}

#[test]
fn protection_components_run_clean() {
    for protection in [
        Protection::BASE,
        Protection::SN,
        Protection::SN_DVCC,
        Protection::SN_DVUO,
        Protection::FULL,
    ] {
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .protection(protection)
            .workload(WorkloadKind::Jbb, 40)
            .seed(5)
            .build();
        let report = sys.run_to_completion(10_000_000);
        assert!(report.completed, "{}: {report:?}", protection.label());
        assert!(
            report.violations.is_empty(),
            "{}: {:?}",
            protection.label(),
            report.violations
        );
        if protection.ber {
            assert!(report.ber_bytes > 0, "{}", protection.label());
        } else {
            assert_eq!(report.ber_bytes, 0);
        }
        if protection.coherence {
            assert!(report.checker_bytes > 0, "{}", protection.label());
        } else {
            assert_eq!(report.checker_bytes, 0);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut sys = SystemBuilder::new()
            .nodes(4)
            .workload(WorkloadKind::Apache, 4)
            .seed(77)
            .build();
        sys.run_to_completion(10_000_000)
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.total_bytes, b.total_bytes);
    assert_eq!(a.retired_ops(), b.retired_ops());
}

#[test]
fn different_seeds_perturb_runtimes() {
    let cycles: Vec<u64> = (0..3)
        .map(|s| {
            let mut sys = SystemBuilder::new()
                .nodes(4)
                .workload(WorkloadKind::Oltp, 4)
                .seed(1000 + s)
                .build();
            sys.run_to_completion(10_000_000).cycles
        })
        .collect();
    assert!(
        cycles.windows(2).any(|w| w[0] != w[1]),
        "different seeds should vary runtimes: {cycles:?}"
    );
}

fn detect(fault: Fault, seed: u64) -> dvmc_sim::RunReport {
    let mut sys = SystemBuilder::new()
        .nodes(4)
        .workload(WorkloadKind::Oltp, 100_000) // effectively endless
        .seed(seed)
        .fault(FaultPlan {
            at_cycle: 20_000,
            fault,
        })
        .watchdog(100_000)
        .build();
    sys.run_to_completion(3_000_000)
}

#[test]
fn wb_faults_are_detected() {
    for fault in [
        Fault::WbDropStore { node: NodeId(1) },
        Fault::WbCorruptValue { node: NodeId(1) },
        Fault::WbAddressFlip { node: NodeId(1) },
    ] {
        let report = detect(fault, 21);
        let det = report
            .detection
            .unwrap_or_else(|| panic!("{fault} not detected"));
        assert!(det.recoverable, "{fault}: detection too late");
        assert!(
            det.latency() < 150_000,
            "{fault}: latency {}",
            det.latency()
        );
    }
}

#[test]
fn lsq_fault_is_detected() {
    let report = detect(Fault::LsqWrongForward { node: NodeId(2) }, 22);
    let det = report.detection.expect("lsq fault detected");
    assert!(det.violation.is_some(), "checker-level detection expected");
    assert!(det.recoverable);
}

#[test]
fn cache_and_memory_bit_flips_are_detected() {
    for fault in [
        Fault::CacheBitFlip { node: NodeId(0) },
        Fault::MemoryBitFlip { node: NodeId(3) },
    ] {
        let report = detect(fault, 23);
        assert!(report.detection.is_some(), "{fault} not detected");
    }
}

#[test]
fn controller_state_faults_are_detected() {
    for fault in [
        Fault::CacheCtrlBogusUpgrade { node: NodeId(1) },
        Fault::MemCtrlForgetOwner { node: NodeId(0) },
    ] {
        let report = detect(fault, 24);
        assert!(report.detection.is_some(), "{fault} not detected");
    }
}

#[test]
fn dropped_message_is_detected() {
    // Most dropped protocol messages stall a transaction and trip the
    // hang watchdog within its 100k-cycle budget (seed 21 is one such
    // run; some drops — e.g. a PutAck — are latent and only manifest when
    // the stale state is reused much later, see EXPERIMENTS.md).
    let report = detect(Fault::DropMessage, 21);
    let det = report.detection.expect("drop detected");
    assert!(det.latency() < 200_000, "latency {}", det.latency());
}

#[test]
fn fault_free_baseline_reports_no_detection() {
    let mut sys = SystemBuilder::new()
        .nodes(2)
        .workload(WorkloadKind::Jbb, 4)
        .seed(9)
        .build();
    let report = sys.run_to_completion(10_000_000);
    assert!(report.detection.is_none());
    assert!(report.completed);
}
