//! Kernel & checkpoint equivalence regression suite.
//!
//! The event-scheduled kernel is an *optimization*, not a semantic
//! change: for any configuration it must produce a bit-identical
//! [`RunReport`] to the legacy every-cycle kernel — same cycle counts,
//! same detections at the same cycles, same memory digest, same
//! recovery trajectory. Likewise the delta-log checkpoint scheme must
//! recover to exactly the state the whole-snapshot scheme recovers to.
//! These tests pin all of that down with fixed seeds across models,
//! protocols, and fault categories, plus a proptest sweep over random
//! configurations.

use dvmc_consistency::Model;
use dvmc_faults::{Fault, FaultPlan};
use dvmc_sim::{
    CheckpointMode, KernelMode, Protection, Protocol, RunReport, ServiceStop, SystemBuilder,
    WindowSnapshot,
};
use dvmc_types::NodeId;
use dvmc_workloads::spec::WorkloadKind;
use proptest::prelude::*;

/// A run's full observable fingerprint: the entire report, Debug-rendered.
/// Bit-identical reports render identically (every field derives Debug).
fn fingerprint(report: &RunReport) -> String {
    format!("{report:?}")
}

/// Fingerprint with the checkpoint cost counters zeroed — used when
/// comparing *across* checkpoint schemes, whose whole point is different
/// capture/restore costs for the same machine behaviour.
fn fingerprint_sans_costs(report: &RunReport) -> String {
    let mut r = report.clone();
    r.checkpoint = Default::default();
    format!("{r:?}")
}

fn build(
    kernel: KernelMode,
    checkpoint: CheckpointMode,
    model: Model,
    protocol: Protocol,
    seed: u64,
    fault: Option<FaultPlan>,
) -> dvmc_sim::System {
    let mut b = SystemBuilder::new()
        .nodes(2)
        .model(model)
        .protocol(protocol)
        .workload(WorkloadKind::Jbb, 16)
        .recovery(Default::default())
        .watchdog(100_000)
        .obs(32)
        .seed(seed)
        .kernel(kernel)
        .checkpoint_mode(checkpoint);
    if let Some(plan) = fault {
        b = b.fault(plan);
    }
    b.build()
}

/// Every model × protocol, fault-free and with a recovering transient:
/// the event kernel's report is byte-for-byte the legacy kernel's —
/// including the checkpoint cost counters, which depend only on what the
/// machine did, not on how the clock advanced.
#[test]
fn event_kernel_matches_legacy_bit_for_bit() {
    let faults = [
        None,
        Some(FaultPlan {
            at_cycle: 6_000,
            fault: Fault::WbCorruptValue { node: NodeId(1) },
        }),
    ];
    for model in [Model::Sc, Model::Tso, Model::Pso, Model::Rmo] {
        for protocol in [Protocol::Directory, Protocol::Snooping] {
            for fault in faults {
                let run = |kernel| {
                    build(kernel, CheckpointMode::DeltaLog, model, protocol, 7, fault)
                        .run_to_completion(5_000_000)
                };
                let legacy = run(KernelMode::Legacy);
                let event = run(KernelMode::Event);
                assert_eq!(
                    fingerprint(&legacy),
                    fingerprint(&event),
                    "{model} {protocol:?} fault={fault:?}"
                );
            }
        }
    }
}

/// Every fault category that exercises a distinct rollback path (write
/// buffer, cache data, memory data, interconnect, LSQ, persistent
/// stuck-at) recovers identically under both kernels.
#[test]
fn fault_categories_recover_identically_across_kernels() {
    let faults = [
        Fault::WbDropStore { node: NodeId(0) },
        Fault::CacheBitFlip { node: NodeId(1) },
        Fault::MemoryBitFlip { node: NodeId(0) },
        Fault::DropMessage,
        Fault::ReorderMessage { delay: 40 },
        Fault::LsqWrongForward { node: NodeId(1) },
        Fault::CacheStuckBit { node: NodeId(1) },
    ];
    for fault in faults {
        let plan = FaultPlan {
            at_cycle: 6_000,
            fault,
        };
        let run = |kernel| {
            build(
                kernel,
                CheckpointMode::DeltaLog,
                Model::Tso,
                Protocol::Directory,
                5,
                Some(plan),
            )
            .run_to_completion(5_000_000)
        };
        assert_eq!(
            fingerprint(&run(KernelMode::Legacy)),
            fingerprint(&run(KernelMode::Event)),
            "{fault:?}"
        );
    }
}

/// The delta-log scheme restores exactly the machine the whole-snapshot
/// scheme restores: same post-rollback trajectory, same digest, same
/// report — only the capture/restore cost counters may differ.
#[test]
fn delta_log_rollback_matches_whole_snapshot_rollback() {
    let mut total_rollbacks = 0;
    for fault in [
        Fault::WbCorruptValue { node: NodeId(1) },
        Fault::MemoryBitFlip { node: NodeId(0) },
        Fault::CacheStuckBit { node: NodeId(1) },
    ] {
        let plan = FaultPlan {
            at_cycle: 6_000,
            fault,
        };
        let run = |checkpoint| {
            build(
                KernelMode::Event,
                checkpoint,
                Model::Tso,
                Protocol::Directory,
                5,
                Some(plan),
            )
            .run_to_completion(5_000_000)
        };
        let whole = run(CheckpointMode::Snapshot);
        let delta = run(CheckpointMode::DeltaLog);
        assert_eq!(
            fingerprint_sans_costs(&whole),
            fingerprint_sans_costs(&delta),
            "{fault:?}"
        );
        // The schemes really did take different capture paths. (On a
        // busy run like this one a delta can even exceed a snapshot —
        // everything is dirty plus per-delta overhead; the size win is
        // asserted on quiet traffic below.)
        assert!(whole.checkpoint.snapshots_taken > 0);
        assert_eq!(
            delta.checkpoint.rollbacks, whole.checkpoint.rollbacks,
            "{fault:?}: same behaviour must mean same rollback count"
        );
        if delta.checkpoint.rollbacks > 0 {
            assert!(delta.checkpoint.parts_restored > 0, "{fault:?}");
        }
        total_rollbacks += delta.checkpoint.rollbacks;
    }
    assert!(total_rollbacks > 0, "no fault in the set exercised rollback");
}

/// On quiet open-loop traffic — the deployment scenario the delta log
/// exists for — incremental checkpoints log meaningfully fewer bytes
/// than whole snapshots. The floor is set by what *periodically* mutates
/// regardless of traffic: CET/MET scrubs dirty every checker each
/// interval and BER coordination traffic dirties the data network, so
/// the win comes from skipping clean home-memory arrays (the bulk of
/// machine state).
#[test]
fn delta_log_is_smaller_on_quiet_traffic() {
    let run = |checkpoint: CheckpointMode| {
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .workload(WorkloadKind::Service { mean_gap: 20_000 }, u64::MAX / 2)
            .recovery(Default::default())
            .watchdog(200_000)
            .seed(3)
            .checkpoint_mode(checkpoint)
            .build();
        sys.arm_service(50_000);
        sys.run_service_until(400_000, &mut |_| {});
        sys.checkpoint_stats()
    };
    let whole = run(CheckpointMode::Snapshot);
    let delta = run(CheckpointMode::DeltaLog);
    assert_eq!(whole.snapshots_taken, delta.snapshots_taken);
    assert!(
        delta.bytes_logged * 3 < whole.bytes_logged * 2,
        "quiet deltas should log at least a third fewer bytes: {} vs {}",
        delta.bytes_logged,
        whole.bytes_logged
    );
}

/// Service mode under an open-loop workload and a fault storm: both
/// kernels stream identical window snapshots (including the queueing
/// delay percentiles) and identical final service reports.
#[test]
fn service_mode_storm_matches_across_kernels() {
    let run = |kernel: KernelMode| {
        let mut sys = SystemBuilder::new()
            .nodes(2)
            .workload(WorkloadKind::Service { mean_gap: 400 }, u64::MAX / 2)
            .recovery(Default::default())
            .watchdog(60_000)
            .obs(32)
            .seed(11)
            .kernel(kernel)
            .storm(vec![
                FaultPlan {
                    at_cycle: 6_000,
                    fault: Fault::WbCorruptValue { node: NodeId(1) },
                },
                FaultPlan {
                    at_cycle: 90_000,
                    fault: Fault::WbDropStore { node: NodeId(0) },
                },
            ])
            .build();
        sys.arm_service(25_000);
        let mut windows: Vec<WindowSnapshot> = Vec::new();
        let stop = sys.run_service_until(250_000, &mut |snap| windows.push(*snap));
        assert_eq!(stop, ServiceStop::Horizon);
        let svc = sys.finish_service();
        (format!("{windows:?}"), format!("{svc:?}"))
    };
    let legacy = run(KernelMode::Legacy);
    let event = run(KernelMode::Event);
    assert_eq!(legacy.0, event.0, "window streams diverge");
    assert_eq!(legacy.1, event.1, "service reports diverge");
}

/// The event kernel actually skips work on a quiet open-loop workload —
/// otherwise it is just the legacy kernel with extra bookkeeping.
#[test]
fn event_kernel_skips_quiescent_cycles_on_quiet_traffic() {
    let mut sys = SystemBuilder::new()
        .nodes(2)
        .workload(WorkloadKind::Service { mean_gap: 4_000 }, u64::MAX / 2)
        .protection(Protection::BASE)
        .seed(3)
        .kernel(KernelMode::Event)
        .build();
    sys.arm_service(50_000);
    sys.run_service_until(200_000, &mut |_| {});
    let (executed, skipped) = sys.kernel_stats();
    assert!(
        skipped > executed,
        "quiet traffic should be mostly skippable: executed={executed} skipped={skipped}"
    );
    assert_eq!(executed + skipped, sys.now(), "kernel accounting tiles the timeline");
}

proptest! {
    /// Random seeds, node counts, injection times, and fault kinds:
    /// legacy and event kernels never diverge.
    #[test]
    fn kernels_agree_on_random_configs(
        seed in 0u64..1_000,
        nodes in 2usize..4,
        at_cycle in 2_000u64..20_000,
        fault_pick in 0usize..4,
        protocol_pick in 0usize..2,
    ) {
        let fault = match fault_pick {
            0 => Fault::WbCorruptValue { node: NodeId(1) },
            1 => Fault::CacheBitFlip { node: NodeId(0) },
            2 => Fault::DropMessage,
            _ => Fault::MemoryBitFlip { node: NodeId(1) },
        };
        let protocol = if protocol_pick == 0 {
            Protocol::Directory
        } else {
            Protocol::Snooping
        };
        let run = |kernel| {
            SystemBuilder::new()
                .nodes(nodes)
                .protocol(protocol)
                .workload(WorkloadKind::Jbb, 8)
                .recovery(Default::default())
                .watchdog(100_000)
                .seed(seed)
                .kernel(kernel)
                .checkpoint_mode(CheckpointMode::DeltaLog)
                .fault(FaultPlan { at_cycle, fault })
                .build()
                .run_to_completion(2_500_000)
        };
        prop_assert_eq!(
            fingerprint(&run(KernelMode::Legacy)),
            fingerprint(&run(KernelMode::Event))
        );
    }
}
