//! Regression gate for ROADMAP 3b: long fault-free OLTP runs used to
//! raise spurious `EpochOverlap` / `SpuriousClose` / `DataPropagation`
//! violations (and, at the root of the directory case, a deadlock) once
//! the epoch sorter's windowed-timestamp ordering wrapped around. The
//! fix gives the sorter a three-part key with a deterministic tiebreak
//! rank; these seeds are the ones that reproduced each failure mode
//! before it.
//!
//! These runs are fault-free, so the acceptance condition is absolute
//! silence: no violations of any kind and no watchdog hang.

use dvmc_sim::{Protocol, SystemBuilder};
use dvmc_workloads::spec::WorkloadKind;

const MAX_CYCLES: u64 = 4_000_000;

fn run_silent(protocol: Protocol, seed: u64) {
    let mut sys = SystemBuilder::new()
        .nodes(4)
        .protocol(protocol)
        // A quota no thread reaches inside the budget: the run is
        // horizon-bound, like the sweep that exposed the bug.
        .workload(WorkloadKind::Oltp, 1_000_000)
        .seed(seed)
        .watchdog(100_000)
        .max_cycles(MAX_CYCLES)
        .build();
    let report = sys.run_to_completion(MAX_CYCLES);
    assert!(
        !report.hung,
        "{protocol:?} seed={seed}: hung at cycle {} (3b regression)",
        report.cycles
    );
    assert!(
        report.violations.is_empty(),
        "{protocol:?} seed={seed}: spurious violations on a fault-free run (3b regression): {:?}",
        report.violations
    );
}

/// Directory seed 38 deadlocked (the watchdog fired) once sorter order
/// wrapped.
#[test]
fn directory_seed_38_runs_silent() {
    run_silent(Protocol::Directory, 38);
}

/// Snooping seed 34 raised spurious violations out of an epoch-reclaim
/// race.
#[test]
fn snooping_seed_34_runs_silent() {
    run_silent(Protocol::Snooping, 34);
}

/// Snooping seed 45 raised spurious violations out of a close-stamping
/// race.
#[test]
fn snooping_seed_45_runs_silent() {
    run_silent(Protocol::Snooping, 45);
}
