//! Run reports: everything the experiment harnesses consume.

use dvmc_coherence::CacheStats;
use dvmc_consistency::CommitRecord;
use dvmc_core::{ObsMetrics, UniprocStats, Violation, ViolationReport};
use dvmc_faults::Fault;
use dvmc_pipeline::CoreStats;
use dvmc_types::Cycle;

/// The outcome of a fault-injection trial (§6.1).
#[derive(Clone, Debug)]
pub struct Detection {
    /// The injected fault.
    pub fault: Fault,
    /// When the fault took effect.
    pub injected_at: Cycle,
    /// When a checker (or the hang watchdog) flagged it.
    pub detected_at: Cycle,
    /// The first violation raised, if detection came from a checker
    /// (`None` for watchdog/hang detections).
    pub violation: Option<Violation>,
    /// Whether SafetyNet still held a checkpoint predating the fault.
    pub recoverable: bool,
}

impl Detection {
    /// Detection latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.detected_at.saturating_sub(self.injected_at)
    }
}

/// How a recovery episode ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryOutcome {
    /// Rollback/replay succeeded: the run completed with no surviving
    /// violations after the final replay.
    Recovered,
    /// The error re-manifested through every allowed retry (a persistent
    /// fault, or one that escaped the checkpoint window); the run gave up
    /// and the forensics carry the last detection.
    Unrecoverable,
}

/// What end-to-end recovery did during a run (present only when the
/// system armed recovery *and* at least one rollback happened or was
/// refused).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryReport {
    /// Rollback/replay attempts performed.
    pub attempts: u32,
    /// Retry escalations (checkpoint-interval widenings).
    pub escalations: u32,
    /// The checkpoint cycle the last rollback restored.
    pub checkpoint: Cycle,
    /// How the episode ended.
    pub outcome: RecoveryOutcome,
}

/// The result of one simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Transactions completed across all threads.
    pub transactions: u64,
    /// Whether every thread finished its transaction quota.
    pub completed: bool,
    /// Whether the hang watchdog fired.
    pub hung: bool,
    /// Violations observed during error-free runs (must be empty) or
    /// before the run stopped on detection.
    pub violations: Vec<Violation>,
    /// Fault-injection outcome, when a fault was scheduled.
    pub detection: Option<Detection>,
    /// Per-core pipeline statistics.
    pub core_stats: Vec<CoreStats>,
    /// Per-core replay statistics.
    pub replay_stats: Vec<UniprocStats>,
    /// Per-node cache statistics.
    pub cache_stats: Vec<CacheStats>,
    /// Bytes on the most-loaded torus link.
    pub max_link_bytes: u64,
    /// Total torus bytes.
    pub total_bytes: u64,
    /// Coherence-checker (Inform-Epoch) bytes.
    pub checker_bytes: u64,
    /// BER coordination bytes.
    pub ber_bytes: u64,
    /// Per-node checker observability metrics (one entry per node, the
    /// node's checkers merged); empty when observability is disabled.
    pub obs: Vec<ObsMetrics>,
    /// Forensic event trace around the detection; `None` when
    /// observability is disabled or nothing was detected.
    pub forensics: Option<ViolationReport>,
    /// End-to-end recovery outcome; `None` when recovery was not armed or
    /// never triggered.
    pub recovery: Option<RecoveryReport>,
    /// Order-independent FNV-1a digest of final memory contents — the
    /// recovery experiment's "byte-identical to a fault-free golden run"
    /// comparison.
    pub memory_digest: u64,
    /// Per-core committed-operation logs, for offline re-verification by
    /// the consistency oracle (`dvmc_consistency::oracle`); empty unless
    /// the configuration set `record_commits`.
    pub commit_logs: Vec<Vec<CommitRecord>>,
}

impl RunReport {
    /// Mean bandwidth (bytes/cycle) on the most-loaded link — the metric
    /// of Figure 7.
    pub fn max_link_bandwidth(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.max_link_bytes as f64 / self.cycles as f64
        }
    }

    /// Total retired memory operations.
    pub fn retired_ops(&self) -> u64 {
        self.core_stats.iter().map(|s| s.retired_ops).sum()
    }

    /// Aggregate demand L1 misses.
    pub fn l1_misses(&self) -> u64 {
        self.cache_stats.iter().map(|s| s.l1_misses).sum()
    }

    /// Aggregate replay L1 misses (Figure 6 numerator).
    pub fn replay_l1_misses(&self) -> u64 {
        self.cache_stats.iter().map(|s| s.replay_l1_misses).sum()
    }
}

/// Mean and sample standard deviation of a series — §5 reports means with
/// one-standard-deviation error bars over ten perturbed runs.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.138089935299395).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn detection_latency() {
        let d = Detection {
            fault: Fault::DropMessage,
            injected_at: 100,
            detected_at: 450,
            violation: None,
            recoverable: true,
        };
        assert_eq!(d.latency(), 350);
    }
}
